#!/usr/bin/env python3
"""Versioned-document workflow: the paper's hyper-media motivation.

A document store keeps every revision of every document (Version
nodes, Fig. 17).  This example shows the three version-management
operations the paper develops:

1. finding documents whose revisions share exactly the same outgoing
   links (abstraction, Figs. 18–19);
2. updating a document's modification date through the encapsulated
   Update method (Figs. 20–21);
3. garbage-collecting whole revision chains with the recursive
   Remove-Old-Versions method (Fig. 22).

Run:  python examples/versioning.py
"""

from repro.core import Instance, Program
from repro.hypermedia import build_scheme
from repro.hypermedia import figures as F
from repro.hypermedia.scheme_def import JAN_12, JAN_16


def build_store():
    """Three documents; 'report' has 4 revisions, 'memo' has 2."""
    scheme = build_scheme()
    db = Instance(scheme)

    def doc(name, created):
        node = db.add_object("Info")
        db.add_edge(node, "name", db.printable("String", name))
        db.add_edge(node, "created", db.printable("Date", created))
        return node

    wiki = doc("wiki", JAN_12)
    intro = doc("intro", JAN_12)

    # report: a chain of 4 revisions, newest first
    revisions = [doc(f"report", JAN_12) if i == 0 else db.add_object("Info") for i in range(4)]
    for newer, older in zip(revisions, revisions[1:]):
        version = db.add_object("Version")
        db.add_edge(version, "new", newer)
        db.add_edge(version, "old", older)
    # the two newest revisions link to the same places
    for revision in revisions[:2]:
        db.add_edge(revision, "links-to", wiki)
        db.add_edge(revision, "links-to", intro)
    for revision in revisions[2:]:
        db.add_edge(revision, "links-to", wiki)

    # memo: 2 revisions
    memo = doc("memo", JAN_12)
    memo_old = db.add_object("Info")
    version = db.add_object("Version")
    db.add_edge(version, "new", memo)
    db.add_edge(version, "old", memo_old)
    db.add_edge(memo, "links-to", intro)
    db.add_edge(memo_old, "links-to", intro)

    return scheme, db, revisions, memo


def main():
    scheme, db, report_revisions, memo = build_store()
    print(f"store: {db.node_count} nodes, {db.edge_count} edges")

    # 1. group versioned documents by identical link sets
    tag_new, tag_old, abstraction = F.fig18_operations(scheme)
    result = Program([tag_new, tag_old, abstraction]).run(db)
    print("\nSame-Info groups (identical outgoing links):")
    for group in sorted(result.instance.nodes_with_label("Same-Info")):
        members = sorted(result.instance.out_neighbours(group, "contains"))
        print(f"  group {group}: infos {members}")

    # 2. touch the report through the Update method
    update = F.fig20_update_method(scheme)
    from repro.core import MethodCall, Pattern

    call_pattern = Pattern(scheme)
    info = call_pattern.node("Info")
    date = call_pattern.node("Date", JAN_16)
    call_pattern.edge(info, "name", call_pattern.node("String", "report"))
    call = MethodCall(call_pattern, "Update", receiver=info, arguments={"parameter": date})
    result = Program([call], methods=[update]).run(db)
    head = report_revisions[0]
    modified = result.instance.functional_target(head, "modified")
    print("\nreport modified ->", result.instance.print_of(modified))

    # 3. collect the report's old revisions
    rov = F.fig22_remove_old_versions(scheme)
    result = Program([F.fig22_call(scheme, "report")], methods=[rov]).run(db)
    survivors = [r for r in report_revisions if result.instance.has_node(r)]
    print(f"\nafter Remove-Old-Versions: {len(survivors)}/4 report revisions remain")
    print("memo untouched:", result.instance.has_node(memo))
    remaining_versions = len(result.instance.nodes_with_label("Version"))
    print(f"Version nodes remaining: {remaining_versions} (memo's one)")


if __name__ == "__main__":
    main()
