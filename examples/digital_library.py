#!/usr/bin/env python3
"""A digital library at scale — the hyper-media vision, end to end.

Builds a synthetic corpus of several hundred documents over the Fig. 1
scheme (scale-free link graph, version chains, media attachments) and
runs the complete GOOD workflow on it:

1. integrity validation of the whole base;
2. a reachability rule program (declarative closure);
3. abstraction: deduplicate documents by their outgoing link sets;
4. the recursive Remove-Old-Versions method as a garbage collector;
5. pattern-directed browsing through an interactive session;
6. a round trip through the relational engine, checked isomorphic.

Run:  python examples/digital_library.py [n_docs]
"""

import random
import sys
import time

from repro.core import Abstraction, EdgeAddition, Pattern, Program
from repro.graph import isomorphic
from repro.hypermedia import build_scheme
from repro.hypermedia import figures as F
from repro.hypermedia.scheme_def import JAN_12
from repro.interactive import Session
from repro.rules import Rule, RuleProgram
from repro.storage import RelationalEngine
from repro.workloads import scale_free_instance


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label:45s} {1000 * (time.perf_counter() - start):8.1f} ms")
    return result


def build_corpus(n_docs, rng):
    scheme = build_scheme()
    instance, docs = scale_free_instance(rng, scheme, n_docs, attach=2)
    # names & dates for a sample of documents
    for index, doc in enumerate(docs[:: max(1, n_docs // 50)]):
        instance.add_edge(doc, "name", instance.printable("String", f"doc-{index}"))
        instance.add_edge(doc, "created", instance.printable("Date", JAN_12))
    # version chains over consecutive docs
    for older, newer in zip(docs[10:30], docs[11:31]):
        version = instance.add_object("Version")
        instance.add_edge(version, "new", newer)
        instance.add_edge(version, "old", older)
    # media attachments on a few docs
    for doc in docs[:10]:
        data = instance.add_object("Data")
        instance.add_edge(data, "isa", doc)
        text = instance.add_object("Text")
        instance.add_edge(text, "isa", data)
        instance.add_edge(text, "#words", instance.printable("Number", 100 + doc))
    return scheme, instance, docs


def reachability_rules(scheme):
    private = scheme.copy()
    private.declare("Info", "reachable", "Info", functional=False)
    base_pattern = Pattern(private)
    a = base_pattern.node("Info")
    b = base_pattern.node("Info")
    base_pattern.edge(a, "links-to", b)
    step_pattern = Pattern(private)
    x = step_pattern.node("Info")
    y = step_pattern.node("Info")
    z = step_pattern.node("Info")
    step_pattern.edge(x, "reachable", y)
    step_pattern.edge(y, "links-to", z)
    return RuleProgram(
        [
            Rule("base", EdgeAddition(base_pattern, [(a, "reachable", b)],
                                      new_label_kinds={"reachable": "multivalued"})),
            Rule("step", EdgeAddition(step_pattern, [(x, "reachable", z)],
                                      new_label_kinds={"reachable": "multivalued"})),
        ]
    )


def main():
    n_docs = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    rng = random.Random(1990)
    print(f"building a {n_docs}-document corpus ...")
    scheme, instance, docs = build_corpus(n_docs, rng)
    print(f"  {instance.node_count} nodes, {instance.edge_count} edges")

    timed("1. full constraint validation", instance.validate)

    closure, _reports = timed(
        "2. reachability rule fixpoint",
        lambda: reachability_rules(scheme).run(instance),
    )
    pairs = sum(
        len(closure.out_neighbours(doc, "reachable"))
        for doc in closure.nodes_with_label("Info")
    )
    print(f"     -> {pairs} reachable pairs")

    def dedupe():
        pattern = Pattern(scheme)
        info = pattern.node("Info")
        op = Abstraction(pattern, info, "LinkProfile", "links-to", "groups")
        return Program([op]).run(instance)

    grouped = timed("3. abstraction over link sets", dedupe)
    profiles = grouped.instance.nodes_with_label("LinkProfile")
    print(f"     -> {len(profiles)} distinct link profiles across {n_docs} documents")

    def collect():
        method = F.fig22_remove_old_versions(scheme)
        # call on the newest doc of the version chain (docs[30])
        call_db = instance.copy(scheme=scheme.copy())
        call_db.add_edge(docs[30], "name", call_db.printable("String", "HEAD"))
        call = F.fig22_call(scheme, "HEAD")
        return Program([call], methods=[method]).run(call_db, max_depth=400)

    collected = timed("4. Remove-Old-Versions on a 21-deep chain", collect)
    survivors = sum(1 for d in docs[10:31] if collected.instance.has_node(d))
    print(f"     -> {survivors}/21 chained revisions remain (the head)")

    session = Session(instance)
    view = timed("5. browse 2 hops around the hub", lambda: session.browse(docs[0], hops=2))
    print(f"     -> neighbourhood of {len(view.nodes)} nodes")

    def relational_round_trip():
        engine = RelationalEngine.from_instance(instance)
        return engine.to_instance()

    back = timed("6. relational engine round trip", relational_round_trip)
    print("     -> isomorphic:", isomorphic(instance.store, back.store))


if __name__ == "__main__":
    main()
