#!/usr/bin/env python3
"""Relational completeness in action (Section 4.3, experiment C1).

Encodes a small supplier/part database as GOOD classes, compiles
relational algebra — including a division-style "suppliers of all
parts" query — into pure node additions, runs the GOOD programs, and
checks the answers against direct evaluation.

Run:  python examples/relational_queries.py
"""

from repro.relcomp import (
    AttrEq,
    Difference,
    Product,
    Project,
    Rel,
    Relation,
    RelationalCompiler,
    RelationalDatabase,
    Select,
    encode_database,
    evaluate,
)
from repro.relcomp.encoding import attribute_map


def build_database():
    suppliers = Relation.build(
        ("sid", "city"),
        [("s1", "Antwerp"), ("s2", "Diepenbeek"), ("s3", "Bloomington")],
    )
    parts = Relation.build(("pid",), [("p1",), ("p2",), ("p3",)])
    supplies = Relation.build(
        ("sid2", "pid2"),
        [
            ("s1", "p1"), ("s1", "p2"), ("s1", "p3"),
            ("s2", "p1"), ("s2", "p3"),
            ("s3", "p2"),
        ],
    )
    return (
        RelationalDatabase()
        .add("Supplier", suppliers)
        .add("Part", parts)
        .add("Supplies", supplies)
    )


def show(title, relation):
    print(f"\n{title}  {relation.attributes}")
    for row in relation.sorted_rows():
        print("  ", row)


def main():
    db = build_database()
    scheme, instance = encode_database(db)
    print(f"encoded: {instance.node_count} nodes, {instance.edge_count} edges "
          f"({len(scheme.object_labels)} classes)")

    def run(title, expr):
        compiler = RelationalCompiler(scheme, attribute_map(db))
        query = compiler.compile(expr)
        got = query.run(instance)
        want = evaluate(expr, db)
        assert got.rows == want.rows, "GOOD disagrees with the algebra oracle!"
        show(f"{title}  [{len(query.operations)} GOOD ops]", got)
        return got

    # σ/π/×: who supplies p1, with their city
    join = Project(
        Select(
            Product(Rel("Supplier"), Rel("Supplies")),
            (AttrEq("sid", "sid2"),),
        ),
        ("sid", "city", "pid2"),
    )
    run("supplier-part pairs", join)

    # division: suppliers supplying ALL parts
    from repro.relcomp import Rename

    supplier_ids = Project(Rel("Supplies"), ("sid2",))
    all_pairs = Product(supplier_ids, Rel("Part"))
    supplies_typed = Rename.of(Rel("Supplies"), {"pid2": "pid"})
    missing = Difference(all_pairs, supplies_typed)
    lacking = Project(missing, ("sid2",))
    division = Difference(supplier_ids, lacking)
    run("suppliers of ALL parts (division)", division)


if __name__ == "__main__":
    main()
