#!/usr/bin/env python3
"""Declarative graph rules over the hyper-media base (Section 5 outlook).

The paper closes by observing that each GOOD operation is already a
rule — pattern as condition, bold part as action — "a basis for the
development of graph-based, rule-based, object-oriented database
languages".  This example runs a small stratified rule program over
the hyper-media instance:

  stratum 0:  reachable(x, y) ← links-to(x, y)
              reachable(x, z) ← reachable(x, y) ∧ links-to(y, z)
              Sink(x)         ← Info(x) ∧ ¬ links-to(x, _)
              Root(x)         ← Info(x) ∧ ¬ links-to(_, x)
  stratum 1:  Terminal(x)     ← Info(x) ∧ ¬ reachable(x, _)

(Sink/Root negate *base* labels, so they need no stratification;
Terminal negates the *derived* ``reachable`` and is pushed to a later
stratum automatically.)

Run:  python examples/rules_demo.py
"""

from repro.core import EdgeAddition, NegatedPattern, NodeAddition, Pattern
from repro.hypermedia import build_instance, build_scheme
from repro.rules import Rule, RuleProgram


def main():
    scheme = build_scheme()
    db, handles = build_instance(scheme)

    private = scheme.copy()
    private.declare("Info", "reachable", "Info", functional=False)

    # stratum 0: transitive closure, declaratively
    base_pattern = Pattern(private)
    a = base_pattern.node("Info")
    b = base_pattern.node("Info")
    base_pattern.edge(a, "links-to", b)
    base = Rule(
        "reach-base",
        EdgeAddition(base_pattern, [(a, "reachable", b)],
                     new_label_kinds={"reachable": "multivalued"}),
    )
    step_pattern = Pattern(private)
    x = step_pattern.node("Info")
    y = step_pattern.node("Info")
    z = step_pattern.node("Info")
    step_pattern.edge(x, "reachable", y)
    step_pattern.edge(y, "links-to", z)
    step = Rule(
        "reach-step",
        EdgeAddition(step_pattern, [(x, "reachable", z)],
                     new_label_kinds={"reachable": "multivalued"}),
    )

    # stratum 1: negation over the derived relation
    sink_positive = Pattern(private)
    sink_info = sink_positive.node("Info")
    sinks = NegatedPattern(sink_positive)
    sinks.forbid_node("Info", [(sink_info, "links-to", None)])
    sink_rule = Rule("sinks", NodeAddition(sinks, "Sink", [("is", sink_info)]))

    root_positive = Pattern(private)
    root_info = root_positive.node("Info")
    roots = NegatedPattern(root_positive)
    roots.forbid_node("Info", [(None, "links-to", root_info)])
    root_rule = Rule("roots", NodeAddition(roots, "Root", [("is", root_info)]))

    terminal_positive = Pattern(private)
    terminal_info = terminal_positive.node("Info")
    terminals = NegatedPattern(terminal_positive)
    terminals.forbid_node("Info", [(terminal_info, "reachable", None)])
    terminal_rule = Rule(
        "terminals", NodeAddition(terminals, "Terminal", [("is", terminal_info)])
    )

    program = RuleProgram([base, step, sink_rule, root_rule, terminal_rule])
    print("strata:", [[rule.name for rule in stratum] for stratum in program.strata()])
    result, reports = program.run(db)
    applied = sum(1 for r in reports if r.nodes_added or r.edges_added)
    print(f"{len(reports)} rule applications, {applied} productive")

    def names(tag_label):
        out = []
        for tag in sorted(result.nodes_with_label(tag_label)):
            info = next(iter(result.out_neighbours(tag, "is")))
            name = result.functional_target(info, "name")
            out.append(result.print_of(name) if name is not None else f"#{info}")
        return sorted(out)

    print("roots (linked from nowhere):", ", ".join(names("Root")))
    print("sinks (linking nowhere):    ", ", ".join(names("Sink")))
    print("terminals (reach nothing):  ", ", ".join(names("Terminal")))
    reachable_pairs = sum(
        len(result.out_neighbours(info, "reachable"))
        for info in result.nodes_with_label("Info")
    )
    print(f"reachable relation: {reachable_pairs} pairs")
    mh_reach = result.out_neighbours(handles.music_history, "reachable")
    print(f"Music History reaches {len(mh_reach)} infos")


if __name__ == "__main__":
    main()
