#!/usr/bin/env python3
"""Quickstart: build a GOOD object base and transform it graphically.

GOOD represents a database as a labeled graph (the *instance*) over a
labeled graph of classes (the *scheme*), and manipulates it with graph
transformations: additions and deletions of nodes and edges driven by
pattern matching.  This script builds a tiny movie database, runs a
query with a node addition, an update with an edge deletion/addition
pair, and a negation query — the whole core loop in ~100 lines.

Run:  python examples/quickstart.py
"""

from repro import (
    EdgeAddition,
    EdgeDeletion,
    NegatedPattern,
    NodeAddition,
    Pattern,
    Program,
    Scheme,
    Instance,
    match_negated,
)
from repro.viz import summarize_instance, summarize_scheme


def build_database():
    """A scheme and instance for movies and their directors."""
    scheme = Scheme(printable_labels=["String", "Number"])
    scheme.declare("Movie", "title", "String")
    scheme.declare("Movie", "year", "Number")
    scheme.declare("Person", "name", "String")
    scheme.declare("Movie", "directed-by", "Person")
    scheme.declare("Person", "admires", "Person", functional=False)

    db = Instance(scheme)

    def movie(title, year, director):
        node = db.add_object("Movie")
        db.add_edge(node, "title", db.printable("String", title))
        db.add_edge(node, "year", db.printable("Number", year))
        db.add_edge(node, "directed-by", director)
        return node

    def person(name):
        node = db.add_object("Person")
        db.add_edge(node, "name", db.printable("String", name))
        return node

    kubrick = person("Kubrick")
    scott = person("Scott")
    jones = person("Jones")
    db.add_edge(scott, "admires", kubrick)
    db.add_edge(jones, "admires", kubrick)
    db.add_edge(jones, "admires", scott)
    movie("2001", 1968, kubrick)
    movie("Alien", 1979, scott)
    movie("Blade Runner", 1982, scott)
    return scheme, db


def main():
    scheme, db = build_database()
    print("=== scheme ===")
    print(summarize_scheme(scheme))
    print("\n=== instance ===")
    print(summarize_instance(db, max_nodes=12))

    # Query: tag every movie directed by someone Jones admires.
    # The pattern is drawn exactly like the paper's figures: the plain
    # part selects, the bold part (the node addition) adds.
    pattern = Pattern(scheme)
    movie = pattern.node("Movie")
    director = pattern.node("Person")
    admirer = pattern.node("Person")
    pattern.edge(movie, "directed-by", director)
    pattern.edge(admirer, "admires", director)
    pattern.edge(admirer, "name", pattern.node("String", "Jones"))
    query = NodeAddition(pattern, "Recommended", [("movie", movie)])

    result = Program([query]).run(db)
    print("\n=== recommended movies (node addition) ===")
    for tag in sorted(result.instance.nodes_with_label("Recommended")):
        rec = next(iter(result.instance.out_neighbours(tag, "movie")))
        title = result.instance.functional_target(rec, "title")
        print(" -", result.instance.print_of(title))

    # Update: re-date Alien to 1980 (edge deletion + edge addition,
    # the Fig. 16 idiom).
    upd_pattern = Pattern(scheme)
    m = upd_pattern.node("Movie")
    old_year = upd_pattern.node("Number")
    upd_pattern.edge(m, "title", upd_pattern.node("String", "Alien"))
    upd_pattern.edge(m, "year", old_year)
    delete = EdgeDeletion(upd_pattern, [(m, "year", old_year)])

    add_pattern = Pattern(scheme)
    m2 = add_pattern.node("Movie")
    new_year = add_pattern.node("Number", 1980)
    add_pattern.edge(m2, "title", add_pattern.node("String", "Alien"))
    add = EdgeAddition(add_pattern, [(m2, "year", new_year)])

    updated = Program([delete, add]).run(db)
    print("\n=== after the Fig. 16-style update ===")
    for mv in sorted(updated.instance.nodes_with_label("Movie")):
        title = updated.instance.print_of(updated.instance.functional_target(mv, "title"))
        year = updated.instance.print_of(updated.instance.functional_target(mv, "year"))
        print(f" - {title}: {year}")

    # Negation: directors nobody admires (crossed pattern, Fig. 26).
    positive = Pattern(scheme)
    p = positive.node("Person")
    name = positive.node("String")
    positive.edge(p, "name", name)
    negated = NegatedPattern(positive)
    negated.forbid_node("Person", [(None, "admires", p)])
    print("\n=== unadmired people (crossed pattern) ===")
    for matching in match_negated(negated, db):
        print(" -", db.print_of(matching[name]))


if __name__ == "__main__":
    main()
