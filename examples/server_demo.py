"""Serving a GOOD database over TCP — `repro.server` end to end.

One process plays both roles: a `GoodServer` runs on a background
thread, and a blocking `GoodClient` talks to it over a real socket.
The demo walks the whole serving loop:

1. serve a catalog, create a database over the wire;
2. run an atomic program remotely and enumerate matchings;
3. watch a failed run roll back (the structured error carries the
   transaction layer's failure report);
4. arm a per-session budget and watch it contain one greedy session;
5. read the live STATS counters and latency percentiles.

Also used by CI as the server smoke test: every step asserts.
"""

from __future__ import annotations

from repro.core import Scheme
from repro.io.serialize import scheme_to_json
from repro.server import (
    BackgroundServer,
    Catalog,
    GoodClient,
    GoodServer,
    RemoteError,
)


def people_scheme() -> Scheme:
    scheme = Scheme(printable_labels=["String"])
    scheme.declare("Person", "name", "String")
    scheme.declare("Person", "knows", "Person", functional=False)
    return scheme


def main() -> None:
    server = GoodServer(Catalog(), max_concurrent=4, max_queue=32)
    with BackgroundServer(server):
        host, port = server.address
        print(f"serving on {host}:{port}")

        with GoodClient(host, port) as client:
            hello = client.hello()
            print(f"protocol v{hello['protocol']}, server {hello['server']}")

            # -- create a database over the wire --------------------------
            client.create("people", scheme=scheme_to_json(people_scheme()))
            client.use("people")

            # -- an atomic run: two Persons, two String constants ---------
            report = client.run(
                'addnode Person(name -> n) { n: String = "ada" }\n'
                'addnode Person(name -> n) { n: String = "bob" }\n'
            )
            assert report["nodes"] == 4, report
            print(f"RUN committed: {report['nodes']} nodes, {report['edges']} edges")

            found = client.match('{ p: Person; n: String = "ada"; p -name-> n }')
            assert found["total"] == 1
            print(f"MATCH found ada: {found['matchings']}")

            # -- a failing run rolls back atomically ----------------------
            try:
                client.run(
                    'addnode Person(name -> n) { n: String = "temp" }\n'
                    'addedge { p: Person; a: String = "ada"; b: String = "temp";'
                    " p -name-> a } add p -name-> b\n"
                )
            except RemoteError as error:
                report = error.details["failure_report"]
                print(
                    f"failed RUN rolled back: [{error.code}] "
                    f"{report['nodes_rolled_back']} nodes undone, "
                    f"invariants_ok={report['invariants_ok']}"
                )
                assert report["invariants_ok"] is True
            assert client.match("{ p: Person }")["total"] == 2  # still just ada+bob

            # -- budgets are per session ----------------------------------
            client.limit(max_matchings=1)
            try:
                client.match("{ p: Person }")
                raise AssertionError("budget should have fired")
            except RemoteError as error:
                assert error.code == "RESOURCE_LIMIT"
                print(f"budgeted session contained: [{error.code}] {error.remote_message}")
            client.limit(max_matchings=None)  # lift it again

            # ...while a second, unbudgeted session proceeds untouched
            with GoodClient(host, port) as other:
                other.use("people")
                assert other.match("{ p: Person }")["total"] == 2
                print("second session unaffected by the first session's budget")

            # -- live stats -----------------------------------------------
            stats = client.stats()
            bucket = stats["databases"]["people"]
            assert bucket["runs"] == 1  # only the committed run counts
            assert bucket["rollbacks"] == 1
            assert stats["total"]["requests"] >= 8
            print(
                f"STATS: {stats['total']['requests']} requests, "
                f"{bucket['matchings_enumerated']} matchings enumerated, "
                f"p50 {bucket['latency']['p50_ms']} ms, "
                f"p95 {bucket['latency']['p95_ms']} ms"
            )

    print("server demo OK")


if __name__ == "__main__":
    main()
