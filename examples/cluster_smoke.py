"""Cluster smoke — router + shard workers + a WAL-fed read replica,
with a SIGKILL'd worker recovering mid-burst.

A real out-of-process exercise of the scale-out contract:

1. boot a cluster (2 shard workers, 1 read replica) — every worker and
   replica is a separate OS process supervised from here;
2. create databases over the one router address; the consistent-hash
   ring spreads them over the shards;
3. run a mixed read/write burst with read-your-writes asserted after
   every commit;
4. ``SIGKILL`` one worker mid-burst — the supervisor restarts it, WAL
   recovery brings its shard back, and a retrying client rides the gap;
5. confirm the replica caught up (applied LSN) and served reads.

Also used by CI as the cluster smoke step: every step asserts.
"""

from __future__ import annotations

import time

from repro.cluster import GoodCluster
from repro.core import Scheme
from repro.io.serialize import scheme_to_json
from repro.server import GoodClient

DATABASES = ["alpha", "beta", "gamma", "delta"]


def people_scheme_json():
    scheme = Scheme(printable_labels=["String"])
    scheme.declare("Person", "name", "String")
    scheme.declare("Person", "knows", "Person", functional=False)
    return scheme_to_json(scheme)


def wait_for(predicate, timeout: float, what: str):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def main() -> None:
    with GoodCluster(workers=2, replicas=1, monitor_interval=0.1) as cluster:
        host, port = cluster.address
        print(f"cluster up at {host}:{port} — 2 workers, 1 replica")

        with GoodClient(host, port, retries=8, backoff=0.1) as client:
            # -- placement ------------------------------------------------
            for name in DATABASES:
                client.create(name, scheme=people_scheme_json())
                print(f"  created {name!r} on {cluster.owner_of(name)}")
            owners = {cluster.owner_of(name) for name in DATABASES}
            assert len(owners) == 2, "4 databases should span both shards"

            # -- read-your-writes ----------------------------------------
            for round_index in range(3):
                for name in DATABASES:
                    client.run(
                        f'addnode Person(name -> n) '
                        f'{{ n: String = "r{round_index}" }}',
                        db=name,
                    )
                    found = client.match("{ p: Person }", db=name)["total"]
                    assert found == round_index + 1, (name, found)
            print("read-your-writes held across 12 commits on 4 databases")

            # -- kill a worker mid-burst ---------------------------------
            victim = cluster.owner_of("alpha")
            index = int(victim.split("-")[1])
            member = cluster.supervisor.members[victim]
            pid_before = member.pid
            cluster.kill_worker(index)
            print(f"SIGKILLed {victim} (pid {pid_before})")
            wait_for(
                lambda: member.alive() and member.pid != pid_before,
                timeout=30.0,
                what="supervisor restart",
            )
            print(f"{victim} restarted as pid {member.pid}")

            # WAL recovery: alpha still has all three commits, and the
            # retrying client rides out the reconnect window
            assert client.match("{ p: Person }", db="alpha")["total"] == 3
            lsn = client.run(
                'addnode Person(name -> n) { n: String = "post-crash" }',
                db="alpha",
            )["lsn"]
            assert client.match("{ p: Person }", db="alpha")["total"] == 4
            print(f"alpha recovered from WAL and accepted commit lsn={lsn}")

            # -- replica catch-up ----------------------------------------
            replica = cluster.supervisor.members["replica-0"]
            with GoodClient(replica.host, replica.port) as direct:
                wait_for(
                    lambda: direct.call("REPLICA")
                    .get("applied", {})
                    .get("alpha", -1)
                    >= lsn,
                    timeout=30.0,
                    what="replica to apply alpha's commits",
                )
                assert direct.match("{ p: Person }", db="alpha")["total"] == 4
            print("replica applied every commit and serves identical reads")

            stats = client.stats()["cluster"]
            print(
                "router counters:",
                {k: stats["router"][k] for k in ("writes", "reads_to_replicas", "reads_to_owner")},
            )
            assert stats["members"][victim]["restarts"] >= 1
    print("cluster smoke OK")


if __name__ == "__main__":
    main()
