"""Crash recovery end to end — `repro serve --data-dir` survives SIGKILL.

A real out-of-process test of the durability contract:

1. start ``repro serve --data-dir DIR`` as a subprocess;
2. create a database and commit a few programs over TCP (every ``RUN``
   is acknowledged only after its WAL record is fsynced);
3. ``SIGKILL`` the server — no shutdown handler runs, exactly like a
   power cut from the process's point of view;
4. start a fresh server on the same data directory and read the
   database back: every acknowledged commit must be there.

Also used by CI as the recovery smoke step: every step asserts.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.core import Scheme
from repro.io.serialize import scheme_to_json
from repro.server import GoodClient
from repro.server.protocol import ProtocolError

PORT = 25990  # out of the way of a real `repro serve`


def people_scheme() -> Scheme:
    scheme = Scheme(printable_labels=["String"])
    scheme.declare("Person", "name", "String")
    scheme.declare("Person", "knows", "Person", functional=False)
    return scheme


def start_server(data_dir: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--data-dir",
            data_dir,
            "--port",
            str(PORT),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env={**os.environ, "PYTHONUNBUFFERED": "1"},
    )
    deadline = time.time() + 30.0
    while time.time() < deadline:
        if process.poll() is not None:
            output = process.stdout.read().decode(errors="replace")
            raise RuntimeError(f"server exited during startup:\n{output}")
        try:
            with GoodClient("127.0.0.1", PORT, timeout=2.0) as client:
                if client.ping():
                    return process
        except (OSError, ProtocolError):
            time.sleep(0.1)
    process.kill()
    raise RuntimeError("server did not come up within 30s")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="good-recovery-") as data_dir:
        # -- first life: create, commit, get acks -------------------------
        server = start_server(data_dir)
        try:
            with GoodClient("127.0.0.1", PORT) as client:
                client.create("people", scheme=scheme_to_json(people_scheme()))
                client.use("people")
                for name in ("ada", "grace", "edsger"):
                    result = client.run(
                        f'addnode Person(name -> n) {{ n: String = "{name}" }}'
                    )
                acked = (result["nodes"], result["edges"])
                print(f"committed 3 programs, acked state: {acked[0]} nodes, {acked[1]} edges")
        finally:
            # -- the crash: SIGKILL, no cleanup of any kind ----------------
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=10)
        print("server SIGKILLed")

        # -- second life: recover and read back ---------------------------
        server = start_server(data_dir)
        try:
            with GoodClient("127.0.0.1", PORT) as client:
                described = client.use("people")["using"]
                recovered = (described["nodes"], described["edges"])
                print(f"recovered state: {recovered[0]} nodes, {recovered[1]} edges")
                assert recovered == acked, (recovered, acked)
                names = client.match("{ p: Person; n: String; p -name-> n }")
                assert names["total"] == 3, names
                stats = client.stats()["databases"]["people"]
                assert stats["recoveries"] == 1, stats
                print("every acked commit survived the kill — durability holds")
        finally:
            server.terminate()
            server.wait(timeout=10)


if __name__ == "__main__":
    main()
