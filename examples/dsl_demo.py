#!/usr/bin/env python3
"""The textual syntax: the paper's figures as a script.

The paper argues for *graphical* syntax; this library adds the textual
twin for scripting — arrowheads match the drawings (``->`` functional,
``->>`` multivalued) and ``no { ... }`` is the crossed part.  This demo
runs a multi-statement program reproducing Figs. 6, 12–13 and 26 in a
dozen lines of DSL.

Run:  python examples/dsl_demo.py
"""

from repro.dsl import parse_program
from repro.hypermedia import build_instance, build_scheme

SCRIPT = '''
# Fig. 6: tag the infos linked from the Jan 14 "Rock" document
addnode Rock(tagged-to -> y) {
    x: Info; y: Info;
    d: Date = "Jan 14, 1990"; n: String = "Rock";
    x -created-> d; x -name-> n; x -links-to->> y;
}

# Figs. 12-13: collect the infos created on Jan 14, 1990
addnode "Created Jan 14, 1990" { }
addedge {
    c: "Created Jan 14, 1990";
    x: Info; d: Date = "Jan 14, 1990";
    x -created-> d;
} add c -contains->> x

# Fig. 26: names of infos whose created date is not their modified date
addnode Answer { }
addedge {
    a: Answer; x: Info; n: String; d: Date;
    x -name-> n; x -created-> d;
    no { x -modified-> d; };
} add a -holds->> n
'''


def main():
    scheme = build_scheme()
    db, handles = build_instance(scheme)
    program = parse_program(SCRIPT, scheme)
    print(f"parsed {len(program)} operations from the script\n")
    result = program.run(db)
    for report in result.reports:
        print(" ", report.summary())

    instance = result.instance
    print("\ntagged infos (Fig. 6):")
    for tag in sorted(instance.nodes_with_label("Rock")):
        target = next(iter(instance.out_neighbours(tag, "tagged-to")))
        name = instance.functional_target(target, "name")
        print("  ->", instance.print_of(name) if name else f"#{target}")

    collector = min(instance.nodes_with_label("Created Jan 14, 1990"))
    print("\ncreated Jan 14 (Figs. 12-13):",
          sorted(instance.out_neighbours(collector, "contains")))

    answer = min(instance.nodes_with_label("Answer"))
    names = sorted(instance.print_of(n) for n in instance.out_neighbours(answer, "holds"))
    print("\nFig. 26 answer:", ", ".join(names))


if __name__ == "__main__":
    main()
