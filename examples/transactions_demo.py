#!/usr/bin/env python3
"""Transactions: atomic programs, savepoints, faults, resource budgets.

Section 3.2 of the paper makes edge addition fail at run time when a
functional edge label would get two targets — so any multi-operation
GOOD program can die halfway.  This demo shows the library's answer:
in-place runs roll back all-or-nothing by default (scheme included),
`repro.txn.Transaction` adds savepoints for partial rollback, faults
can be injected at any operation index to prove the guarantee, and
resource budgets abort runaway programs cleanly.

Run:  python examples/transactions_demo.py
"""

from repro import (
    EdgeAddition,
    EdgeConflictError,
    Instance,
    NodeAddition,
    Pattern,
    Program,
    ResourceLimitError,
    Scheme,
)
from repro.txn import Transaction, inject, limits


def build_database():
    """Three people who know each other."""
    scheme = Scheme(printable_labels=["String", "Number"])
    scheme.declare("Person", "name", "String")
    scheme.declare("Person", "age", "Number")
    scheme.declare("Person", "knows", "Person", functional=False)
    db = Instance(scheme)
    people = {}
    for name, age in [("ada", 36), ("grace", 45), ("edsger", 40)]:
        person = people[name] = db.add_object("Person")
        db.add_edge(person, "name", db.printable("String", name))
        db.add_edge(person, "age", db.printable("Number", age))
    db.add_edge(people["ada"], "knows", people["grace"])
    db.add_edge(people["grace"], "knows", people["edsger"])
    return scheme, db


def tag_everyone(scheme, label):
    pattern = Pattern(scheme)
    person = pattern.node("Person")
    return NodeAddition(pattern, label, [("of", person)])


def conflicting_edge(scheme):
    """Functional 'idol' edge from every person to every OTHER person's
    age — two matches per person, so Section 3.2 makes this undefined."""
    pattern = Pattern(scheme)
    person = pattern.node("Person")
    other = pattern.node("Person")
    age = pattern.node("Number")
    pattern.edge(other, "age", age)
    return EdgeAddition(pattern, [(person, "idol", age)], new_label_kinds={"idol": "functional"})


def main():
    scheme, db = build_database()
    print(f"start: {db.node_count} nodes, {db.edge_count} edges")

    # 1. atomic by default: the mid-program failure undoes EVERYTHING,
    #    including op 0's completed work and its scheme declarations
    print("\n-- atomic rollback --")
    program = Program([tag_everyone(scheme, "Reviewed"), conflicting_edge(scheme)])
    try:
        program.run(db, in_place=True)
    except EdgeConflictError as error:
        print(f"failed as designed: {error}")
        print(f"report: {error.failure_report.summary()}")
    print(f"after rollback: {db.node_count} nodes, {db.edge_count} edges")
    print(f"'Reviewed' left in scheme? {scheme.has_node_label('Reviewed')}")

    # 2. savepoints: keep a good prefix, retry the bad suffix
    print("\n-- savepoints --")
    with Transaction(db, name="demo") as txn:
        Program([tag_everyone(scheme, "Checked")]).run(db, in_place=True)
        point = txn.savepoint("after-tagging")
        Program([tag_everyone(scheme, "Flagged")]).run(db, in_place=True)
        print(f"before rollback_to: {db.node_count} nodes")
        txn.rollback_to(point)
        print(f"after  rollback_to: {db.node_count} nodes "
              f"(kept 'Checked', undid 'Flagged')")
    print(f"'Checked' committed? {scheme.has_node_label('Checked')}; "
          f"'Flagged' gone? {not scheme.has_node_label('Flagged')}")

    # 3. fault injection: manufacture a crash at any operation index
    print("\n-- fault injection --")
    nodes_before = db.node_count
    with inject(EdgeConflictError, at_operation=1) as injector:
        try:
            Program([tag_everyone(scheme, "A"), tag_everyone(scheme, "B")]).run(
                db, in_place=True
            )
        except EdgeConflictError:
            pass
    print(f"fault fired at {injector.fired_at}; "
          f"instance unchanged? {db.node_count == nodes_before}")

    # 4. resource budgets: runaway matching aborts with a clean rollback
    print("\n-- resource budgets --")
    try:
        with limits(max_matchings=2):
            Program([tag_everyone(scheme, "Audited")]).run(db, in_place=True)
    except ResourceLimitError as error:
        print(f"guard tripped: {error}")
    print(f"'Audited' left behind? {scheme.has_node_label('Audited')}")

    print("\ndone: every failure path restored the exact pre-run state")


if __name__ == "__main__":
    main()
