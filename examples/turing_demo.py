#!/usr/bin/env python3
"""Computational completeness (Section 4.3, experiment C3).

Compiles three Turing machines into GOOD transition programs — tape
cells as a doubly-linked Cell chain, each δ-rule a fixed sequence of
basic operations with the negation macro handling tape growth — and
runs them in lockstep against a direct simulator.

Run:  python examples/turing_demo.py
"""

from repro.turing import (
    GoodTuringMachine,
    binary_increment_machine,
    bit_flipper_machine,
    parity_machine,
)


def trace_run(tm, word):
    good = GoodTuringMachine(tm)
    instance = good.encode(word)
    config = tm.initial(word)
    print(f"\n=== {tm.name} on {word!r} ===")
    steps = 0
    while True:
        state, offset, symbols = good.decode(instance)
        tape = "".join(symbols)
        pointer = " " * offset + "^"
        print(f"  step {steps:2d}  state={state:6s} tape={tape}")
        print(f"                         {pointer}")
        if not good.step(instance):
            break
        config = tm.step(config)
        steps += 1
        # lockstep check against the oracle
        state, offset, symbols = good.decode(instance)
        assert state == config.state
    print(f"  halted after {steps} steps; output = {good.output_word(instance)!r}")
    assert good.output_word(instance) == tm.output_word(tm.run(word))
    return steps


def main():
    print("GOOD is computationally complete: Turing machines compile to")
    print("graph transformations (one program of basic operations per rule).")

    trace_run(bit_flipper_machine(), "1011")
    trace_run(binary_increment_machine(), "111")   # carries + tape growth
    trace_run(parity_machine(), "10110")

    # a quick size census: how big are the compiled programs?
    print("\ncompiled program sizes (basic operations per transition):")
    for factory in (bit_flipper_machine, binary_increment_machine, parity_machine):
        tm = factory()
        good = GoodTuringMachine(tm)
        total = sum(len(p.operations) for p in good.programs.values())
        print(f"  {tm.name:18s} {len(good.programs)} rules -> {total} operations")


if __name__ == "__main__":
    main()
