#!/usr/bin/env python3
"""The full hyper-media tour: every figure of the paper, executed.

Builds the Fig. 1 scheme and the Figs. 2–3 instance, then walks
through Figs. 4–31 in order, printing what each operation does to the
object base — a faithful, runnable rendition of the paper's narrative.

Run:  python examples/hypermedia_tour.py
"""

from repro.core import Program, find_matchings
from repro.core.inheritance import find_matchings_with_inheritance, virtual_scheme
from repro.hypermedia import build_instance, build_scheme, build_version_chain
from repro.hypermedia import figures as F
from repro.viz import summarize_scheme


def banner(text):
    print(f"\n── {text} " + "─" * max(0, 60 - len(text)))


def main():
    scheme = build_scheme()
    db, handles = build_instance(scheme)

    banner("Fig. 1: the hyper-media scheme")
    print(summarize_scheme(scheme))

    banner("Figs. 2-3: the instance")
    print(f"{db.node_count} nodes, {db.edge_count} edges; "
          f"{len(db.nodes_with_label('Info'))} Info nodes")

    banner("Figs. 4-5: pattern matching")
    fig4 = F.fig4_pattern(scheme)
    matchings = list(find_matchings(fig4.pattern, db))
    print(f"the pattern has {len(matchings)} matchings; the linked infos are:")
    for matching in matchings:
        name = db.functional_target(matching[fig4.info_bottom], "name")
        print("  ->", db.print_of(name) if name else "(unnamed)")

    banner("Figs. 6-7: node addition")
    result = Program([F.fig6_node_addition(scheme)]).run(db)
    print(result.reports[0].summary())

    banner("Figs. 8-9: aggregating node addition")
    result = Program([F.fig8_node_addition(scheme)]).run(db)
    print(result.reports[0].summary())
    print("note: 4 matchings collapse to 3 Pair objects — two matchings")
    print("agree on their (parent, child) dates; see EXPERIMENTS.md F8")

    banner("Figs. 10-11: edge addition")
    result = Program([F.fig10_edge_addition(scheme)]).run(db)
    print(result.reports[0].summary())

    banner("Figs. 12-13: building a set object")
    result = Program([F.fig12_node_addition(scheme), F.fig13_edge_addition(scheme)]).run(db)
    print(result.summary())

    banner("Figs. 14-15: node deletion")
    result = Program([F.fig14_node_deletion(scheme)]).run(db)
    print(result.reports[0].summary())
    incoming_links = result.instance.in_neighbours(handles.mozart, "links-to")
    print("Mozart is now isolated (no incoming links-to):", not incoming_links)

    banner("Fig. 16: update = edge deletion; edge addition")
    result = Program(list(F.fig16_update(scheme))).run(db)
    new_date = result.instance.functional_target(handles.music_history, "modified")
    print("Music History modified ->", result.instance.print_of(new_date))

    banner("Figs. 17-19: abstraction over a version chain")
    chain_db, chain_handles = build_version_chain(scheme)
    ops = F.fig18_operations(scheme)
    result = Program(list(ops)).run(chain_db)
    groups = result.instance.nodes_with_label("Same-Info")
    print(f"{len(groups)} Same-Info groups:")
    for group in sorted(groups):
        members = sorted(result.instance.out_neighbours(group, "contains"))
        print("  contains", members)

    banner("Figs. 20-21: the Update method")
    update = F.fig20_update_method(scheme)
    result = Program([F.fig21_call(scheme)], methods=[update]).run(db)
    new_date = result.instance.functional_target(handles.music_history, "modified")
    print("after the call, Music History modified ->", result.instance.print_of(new_date))

    banner("Fig. 22: the recursive Remove-Old-Versions method")
    rov = F.fig22_remove_old_versions(scheme)
    result = Program([F.fig22_call(scheme, "Rock")], methods=[rov]).run(db)
    print("old Rock version survives:", result.instance.has_node(handles.rock_old))
    print("new Rock version survives:", result.instance.has_node(handles.rock_new))

    banner("Figs. 23-25: method interfaces (D and E)")
    d_method = F.fig23_d_method(scheme)
    e_method = F.fig25_e_method(scheme)
    result = Program([F.fig25_e_call(scheme)], methods=[d_method, e_method]).run(db)
    days = result.instance.functional_target(handles.music_history, "days-unmod")
    print("days-unmod(Music History) =", result.instance.print_of(days))
    print("Elapsed nodes visible to the caller:",
          len(result.instance.nodes_with_label("Elapsed")) if
          result.instance.scheme.has_node_label("Elapsed") else 0)

    banner("Figs. 26-27: negation")
    ops26, _ = F.fig26_operations(scheme)
    result = Program(ops26).run(db)
    answer = min(result.instance.nodes_with_label("Answer"))
    names = sorted(
        result.instance.print_of(t)
        for t in result.instance.out_neighbours(answer, "contains")
    )
    print("infos whose created differs from modified:", ", ".join(names))

    banner("Figs. 28-29: transitive closure")
    direct, star = F.fig28_operations(scheme)
    result = Program([direct, star]).run(db)
    pairs = sum(
        len(result.instance.out_neighbours(s, "rec-links-to"))
        for s in result.instance.nodes_with_label("Info")
    )
    print(f"rec-links-to holds {pairs} pairs (starred edge addition)")
    rlt = F.fig29_rlt_method(scheme)
    result2 = Program([F.fig29_call(scheme)], methods=[rlt]).run(db)
    pairs2 = sum(
        len(result2.instance.out_neighbours(s, "rec-links-to"))
        for s in result2.instance.nodes_with_label("Info")
    )
    print(f"the recursive RLT method computes the same {pairs2} pairs")

    banner("Figs. 30-31: inheritance")
    isa_scheme = build_scheme(mark_isa=True)
    isa_db, isa_handles = build_instance(isa_scheme)
    fig30 = F.fig30_query(virtual_scheme(isa_scheme))
    for matching in find_matchings_with_inheritance(fig30.pattern, isa_db, isa_scheme):
        print("reference named", isa_db.print_of(matching[fig30.name]),
              "occurs in the Jazz info")
    print("\ndone — all 31 figures exercised.")


if __name__ == "__main__":
    main()
