#!/usr/bin/env python3
"""The two Section 5 implementations, side by side (S1/S2).

Loads the hyper-media instance into the relational engine (classes as
tables, matchings as join plans — the Antwerp prototype architecture)
and into the Tarski engine (everything a binary relation — the Indiana
approach), runs the same figure operations on all three engines, and
shows the relational EXPLAIN output for a pattern.

Run:  python examples/backends_demo.py
"""

from repro.core import Program, find_matchings
from repro.graph import isomorphic
from repro.hypermedia import build_instance, build_scheme
from repro.hypermedia import figures as F
from repro.storage import RelationalEngine
from repro.storage.query import compile_pattern
from repro.tarski import TarskiEngine


def main():
    scheme = build_scheme()
    db, handles = build_instance(scheme)

    relational = RelationalEngine.from_instance(db)
    tarski = TarskiEngine.from_instance(db)

    print("=== storage layouts ===")
    print("relational tables:")
    for name in relational.layout.db.table_names():
        table = relational.layout.db.table(name)
        print(f"  {name:22s} {table.count():3d} rows  columns={table.columns}")
    print(f"tarski relations: member({len(tarski.member)} pairs) + "
          f"{len(tarski.edges)} edge relations + {len(tarski.values)} value relations")

    print("\n=== the Fig. 4 pattern as a relational plan ===")
    fig4 = F.fig4_pattern(scheme)
    plan = compile_pattern(fig4.pattern, relational.layout)
    print(plan.explain())

    native = list(find_matchings(fig4.pattern, db))
    print(f"\nmatchings: native={len(native)} "
          f"relational={len(relational.matchings(fig4.pattern))} "
          f"tarski={len(tarski.matchings(fig4.pattern))}")

    print("\n=== running Figs. 6/8/10/12-16 on all three engines ===")
    ops = [
        F.fig6_node_addition(scheme),
        F.fig8_node_addition(scheme),
        F.fig10_edge_addition(scheme),
        F.fig12_node_addition(scheme),
        F.fig13_edge_addition(scheme),
        F.fig14_node_deletion(scheme),
        *F.fig16_update(scheme),
    ]
    native_result = Program(list(ops)).run(db)
    relational.run(ops)
    tarski.run(ops)

    rel_instance = relational.to_instance()
    tar_instance = tarski.to_instance()
    print(f"native:     {native_result.instance.node_count} nodes, "
          f"{native_result.instance.edge_count} edges")
    print(f"relational: {rel_instance.node_count} nodes, {rel_instance.edge_count} edges")
    print(f"tarski:     {tar_instance.node_count} nodes, {tar_instance.edge_count} edges")
    print("relational ≅ native:", isomorphic(native_result.instance.store, rel_instance.store))
    print("tarski     ≅ native:", isomorphic(native_result.instance.store, tar_instance.store))


if __name__ == "__main__":
    main()
