"""Terminal summaries of schemes and instances."""

from __future__ import annotations

from typing import List

from repro.core.instance import Instance
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT


def summarize_scheme(scheme: Scheme) -> str:
    """A compact, sorted textual listing of a scheme."""
    lines: List[str] = []
    lines.append(f"object labels    : {', '.join(sorted(scheme.object_labels)) or '-'}")
    lines.append(f"printable labels : {', '.join(sorted(scheme.printable_labels)) or '-'}")
    lines.append("properties:")
    for source, edge, target in sorted(scheme.properties):
        arrow = "-->" if scheme.is_functional(edge) else "==>"
        isa = "  (isa)" if edge in scheme.isa_labels else ""
        lines.append(f"  {source} {arrow} {target}  [{edge}]{isa}")
    return "\n".join(lines)


def summarize_instance(instance: Instance, max_nodes: int = 50) -> str:
    """A per-class census plus a clipped node/edge listing."""
    lines: List[str] = [
        f"{instance.node_count} nodes, {instance.edge_count} edges"
    ]
    census = {}
    for node_id in instance.nodes():
        label = instance.label_of(node_id)
        census[label] = census.get(label, 0) + 1
    for label in sorted(census):
        lines.append(f"  {label}: {census[label]}")
    lines.append("nodes:")
    shown = 0
    for node_id in instance.nodes():
        if shown >= max_nodes:
            lines.append(f"  ... ({instance.node_count - shown} more)")
            break
        record = instance.node_record(node_id)
        value = "" if record.print_value is NO_PRINT else f" = {record.print_value!r}"
        lines.append(f"  #{node_id} {record.label}{value}")
        shown += 1
    lines.append("edges:")
    shown = 0
    for edge in instance.edges():
        if shown >= max_nodes:
            lines.append(f"  ... ({instance.edge_count - shown} more)")
            break
        lines.append(f"  #{edge.source} --{edge.label}--> #{edge.target}")
        shown += 1
    return "\n".join(lines)
