"""Rendering schemes, instances, patterns and operations.

GOOD is expressly designed for graphical interfaces (the paper's index
terms include "user interfaces"); this package provides the textual
side of that story:

* :func:`~repro.viz.dot.scheme_to_dot` /
  :func:`~repro.viz.dot.instance_to_dot` /
  :func:`~repro.viz.dot.operation_to_dot` — Graphviz DOT export using
  the paper's drawing conventions: rectangles for object classes,
  ovals for printables, double arrowheads for multivalued edges, bold
  for the added part, double outline ("peripheries=2") for the deleted
  part, diamonds for method nodes;
* :func:`~repro.viz.ascii.summarize_scheme` /
  :func:`~repro.viz.ascii.summarize_instance` — terminal summaries.
"""

from repro.viz.ascii import summarize_instance, summarize_scheme
from repro.viz.dot import instance_to_dot, operation_to_dot, pattern_to_dot, scheme_to_dot

__all__ = [
    "instance_to_dot",
    "operation_to_dot",
    "pattern_to_dot",
    "scheme_to_dot",
    "summarize_instance",
    "summarize_scheme",
]
