"""Graphviz DOT export with the paper's drawing conventions."""

from __future__ import annotations

from typing import List, Optional

from repro.core.instance import Instance
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
)
from repro.core.pattern import NegatedPattern
from repro.core.scheme import Scheme


def _quote(text: str) -> str:
    escaped = (
        str(text).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
    return f'"{escaped}"'


def scheme_to_dot(scheme: Scheme, name: str = "scheme") -> str:
    """Render a scheme: class nodes and property edges (Fig. 1 style)."""
    lines: List[str] = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for label in sorted(scheme.object_labels):
        lines.append(f"  {_quote(label)} [shape=box];")
    for label in sorted(scheme.printable_labels):
        lines.append(f"  {_quote(label)} [shape=oval];")
    for source, edge, target in sorted(scheme.properties):
        multi = not scheme.is_functional(edge)
        style = ' arrowhead="normalnormal"' if multi else ""
        isa = " style=dashed" if edge in scheme.isa_labels else ""
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} [label={_quote(edge)}{style}{isa}];"
        )
    lines.append("}")
    return "\n".join(lines)


def _node_line(instance: Instance, node_id: int, extra: str = "") -> str:
    record = instance.node_record(node_id)
    if instance.scheme.is_printable_label(record.label):
        if record.has_print:
            label = f"{record.label}\n{record.print_value}"
        else:
            label = record.label
        shape = "oval"
    else:
        label = record.label
        shape = "box"
    return f"  n{node_id} [shape={shape} label={_quote(label)}{extra}];"


def instance_to_dot(instance: Instance, name: str = "instance") -> str:
    """Render an instance: nodes with print values, labeled edges."""
    lines: List[str] = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node_id in instance.nodes():
        lines.append(_node_line(instance, node_id))
    for edge in instance.edges():
        multi = not instance.scheme.is_functional(edge.label)
        style = ' arrowhead="normalnormal"' if multi else ""
        lines.append(
            f"  n{edge.source} -> n{edge.target} [label={_quote(edge.label)}{style}];"
        )
    lines.append("}")
    return "\n".join(lines)


def pattern_to_dot(pattern, name: str = "pattern") -> str:
    """Render a pattern; crossed parts are drawn dashed red."""
    if isinstance(pattern, NegatedPattern):
        base = pattern.positive
    else:
        base = pattern
    lines: List[str] = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for node_id in base.nodes():
        extra = ""
        predicate = base.predicate_of(node_id)
        if predicate is not None:
            extra = f' xlabel={_quote(predicate.name)}'
        lines.append(_node_line(base, node_id, extra))
    for edge in base.edges():
        lines.append(f"  n{edge.source} -> n{edge.target} [label={_quote(edge.label)}];")
    if isinstance(pattern, NegatedPattern):
        for index, extension in enumerate(pattern.extensions):
            for node_id in extension.nodes():
                if not base.has_node(node_id):
                    lines.append(
                        _node_line(extension, node_id, " color=red style=dashed").replace(
                            f"  n{node_id} ", f"  x{index}_n{node_id} "
                        )
                    )
            for edge in extension.edges():
                if base.has_edge(*edge.as_tuple()):
                    continue
                src = (
                    f"n{edge.source}" if base.has_node(edge.source) else f"x{index}_n{edge.source}"
                )
                dst = (
                    f"n{edge.target}" if base.has_node(edge.target) else f"x{index}_n{edge.target}"
                )
                lines.append(
                    f"  {src} -> {dst} [label={_quote(edge.label)} color=red style=dashed];"
                )
    lines.append("}")
    return "\n".join(lines)


def _is_method_call(operation: Operation) -> bool:
    from repro.core.methods import MethodCall

    return isinstance(operation, MethodCall)


def operation_to_dot(operation: Operation, name: Optional[str] = None) -> str:
    """Render an operation: pattern plus its bold/outlined part."""
    title = name or getattr(operation, "describe", lambda: type(operation).__name__)()
    body = pattern_to_dot(operation.source_pattern, title)
    lines = body.splitlines()
    closing = lines.pop()  # the final "}"

    if isinstance(operation, NodeAddition):
        lines.append(
            f"  new [shape=box style=bold label={_quote(operation.node_label)} penwidth=2];"
        )
        for edge_label, target in operation.edges:
            lines.append(f"  new -> n{target} [label={_quote(edge_label)} penwidth=2];")
    elif isinstance(operation, EdgeAddition):
        for source, edge_label, target in operation.edges:
            lines.append(
                f"  n{source} -> n{target} [label={_quote(edge_label)} penwidth=2];"
            )
    elif isinstance(operation, NodeDeletion):
        lines = [
            line.replace(f"  n{operation.node} [", f"  n{operation.node} [peripheries=2 ")
            for line in lines
        ]
    elif isinstance(operation, EdgeDeletion):
        for source, edge_label, target in operation.edges:
            lines = [
                line.replace(
                    f"  n{source} -> n{target} [label={_quote(edge_label)}]",
                    f"  n{source} -> n{target} [label={_quote(edge_label)} style=bold color=gray]",
                )
                for line in lines
            ]
    elif _is_method_call(operation):
        lines.append(
            f"  call [shape=diamond style=bold label={_quote(operation.method_name)} penwidth=2];"
        )
        lines.append(f"  call -> n{operation.receiver} [penwidth=2];")
        for param_label in sorted(operation.arguments):
            target = operation.arguments[param_label]
            lines.append(f"  call -> n{target} [label={_quote(param_label)} penwidth=2];")
    elif isinstance(operation, Abstraction):
        lines.append(
            f"  set [shape=box style=bold label={_quote(operation.set_label)} penwidth=2];"
        )
        lines.append(
            f"  set -> n{operation.node} [label={_quote(operation.beta)} penwidth=2];"
        )
        lines.append(
            f"  n{operation.node} -> n{operation.node} "
            f"[label={_quote('group by ' + operation.alpha)} style=dotted];"
        )
    lines.append(closing)
    return "\n".join(lines)
