"""The pattern-match plan algebra.

A :class:`Plan` is a left-deep pipeline of steps, each binding (or
checking) pattern nodes against the instance's indexes:

* :class:`ScanNodes` — seed: iterate one pattern node's base candidates
  from the label/print index;
* :class:`ScanEdges` — seed: iterate the ``edges_with_label`` index,
  binding both endpoints of one pattern edge at once;
* :class:`Extend` — bind one more pattern node by intersecting
  ``out_neighbours``/``in_neighbours`` probes from already-bound nodes
  (an index nested-loop join);
* :class:`MultiwayIntersect` — bind one more pattern node by a
  leapfrog/galloping k-way intersection of sorted adjacency arrays
  (:mod:`repro.plan.leapfrog` over :mod:`repro.graph.adjacency`); the
  worst-case-optimal operator the planner emits for cyclic patterns;
* :class:`Verify` — check a pattern edge whose endpoints are both
  bound (residual edges: self-loops, parallel edges, cross edges).

A plan carries the ``strategy`` the planner chose — ``"left-deep"``
(greedy probe-intersection pipeline) or ``"multiway"`` (global variable
order, every step a sorted-array intersection) — and renders it in
``explain()``/``to_json()`` so EXPLAIN shows which join discipline a
pattern gets at the current statistics epoch.

Steps reference pattern nodes by id; all data access happens at
execution time against live indexes, so a compiled plan stays *correct*
under any instance mutation — recompilation (keyed on
:attr:`GraphStore.stats_epoch`) is purely about keeping it *optimal*.

``Plan.explain()`` renders the pipeline in the same indent-per-child
style as the relational plan algebra in :mod:`repro.storage.minirel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple


def _ref(node: int) -> str:
    return f"?{node}"


@dataclass(frozen=True)
class ScanNodes:
    """Seed step: iterate the base candidates of one pattern node."""

    node: int
    label: str
    detail: str  # "", 'print=...' or 'predicate=...'
    est: float

    def describe(self) -> str:
        inner = f"{_ref(self.node)}: {self.label}"
        if self.detail:
            inner += f" {self.detail}"
        return f"ScanNodes({inner})"


@dataclass(frozen=True)
class ScanEdges:
    """Seed step: iterate one edge label's index, binding both ends."""

    source: int
    label: str
    target: int
    est: float

    def describe(self) -> str:
        return f"ScanEdges({_ref(self.source)} -{self.label}-> {_ref(self.target)})"


@dataclass(frozen=True)
class Extend:
    """Bind one node via adjacency probes from already-bound nodes.

    Each probe is ``(direction, edge label, anchor node)``: ``"out"``
    means the pattern has ``anchor --label--> node`` (candidates come
    from ``out_neighbours(image(anchor), label)``), ``"in"`` means
    ``node --label--> anchor`` (candidates from ``in_neighbours``).
    """

    node: int
    probes: Tuple[Tuple[str, str, int], ...]
    est: float

    def describe(self) -> str:
        parts = []
        for direction, label, anchor in self.probes:
            if direction == "out":
                parts.append(f"{_ref(anchor)} -{label}-> {_ref(self.node)}")
            else:
                parts.append(f"{_ref(self.node)} -{label}-> {_ref(anchor)}")
        return f"Extend({_ref(self.node)} via " + " & ".join(parts) + ")"


@dataclass(frozen=True)
class MultiwayIntersect:
    """Bind one node via a k-way sorted-array intersection.

    Probes read exactly like :class:`Extend` — ``(direction, edge
    label, anchor node)`` — but execution intersects the anchors' CSR
    adjacency slices *and* the node's sorted label array in one
    leapfrog pass, so candidates come out label-checked without a
    per-candidate record lookup and without materialising a set.
    """

    node: int
    probes: Tuple[Tuple[str, str, int], ...]
    est: float

    def describe(self) -> str:
        parts = []
        for direction, label, anchor in self.probes:
            if direction == "out":
                parts.append(f"{_ref(anchor)} -{label}-> {_ref(self.node)}")
            else:
                parts.append(f"{_ref(self.node)} -{label}-> {_ref(anchor)}")
        return f"MultiwayIntersect({_ref(self.node)} via " + " ∩ ".join(parts) + ")"


@dataclass(frozen=True)
class Verify:
    """Check a pattern edge between two already-bound nodes."""

    source: int
    label: str
    target: int

    def describe(self) -> str:
        return f"Verify({_ref(self.source)} -{self.label}-> {_ref(self.target)})"


PlanStep = Any  # ScanNodes | ScanEdges | Extend | MultiwayIntersect | Verify


@dataclass(frozen=True)
class Plan:
    """A compiled, cacheable join pipeline for one pattern shape.

    ``strategy`` records the join discipline the planner chose for this
    (signature, epoch) — caching the plan therefore caches the strategy
    decision itself, and an epoch bump after densification can flip a
    cyclic pattern from ``left-deep`` to ``multiway`` on recompilation.
    """

    steps: Tuple[PlanStep, ...]
    fixed: Tuple[int, ...]
    node_count: int
    edge_count: int
    estimated_rows: float
    epoch: int
    strategy: str = "left-deep"

    def explain(self, indent: int = 0) -> str:
        """EXPLAIN text, indent-per-child like ``minirel`` plans."""
        pad = " " * indent
        head = (
            f"{pad}PlanPipeline({self.node_count} nodes, {self.edge_count} edges; "
            f"strategy={self.strategy}, est_rows={self.estimated_rows:g}, "
            f"epoch={self.epoch})"
        )
        lines = [head]
        depth = indent + 2
        if self.fixed:
            bound = ", ".join(_ref(node) for node in self.fixed)
            lines.append(" " * depth + f"Fixed({bound})")
            depth += 2
        for step in self.steps:
            line = " " * depth + step.describe()
            est = getattr(step, "est", None)
            if est is not None:
                line += f" est={est:g}"
            lines.append(line)
            depth += 2
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable plan description (server ``EXPLAIN``)."""
        steps: List[Dict[str, Any]] = []
        for step in self.steps:
            entry: Dict[str, Any] = {
                "op": type(step).__name__,
                "describe": step.describe(),
            }
            est = getattr(step, "est", None)
            if est is not None:
                entry["est"] = round(est, 3)
            steps.append(entry)
        return {
            "nodes": self.node_count,
            "edges": self.edge_count,
            "fixed": list(self.fixed),
            "estimated_rows": round(self.estimated_rows, 3),
            "epoch": self.epoch,
            "strategy": self.strategy,
            "steps": steps,
            "text": self.explain(),
        }
