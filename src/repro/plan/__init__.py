"""Cost-based pattern-match planning (the matcher's query optimizer).

Section 5 of the paper argues GOOD is implementable on a relational
engine because pattern matching decomposes into joins over binary
relations; this package is that observation applied to the native
matcher.  A :class:`~repro.plan.steps.Plan` orders a pattern's edges
into a left-deep index-join pipeline using the graph store's
cardinality statistics, is cached per (pattern signature, statistics
epoch), and is executed by :mod:`repro.plan.executor` — which is what
:func:`repro.core.matching.find_matchings` dispatches to by default.

::

    from repro.plan import plan_for, explain_pattern

    plan, hit = plan_for(pattern, instance)
    print(plan.explain())
"""

from __future__ import annotations

from typing import Sequence

from repro.core.instance import Instance
from repro.core.pattern import NegatedPattern
from repro.plan.cache import MAX_CACHED_PLANS, cached_plan_count, pattern_signature, plan_for
from repro.plan.executor import execute_plan, planned_matchings
from repro.plan.leapfrog import gallop, intersect_sorted
from repro.plan.planner import (
    MULTIWAY_MIN_FANOUT,
    STRATEGIES,
    choose_strategy,
    compile_plan,
    pattern_is_cyclic,
)
from repro.plan.steps import Extend, MultiwayIntersect, Plan, ScanEdges, ScanNodes, Verify


def explain_pattern(pattern, instance: Instance, fixed: Sequence[int] = ()) -> str:
    """EXPLAIN text for a plain or crossed (negated) pattern.

    A crossed pattern plans its positive part normally; each crossed
    extension is an anti-join probe executed with the positive nodes
    pre-bound, so its sub-plan is rendered with those nodes ``Fixed``.
    """
    if isinstance(pattern, NegatedPattern):
        positive = list(pattern.positive.nodes())
        plan, _ = plan_for(pattern.positive, instance, fixed)
        lines = [plan.explain()]
        for index, extension in enumerate(pattern.extensions):
            sub_plan, _ = plan_for(extension, instance, tuple(positive))
            lines.append(f"AntiJoin(crossed extension {index})")
            lines.append(sub_plan.explain(indent=2))
        return "\n".join(lines)
    plan, _ = plan_for(pattern, instance, fixed)
    return plan.explain()


__all__ = [
    "MAX_CACHED_PLANS",
    "MULTIWAY_MIN_FANOUT",
    "STRATEGIES",
    "Extend",
    "MultiwayIntersect",
    "Plan",
    "ScanEdges",
    "ScanNodes",
    "Verify",
    "cached_plan_count",
    "choose_strategy",
    "compile_plan",
    "execute_plan",
    "explain_pattern",
    "gallop",
    "intersect_sorted",
    "pattern_is_cyclic",
    "pattern_signature",
    "plan_for",
    "planned_matchings",
]
