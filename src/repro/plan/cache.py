"""Per-store plan caching, keyed by (pattern signature, stats epoch).

Each :class:`~repro.graph.store.GraphStore` carries its own bounded
cache of compiled plans (stored in the ``_plan_cache`` slot the store
reserves for this module; copies start empty).  A lookup hits only when
the cached entry was compiled at the store's *current*
:attr:`~repro.graph.store.GraphStore.stats_epoch` — any structural
mutation advances the epoch (and the generation), invalidating every
cached plan at once.  Stale entries are recompiled in place, so a
mutate-then-requery workload pays exactly one recompilation per
pattern shape.

Signature collisions are harmless by construction: a plan only encodes
pattern node ids, labels and edge order, and executes against live
indexes — a colliding signature could at worst reuse a suboptimal step
order, never produce wrong matchings.  Print values and predicates
therefore enter the signature only to keep estimates honest (by
identity for predicates, by value for prints); unhashable print values
simply bypass the cache.

Cache hits and misses are charged to the thread-local
:mod:`repro.core.counters` collectors, surfacing in server ``STATS``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Sequence, Tuple

from repro.core import counters as _counters
from repro.core.instance import Instance
from repro.core.pattern import Pattern
from repro.graph.store import NO_PRINT
from repro.plan.planner import compile_plan
from repro.plan.steps import Plan

#: Compiled plans kept per store (small patterns; eviction is FIFO).
MAX_CACHED_PLANS = 128


def pattern_signature(pattern: Pattern, fixed: Sequence[int] = ()) -> Hashable:
    """A hashable key describing the pattern's shape and bound nodes."""
    nodes = []
    for node in sorted(pattern.nodes()):
        record = pattern.node_record(node)
        predicate = pattern.predicate_of(node)
        nodes.append(
            (
                node,
                record.label,
                record.print_value if record.has_print else NO_PRINT,
                None if predicate is None else id(predicate),
            )
        )
    edges = tuple(sorted(edge.as_tuple() for edge in pattern.edges()))
    return (tuple(nodes), edges, tuple(sorted(set(fixed))))


def plan_for(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int] = (),
) -> Tuple[Plan, bool]:
    """The cached-or-compiled plan for ``pattern``; ``(plan, cache_hit)``."""
    store = instance.store
    cache: Optional[OrderedDict] = store._plan_cache
    if cache is None:
        cache = store._plan_cache = OrderedDict()
    epoch = store.stats_epoch
    try:
        signature = pattern_signature(pattern, fixed)
        entry = cache.get(signature)
    except TypeError:  # unhashable print value: plan without caching
        _counters.charge(plan_cache_misses=1)
        return compile_plan(pattern, instance, fixed), False
    if entry is not None and entry[0] == epoch:
        cache.move_to_end(signature)
        _counters.charge(plan_cache_hits=1)
        return entry[1], True
    plan = compile_plan(pattern, instance, fixed)
    cache[signature] = (epoch, plan)
    cache.move_to_end(signature)
    while len(cache) > MAX_CACHED_PLANS:
        cache.popitem(last=False)
    _counters.charge(plan_cache_misses=1)
    return plan, False


def cached_plan_count(instance_or_store: Any) -> int:
    """How many plans the store currently caches (introspection)."""
    store = getattr(instance_or_store, "store", instance_or_store)
    cache = store._plan_cache
    return 0 if cache is None else len(cache)
