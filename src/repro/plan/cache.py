"""Per-store plan caching, keyed by (pattern signature, stats epoch).

Each :class:`~repro.graph.store.GraphStore` carries its own bounded
cache of compiled plans (stored in the ``_plan_cache`` slot the store
reserves for this module).  Entries key on ``(signature, stats_epoch)``:
any structural mutation advances the epoch, so stale plans simply stop
being found and age out of the LRU.  Keying on the epoch (rather than
stamping it into the entry) lets an MVCC snapshot — a frozen fork
pinned at an older epoch — *share* the cache dict with the live store:
each side hits its own epoch's plans and neither thrashes the other.
Because readers on other threads may touch the shared dict
concurrently, the LRU bookkeeping tolerates entries vanishing between
steps.

Signature collisions are harmless by construction: a plan only encodes
pattern node ids, labels and edge order, and executes against live
indexes — a colliding signature could at worst reuse a suboptimal step
order, never produce wrong matchings.  Print values and predicates
therefore enter the signature only to keep estimates honest (by
identity for predicates, by value for prints); unhashable print values
simply bypass the cache.

Cache hits and misses are charged to the thread-local
:mod:`repro.core.counters` collectors, surfacing in server ``STATS``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Sequence, Tuple

from repro.core import counters as _counters
from repro.core.instance import Instance
from repro.core.pattern import Pattern
from repro.graph.store import NO_PRINT
from repro.plan.planner import compile_plan
from repro.plan.steps import Plan

#: Compiled plans kept per store (small patterns; eviction is FIFO).
MAX_CACHED_PLANS = 128


def pattern_signature(pattern: Pattern, fixed: Sequence[int] = ()) -> Hashable:
    """A hashable key describing the pattern's shape and bound nodes."""
    nodes = []
    for node in sorted(pattern.nodes()):
        record = pattern.node_record(node)
        predicate = pattern.predicate_of(node)
        nodes.append(
            (
                node,
                record.label,
                record.print_value if record.has_print else NO_PRINT,
                None if predicate is None else id(predicate),
            )
        )
    edges = tuple(sorted(edge.as_tuple() for edge in pattern.edges()))
    return (tuple(nodes), edges, tuple(sorted(set(fixed))))


def plan_for(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int] = (),
) -> Tuple[Plan, bool]:
    """The cached-or-compiled plan for ``pattern``; ``(plan, cache_hit)``."""
    store = instance.store
    cache: Optional[OrderedDict] = store._plan_cache
    if cache is None:
        cache = store._plan_cache = OrderedDict()
    try:
        key = (pattern_signature(pattern, fixed), store.stats_epoch)
        plan = cache.get(key)
    except TypeError:  # unhashable print value: plan without caching
        _counters.charge(plan_cache_misses=1)
        return compile_plan(pattern, instance, fixed), False
    if plan is not None:
        try:
            cache.move_to_end(key)
        except KeyError:  # evicted by a concurrent reader; plan still valid
            pass
        _counters.charge(plan_cache_hits=1)
        return plan, True
    plan = compile_plan(pattern, instance, fixed)
    cache[key] = plan
    try:
        cache.move_to_end(key)
        while len(cache) > MAX_CACHED_PLANS:
            cache.popitem(last=False)
    except KeyError:  # concurrent eviction raced ours; cache stays bounded
        pass
    _counters.charge(plan_cache_misses=1)
    return plan, False


def cached_plan_count(instance_or_store: Any) -> int:
    """How many plans the store currently caches (introspection)."""
    store = getattr(instance_or_store, "store", instance_or_store)
    cache = store._plan_cache
    return 0 if cache is None else len(cache)
