"""The cost-based pattern planner.

Compiles a :class:`~repro.core.pattern.Pattern` into a
:class:`~repro.plan.steps.Plan`.  Two join disciplines are available:

**Left-deep** (the default for acyclic patterns): pick the most
selective seed (a node's label/print index or an edge label's index),
then greedily extend to the cheapest adjacent pattern node via index
probes, emitting residual ``Verify`` steps as soon as both endpoints
of an unconsumed edge are bound.

**Multiway** (worst-case optimal, for cyclic patterns over dense edge
labels): a global variable order built greedily by connectivity to the
bound frontier, every binding a
:class:`~repro.plan.steps.MultiwayIntersect` over sorted adjacency
arrays.  A cyclic pattern — triangle, diamond, clique — makes every
left-deep pipeline enumerate binary intermediates the final result
throws away (O(n²) pairs on a dense triangle where the output touches
O(n^1.5) ids); intersecting *all* edges into each new variable at once
is the classical worst-case-optimal-join fix.  Routing is cost-based:
cyclicity alone is not enough — on a sparse cycle the left-deep
pipeline's tiny intermediates beat the array machinery, so the planner
requires the cheapest pattern edge to still fan out
:data:`MULTIWAY_MIN_FANOUT`-fold before switching.  The decision is
stamped into :attr:`Plan.strategy`, so the per-(signature, epoch) plan
cache caches the strategy choice too.

Selectivity comes from the :class:`~repro.graph.store.GraphStore`
cardinality statistics:

* a node seed costs its label's node count (1 for a fixed print value,
  halved under a print predicate);
* an edge seed costs its label's edge count;
* an extension costs the anchor label's average out-/in-degree under
  the probe's edge label — ``degree_total / label_count``.

All tie-breaking is by node id / edge triple, so compilation is fully
deterministic for a given statistics snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.instance import Instance
from repro.core.pattern import Pattern
from repro.plan.steps import (
    Extend,
    MultiwayIntersect,
    Plan,
    PlanStep,
    ScanEdges,
    ScanNodes,
    Verify,
)

#: Assumed selectivity of a print predicate (no value histograms).
PREDICATE_SELECTIVITY = 0.5

#: Join-strategy names (:attr:`Plan.strategy`).
STRATEGIES = ("left-deep", "multiway")

#: A cyclic pattern is routed to the multiway operator only when every
#: pattern edge still fans out at least this much in its *better*
#: direction — sparse cycles keep the cheaper left-deep pipeline.
MULTIWAY_MIN_FANOUT = 4.0


def _node_seed_estimate(pattern: Pattern, instance: Instance, node: int) -> Tuple[float, str]:
    """(estimated candidates, explain detail) for seeding on ``node``."""
    record = pattern.node_record(node)
    if record.has_print:
        return 1.0, f"print={record.print_value!r}"
    count = float(instance.store.label_count(record.label))
    predicate = pattern.predicate_of(node)
    if predicate is not None:
        return count * PREDICATE_SELECTIVITY, f"predicate={predicate.name}"
    return count, ""


def _probe_fanout(instance: Instance, anchor_label: str, direction: str, edge_label: str) -> float:
    """Average number of candidates one adjacency probe yields."""
    store = instance.store
    population = store.label_count(anchor_label)
    if population == 0:
        return 0.0
    if direction == "out":
        total = store.out_degree_total(anchor_label, edge_label)
    else:
        total = store.in_degree_total(anchor_label, edge_label)
    return total / population


def pattern_is_cyclic(nodes: Sequence[int], edges: Sequence[Tuple[int, str, int]]) -> bool:
    """Whether the pattern's shape contains an undirected cycle.

    Union-find over the distinct undirected endpoint pairs: a pair
    whose endpoints are already connected closes a cycle.  Self-loops
    and parallel edges (same pair, any direction/label) are residual
    ``Verify`` work in every plan and do not count as cycles here.
    """
    parent: Dict[int, int] = {node: node for node in nodes}

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    seen_pairs: Set[Tuple[int, int]] = set()
    for source, _, target in edges:
        if source == target:
            continue
        pair = (source, target) if source < target else (target, source)
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        root_s, root_t = find(pair[0]), find(pair[1])
        if root_s == root_t:
            return True
        parent[root_s] = root_t
    return False


def _edge_fanout(instance: Instance, pattern: Pattern, edge: Tuple[int, str, int]) -> float:
    """An edge's average fanout in its cheaper probe direction."""
    source, label, target = edge
    out = _probe_fanout(instance, pattern.node_record(source).label, "out", label)
    into = _probe_fanout(instance, pattern.node_record(target).label, "in", label)
    return min(out, into)


def choose_strategy(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int] = (),
) -> str:
    """The join discipline the costing picks for this pattern/epoch.

    ``"multiway"`` iff the pattern is cyclic *and* dense enough that a
    left-deep pipeline would drown in binary intermediates — every
    pattern edge must fan out at least :data:`MULTIWAY_MIN_FANOUT` in
    its better direction (one selective edge gives left-deep a cheap
    seed, so any sparse edge keeps the old pipeline).
    """
    nodes = sorted(pattern.nodes())
    edges = sorted(edge.as_tuple() for edge in pattern.edges())
    if not edges or not pattern_is_cyclic(nodes, edges):
        return "left-deep"
    if any(pattern.node_record(node).has_print for node in nodes):
        # a print constant pins a variable to one node; left-deep
        # starting there never builds a large intermediate
        return "left-deep"
    fanout = min(_edge_fanout(instance, pattern, edge) for edge in edges)
    return "multiway" if fanout >= MULTIWAY_MIN_FANOUT else "left-deep"


def compile_plan(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int] = (),
    strategy: Optional[str] = None,
) -> Plan:
    """Compile ``pattern`` into an executable :class:`Plan`.

    ``fixed`` names the pattern nodes that arrive pre-bound (their
    bindings are supplied at execution time); the plan treats them as
    already joined and extends outward from them.  ``strategy`` forces
    a join discipline (``"left-deep"`` / ``"multiway"``); by default
    :func:`choose_strategy` decides from the cardinality statistics.
    """
    if strategy is None:
        strategy = choose_strategy(pattern, instance, fixed)
    elif strategy not in STRATEGIES:
        raise ValueError(f"unknown join strategy {strategy!r} (expected one of {STRATEGIES})")
    if strategy == "multiway":
        return _compile_multiway(pattern, instance, fixed)
    return _compile_left_deep(pattern, instance, fixed)


def _compile_left_deep(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int] = (),
) -> Plan:
    """The greedy probe-intersection pipeline (see module docstring)."""
    nodes = sorted(pattern.nodes())
    edges = sorted(edge.as_tuple() for edge in pattern.edges())
    bound: Set[int] = {node for node in fixed if node in set(nodes)}
    steps: List[PlanStep] = []
    consumed: Set[Tuple[int, str, int]] = set()
    estimated_rows = 1.0

    def flush_verifies() -> None:
        """Verify every unconsumed edge whose endpoints are both bound."""
        for edge in edges:
            source, label, target = edge
            if edge not in consumed and source in bound and target in bound:
                steps.append(Verify(source, label, target))
                consumed.add(edge)

    flush_verifies()  # fixed-fixed edges are checked before any scan

    remaining = [node for node in nodes if node not in bound]
    while remaining:
        # cheapest extension of the bound frontier, if any
        best_extend: Optional[Tuple[float, int, Tuple[Tuple[str, str, int], ...]]] = None
        for node in remaining:
            probes: List[Tuple[str, str, int]] = []
            for source, label, target in edges:
                if source == target:
                    continue  # self-loops are residual Verify steps
                if target == node and source in bound:
                    probes.append(("out", label, source))
                elif source == node and target in bound:
                    probes.append(("in", label, target))
            if not probes:
                continue
            probes.sort()
            fanout = min(
                _probe_fanout(instance, pattern.node_record(anchor).label, direction, label)
                for direction, label, anchor in probes
            )
            if pattern.node_record(node).has_print:
                fanout = min(fanout, 1.0)
            candidate = (fanout, node, tuple(probes))
            if best_extend is None or candidate[:2] < best_extend[:2]:
                best_extend = candidate

        if best_extend is not None:
            fanout, node, probes = best_extend
            steps.append(Extend(node, probes, fanout))
            estimated_rows *= max(fanout, 0.0)
            bound.add(node)
            remaining.remove(node)
            # every probe edge is enforced by the intersection itself,
            # so none of them needs a residual Verify
            for direction, label, anchor in probes:
                if direction == "out":
                    consumed.add((anchor, label, node))
                else:
                    consumed.add((node, label, anchor))
        else:
            # no edge reaches the frontier: open a new component with
            # the most selective seed — a node scan or an edge scan
            best_node: Optional[Tuple[float, int]] = None
            for node in remaining:
                est, _ = _node_seed_estimate(pattern, instance, node)
                if best_node is None or (est, node) < best_node:
                    best_node = (est, node)
            best_edge: Optional[Tuple[float, Tuple[int, str, int]]] = None
            for edge in edges:
                source, label, target = edge
                if edge in consumed or source in bound or target in bound:
                    continue
                est = float(instance.store.edge_label_count(label))
                if best_edge is None or (est, edge) < best_edge:
                    best_edge = (est, edge)
            if best_edge is not None and best_edge[0] < best_node[0]:
                est, (source, label, target) = best_edge
                steps.append(ScanEdges(source, label, target, est))
                estimated_rows *= est
                consumed.add((source, label, target))
                bound.add(source)
                bound.add(target)
                remaining = [node for node in remaining if node not in (source, target)]
            else:
                est, node = best_node
                detail = _node_seed_estimate(pattern, instance, node)[1]
                record = pattern.node_record(node)
                steps.append(ScanNodes(node, record.label, detail, est))
                estimated_rows *= est
                bound.add(node)
                remaining.remove(node)
        flush_verifies()

    return Plan(
        steps=tuple(steps),
        fixed=tuple(sorted(set(fixed) & set(nodes))),
        node_count=len(nodes),
        edge_count=len(edges),
        estimated_rows=estimated_rows,
        epoch=instance.store.stats_epoch,
        strategy="left-deep",
    )


def _compile_multiway(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int] = (),
) -> Plan:
    """The worst-case-optimal pipeline: one global variable order, one
    :class:`MultiwayIntersect` per variable reachable from the frontier.

    Variable ordering is the classical WCOJ heuristic: bind next the
    variable with the *most* pattern edges into the already-bound set
    (maximising how many arrays constrain it at once), tie-broken by
    the smaller seed estimate and then by node id.  Every non-self-loop
    edge is consumed by the intersection that binds its later endpoint,
    so the only residual ``Verify`` steps are self-loops and edges
    between pre-bound (``fixed``) nodes.
    """
    nodes = sorted(pattern.nodes())
    edges = sorted(edge.as_tuple() for edge in pattern.edges())
    bound: Set[int] = {node for node in fixed if node in set(nodes)}
    steps: List[PlanStep] = []
    consumed: Set[Tuple[int, str, int]] = set()
    estimated_rows = 1.0

    def flush_verifies() -> None:
        for edge in edges:
            source, label, target = edge
            if edge not in consumed and source in bound and target in bound:
                steps.append(Verify(source, label, target))
                consumed.add(edge)

    flush_verifies()

    remaining = [node for node in nodes if node not in bound]
    while remaining:
        best: Optional[Tuple[int, float, int, Tuple[Tuple[str, str, int], ...]]] = None
        for node in remaining:
            probes: List[Tuple[str, str, int]] = []
            for source, label, target in edges:
                if source == target:
                    continue
                if target == node and source in bound:
                    probes.append(("out", label, source))
                elif source == node and target in bound:
                    probes.append(("in", label, target))
            probes.sort()
            seed_est, _ = _node_seed_estimate(pattern, instance, node)
            candidate = (-len(probes), seed_est, node, tuple(probes))
            if best is None or candidate[:3] < best[:3]:
                best = candidate
        assert best is not None
        _, seed_est, node, probes = best
        if probes:
            fanout = min(
                _probe_fanout(instance, pattern.node_record(anchor).label, direction, label)
                for direction, label, anchor in probes
            )
            if pattern.node_record(node).has_print:
                fanout = min(fanout, 1.0)
            steps.append(MultiwayIntersect(node, probes, fanout))
            estimated_rows *= max(fanout, 0.0)
            for direction, label, anchor in probes:
                if direction == "out":
                    consumed.add((anchor, label, node))
                else:
                    consumed.add((node, label, anchor))
        else:
            detail = _node_seed_estimate(pattern, instance, node)[1]
            record = pattern.node_record(node)
            steps.append(ScanNodes(node, record.label, detail, seed_est))
            estimated_rows *= seed_est
        bound.add(node)
        remaining.remove(node)
        flush_verifies()

    return Plan(
        steps=tuple(steps),
        fixed=tuple(sorted(set(fixed) & set(nodes))),
        node_count=len(nodes),
        edge_count=len(edges),
        estimated_rows=estimated_rows,
        epoch=instance.store.stats_epoch,
        strategy="multiway",
    )
