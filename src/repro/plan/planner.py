"""The cost-based pattern planner.

Compiles a :class:`~repro.core.pattern.Pattern` into a
:class:`~repro.plan.steps.Plan`: pick the most selective seed (a node's
label/print index or an edge label's index), then greedily extend to
the cheapest adjacent pattern node via index probes, emitting residual
``Verify`` steps as soon as both endpoints of an unconsumed edge are
bound.  Selectivity comes from the :class:`~repro.graph.store.GraphStore`
cardinality statistics:

* a node seed costs its label's node count (1 for a fixed print value,
  halved under a print predicate);
* an edge seed costs its label's edge count;
* an extension costs the anchor label's average out-/in-degree under
  the probe's edge label — ``degree_total / label_count``.

All tie-breaking is by node id / edge triple, so compilation is fully
deterministic for a given statistics snapshot.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.core.instance import Instance
from repro.core.pattern import Pattern
from repro.plan.steps import Extend, Plan, PlanStep, ScanEdges, ScanNodes, Verify

#: Assumed selectivity of a print predicate (no value histograms).
PREDICATE_SELECTIVITY = 0.5


def _node_seed_estimate(pattern: Pattern, instance: Instance, node: int) -> Tuple[float, str]:
    """(estimated candidates, explain detail) for seeding on ``node``."""
    record = pattern.node_record(node)
    if record.has_print:
        return 1.0, f"print={record.print_value!r}"
    count = float(instance.store.label_count(record.label))
    predicate = pattern.predicate_of(node)
    if predicate is not None:
        return count * PREDICATE_SELECTIVITY, f"predicate={predicate.name}"
    return count, ""


def _probe_fanout(instance: Instance, anchor_label: str, direction: str, edge_label: str) -> float:
    """Average number of candidates one adjacency probe yields."""
    store = instance.store
    population = store.label_count(anchor_label)
    if population == 0:
        return 0.0
    if direction == "out":
        total = store.out_degree_total(anchor_label, edge_label)
    else:
        total = store.in_degree_total(anchor_label, edge_label)
    return total / population


def compile_plan(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int] = (),
) -> Plan:
    """Compile ``pattern`` into an executable :class:`Plan`.

    ``fixed`` names the pattern nodes that arrive pre-bound (their
    bindings are supplied at execution time); the plan treats them as
    already joined and extends outward from them.
    """
    nodes = sorted(pattern.nodes())
    edges = sorted(edge.as_tuple() for edge in pattern.edges())
    bound: Set[int] = {node for node in fixed if node in set(nodes)}
    steps: List[PlanStep] = []
    consumed: Set[Tuple[int, str, int]] = set()
    estimated_rows = 1.0

    def flush_verifies() -> None:
        """Verify every unconsumed edge whose endpoints are both bound."""
        for edge in edges:
            source, label, target = edge
            if edge not in consumed and source in bound and target in bound:
                steps.append(Verify(source, label, target))
                consumed.add(edge)

    flush_verifies()  # fixed-fixed edges are checked before any scan

    remaining = [node for node in nodes if node not in bound]
    while remaining:
        # cheapest extension of the bound frontier, if any
        best_extend: Optional[Tuple[float, int, Tuple[Tuple[str, str, int], ...]]] = None
        for node in remaining:
            probes: List[Tuple[str, str, int]] = []
            for source, label, target in edges:
                if source == target:
                    continue  # self-loops are residual Verify steps
                if target == node and source in bound:
                    probes.append(("out", label, source))
                elif source == node and target in bound:
                    probes.append(("in", label, target))
            if not probes:
                continue
            probes.sort()
            fanout = min(
                _probe_fanout(instance, pattern.node_record(anchor).label, direction, label)
                for direction, label, anchor in probes
            )
            if pattern.node_record(node).has_print:
                fanout = min(fanout, 1.0)
            candidate = (fanout, node, tuple(probes))
            if best_extend is None or candidate[:2] < best_extend[:2]:
                best_extend = candidate

        if best_extend is not None:
            fanout, node, probes = best_extend
            steps.append(Extend(node, probes, fanout))
            estimated_rows *= max(fanout, 0.0)
            bound.add(node)
            remaining.remove(node)
            # every probe edge is enforced by the intersection itself,
            # so none of them needs a residual Verify
            for direction, label, anchor in probes:
                if direction == "out":
                    consumed.add((anchor, label, node))
                else:
                    consumed.add((node, label, anchor))
        else:
            # no edge reaches the frontier: open a new component with
            # the most selective seed — a node scan or an edge scan
            best_node: Optional[Tuple[float, int]] = None
            for node in remaining:
                est, _ = _node_seed_estimate(pattern, instance, node)
                if best_node is None or (est, node) < best_node:
                    best_node = (est, node)
            best_edge: Optional[Tuple[float, Tuple[int, str, int]]] = None
            for edge in edges:
                source, label, target = edge
                if edge in consumed or source in bound or target in bound:
                    continue
                est = float(instance.store.edge_label_count(label))
                if best_edge is None or (est, edge) < best_edge:
                    best_edge = (est, edge)
            if best_edge is not None and best_edge[0] < best_node[0]:
                est, (source, label, target) = best_edge
                steps.append(ScanEdges(source, label, target, est))
                estimated_rows *= est
                consumed.add((source, label, target))
                bound.add(source)
                bound.add(target)
                remaining = [node for node in remaining if node not in (source, target)]
            else:
                est, node = best_node
                detail = _node_seed_estimate(pattern, instance, node)[1]
                record = pattern.node_record(node)
                steps.append(ScanNodes(node, record.label, detail, est))
                estimated_rows *= est
                bound.add(node)
                remaining.remove(node)
        flush_verifies()

    return Plan(
        steps=tuple(steps),
        fixed=tuple(sorted(set(fixed) & set(nodes))),
        node_count=len(nodes),
        edge_count=len(edges),
        estimated_rows=estimated_rows,
        epoch=instance.store.stats_epoch,
    )
