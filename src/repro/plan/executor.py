"""Plan execution: the planner-backed matcher.

:func:`planned_matchings` is what :func:`repro.core.matching.find_matchings`
dispatches to — it looks the pattern's plan up in the per-store cache
(compiling on miss) and streams matchings from :func:`execute_plan`.
The executor enumerates deterministically (sorted candidates at every
step) and yields exactly the set of label/print/edge-preserving total
maps — equivalence with the backtracking and naive matchers is
property-tested.

Index probes (adjacency and edge-index reads) are tallied locally and
charged to the thread-local :mod:`repro.core.counters` collectors when
the generator finishes or is closed, so server ``STATS`` sees them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional

from repro.core import counters as _counters
from repro.core.instance import Instance
from repro.core.pattern import Pattern
from repro.graph.store import NO_PRINT
from repro.plan.cache import plan_for
from repro.plan.steps import Extend, Plan, ScanEdges, ScanNodes, Verify

#: A matching: pattern node id -> instance node id.
Matching = Dict[int, int]


def _seed_candidates(pattern: Pattern, instance: Instance, node: int) -> FrozenSet[int]:
    """Base candidates of a seed node (label/print/predicate indexes)."""
    record = pattern.node_record(node)
    if record.has_print:
        found = instance.find_printable(record.label, record.print_value)
        return frozenset() if found is None else frozenset((found,))
    candidates = instance.nodes_with_label(record.label)
    predicate = pattern.predicate_of(node)
    if predicate is not None:
        candidates = frozenset(
            candidate
            for candidate in candidates
            if instance.print_of(candidate) is not NO_PRINT
            and predicate(instance.print_of(candidate))
        )
    return candidates


def _binding_ok(pattern: Pattern, instance: Instance, pattern_node: int, instance_node: int) -> bool:
    """Whether a pre-bound (pattern node, instance node) pair is legal."""
    if not instance.has_node(instance_node):
        return False
    p_record = pattern.node_record(pattern_node)
    i_record = instance.node_record(instance_node)
    if p_record.label != i_record.label:
        return False
    if p_record.has_print and (
        not i_record.has_print or p_record.print_value != i_record.print_value
    ):
        return False
    predicate = pattern.predicate_of(pattern_node)
    if predicate is not None:
        if not i_record.has_print or not predicate(i_record.print_value):
            return False
    return True


def execute_plan(
    plan: Plan,
    pattern: Pattern,
    instance: Instance,
    fixed: Optional[Matching] = None,
) -> Iterator[Matching]:
    """Stream the matchings ``plan`` enumerates, deterministically."""
    fixed = dict(fixed or {})
    probes = [0]  # index reads, charged when the generator winds down
    try:
        for pattern_node, instance_node in fixed.items():
            if not _binding_ok(pattern, instance, pattern_node, instance_node):
                return
        records = {node: pattern.node_record(node) for node in pattern.nodes()}
        predicates = {node: pattern.predicate_of(node) for node in pattern.nodes()}
        store = instance.store
        assignment: Matching = dict(fixed)
        steps = plan.steps

        def node_ok(node: int, candidate: int) -> bool:
            record = records[node]
            c_record = instance.node_record(candidate)
            if c_record.label != record.label:
                return False
            if record.has_print and (
                not c_record.has_print or c_record.print_value != record.print_value
            ):
                return False
            predicate = predicates[node]
            if predicate is not None:
                if not c_record.has_print or not predicate(c_record.print_value):
                    return False
            return True

        def run(index: int) -> Iterator[Matching]:
            if index == len(steps):
                yield dict(assignment)
                return
            step = steps[index]
            if type(step) is Extend:
                adjacency: List[FrozenSet[int]] = []
                for direction, label, anchor in step.probes:
                    image = assignment[anchor]
                    if direction == "out":
                        adjacency.append(store.out_neighbours(image, label))
                    else:
                        adjacency.append(store.in_neighbours(image, label))
                probes[0] += len(adjacency)
                adjacency.sort(key=len)
                narrowest = adjacency[0]
                if not narrowest:
                    return
                result = set(narrowest)
                for narrower in adjacency[1:]:
                    result &= narrower
                    if not result:
                        return
                node = step.node
                for candidate in sorted(result):
                    if node_ok(node, candidate):
                        assignment[node] = candidate
                        yield from run(index + 1)
                        del assignment[node]
            elif type(step) is Verify:
                probes[0] += 1
                if store.has_edge(
                    assignment[step.source], step.label, assignment[step.target]
                ):
                    yield from run(index + 1)
            elif type(step) is ScanNodes:
                probes[0] += 1
                node = step.node
                for candidate in sorted(_seed_candidates(pattern, instance, node)):
                    assignment[node] = candidate
                    yield from run(index + 1)
                    del assignment[node]
            else:  # ScanEdges
                probes[0] += 1
                source, target = step.source, step.target
                if source == target:
                    for s, t in sorted(store.edges_with_label(step.label)):
                        if s == t and node_ok(source, s):
                            assignment[source] = s
                            yield from run(index + 1)
                            del assignment[source]
                else:
                    for s, t in sorted(store.edges_with_label(step.label)):
                        if node_ok(source, s) and node_ok(target, t):
                            assignment[source] = s
                            assignment[target] = t
                            yield from run(index + 1)
                            del assignment[target]
                            del assignment[source]

        yield from run(0)
    finally:
        if probes[0]:
            _counters.charge(index_probes=probes[0])


def planned_matchings(
    pattern: Pattern,
    instance: Instance,
    fixed: Optional[Matching] = None,
) -> Iterator[Matching]:
    """Plan (through the cache) and execute in one call.

    This is the default matcher behind
    :func:`repro.core.matching.find_matchings`.
    """
    plan, _ = plan_for(pattern, instance, tuple(fixed) if fixed else ())
    yield from execute_plan(plan, pattern, instance, fixed)
