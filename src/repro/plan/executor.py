"""Plan execution: the planner-backed matcher.

:func:`planned_matchings` is what :func:`repro.core.matching.find_matchings`
dispatches to — it looks the pattern's plan up in the per-store cache
(compiling on miss) and streams matchings from :func:`execute_plan`.
The executor enumerates deterministically (sorted candidates at every
step) and yields exactly the set of label/print/edge-preserving total
maps — equivalence with the backtracking and naive matchers is
property-tested.

Left-deep plans run on a recursive step interpreter.  Multiway plans
(:attr:`Plan.strategy` == ``"multiway"``) are *compiled*: the plan is
code-generated into one nested-``for`` generator function in which
every :class:`~repro.plan.steps.MultiwayIntersect` becomes a chain of
C-level set intersections, each probe fetch and partial intersection
hoisted to the loop level of its deepest anchor variable — the trie
ordering of leapfrog triejoin — with an early ``continue`` as soon as
any partial intersection comes up empty.  That removes the two costs
that dominate the interpreter on cyclic patterns (a generator frame
per binding and a per-candidate label/print re-check; candidates come
out of the intersection already label-checked), which is where the
multiway plan's measured speedup comes from.  The interpreter keeps a
``MultiwayIntersect`` branch built on the galloping k-way
:func:`~repro.plan.leapfrog.intersect_sorted` as the reference path —
tests run both and assert identical output.

*Seeded* plans (``plan.fixed`` non-empty) compile too, whatever their
strategy — ``Extend`` folds into the same intersection chains, reading
the label's sorted-adjacency span sets when an index for the current
epoch is warm and the store's cached neighbour views otherwise (a
fixpoint round mutates the store between rounds, and rebuilding a full
CSR index per round would cost O(E log E) each time — exactly the
wrong trade for delta seeding).  :func:`seeded_runner` instantiates
one runner per plan and hands back a plain callable, so semi-naive
delta rounds (:func:`repro.core.matching.find_matchings_delta`) pay
the per-plan setup once and a single generator per seed — not a plan
lookup, a signature hash and an interpreter frame stack per delta
edge.  Unseeded left-deep plans stay on the interpreter: they
amortise its overhead over a whole enumeration, and they are the
baseline the multiway benchmarks measure against.

Index probes (adjacency and edge-index reads), leapfrog seeks and
multiway intersections are tallied locally and charged to the
thread-local :mod:`repro.core.counters` collectors when the generator
finishes or is closed, so server ``STATS`` sees them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core import counters as _counters
from repro.core.instance import Instance
from repro.core.pattern import Pattern
from repro.graph.store import NO_PRINT
from repro.plan.cache import plan_for
from repro.plan.leapfrog import intersect_sorted
from repro.plan.steps import Extend, MultiwayIntersect, Plan, ScanEdges, ScanNodes, Verify

#: A matching: pattern node id -> instance node id.
Matching = Dict[int, int]

#: Compiled nested-loop runners, keyed by plan (codegen is pure in the
#: plan shape; per-instance data is injected at call time).
MAX_COMPILED_RUNNERS = 128
_runner_cache: "OrderedDict[Plan, Tuple[Any, Dict[str, Any]]]" = OrderedDict()

#: Test hook: set False to force multiway plans through the interpreter.
_USE_COMPILED_MULTIWAY = True


class _NeighbourSets(dict):
    """Lazy ``node -> frozenset`` views over one store adjacency direction.

    The compiled runner's ``Extend`` fold subscripts these exactly like
    :class:`repro.graph.adjacency.SpanSets`; misses fetch the store's
    cached neighbour view (itself a stable frozenset) and memoize it,
    so repeated anchors inside one enumeration cost one C-level dict
    subscript.  Used for seeded left-deep plans when no sorted-adjacency
    index is warm for the current epoch.
    """

    __slots__ = ("_fetch", "_label")

    def __init__(self, fetch, label: str) -> None:
        super().__init__()
        self._fetch = fetch
        self._label = label

    def __missing__(self, node: int) -> FrozenSet[int]:
        value = self._fetch(node, self._label)
        self[node] = value
        return value


def _seed_candidates(pattern: Pattern, instance: Instance, node: int) -> FrozenSet[int]:
    """Base candidates of a seed node (label/print/predicate indexes)."""
    record = pattern.node_record(node)
    if record.has_print:
        found = instance.find_printable(record.label, record.print_value)
        return frozenset() if found is None else frozenset((found,))
    candidates = instance.nodes_with_label(record.label)
    predicate = pattern.predicate_of(node)
    if predicate is not None:
        candidates = frozenset(
            candidate
            for candidate in candidates
            if instance.print_of(candidate) is not NO_PRINT
            and predicate(instance.print_of(candidate))
        )
    return candidates


def _binding_ok(pattern: Pattern, instance: Instance, pattern_node: int, instance_node: int) -> bool:
    """Whether a pre-bound (pattern node, instance node) pair is legal."""
    if not instance.has_node(instance_node):
        return False
    p_record = pattern.node_record(pattern_node)
    if p_record.label != instance.label_of(instance_node):
        return False
    # the columnar store answers label/print lookups without building a
    # NodeRecord, so compare the raw print value (NO_PRINT never equals
    # a real value, covering the has-print check for free)
    i_print = instance.print_of(instance_node)
    if p_record.has_print and p_record.print_value != i_print:
        return False
    predicate = pattern.predicate_of(pattern_node)
    if predicate is not None:
        if i_print is NO_PRINT or not predicate(i_print):
            return False
    return True


# ----------------------------------------------------------------------
# compiled multiway runner
# ----------------------------------------------------------------------


def _generate_runner(plan: Plan) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Source text + environment spec for a compilable plan, or ``None``.

    The generated generator function binds one loop per ``ScanNodes``/
    ``MultiwayIntersect``/``Extend`` step (the latter two share the
    fold; only ``MultiwayIntersect`` counts as an intersection).  Each
    operand (a lazy per-node frozenset over the label's adjacency —
    CSR span sets or store neighbour views, chosen at instantiation —
    or the node's label/print constraint set) is folded into a running
    partial intersection at the loop level of its anchor variable, so
    work that does not depend on the innermost variables happens once
    per outer binding and an empty partial prunes the whole subtree
    early.  All per-instance data arrives through default arguments,
    making every hot-loop name a local.

    Returns ``None`` when the plan contains a step the generator does
    not model (the caller falls back to the interpreter).
    """
    bound_depth: Dict[int, int] = {node: 0 for node in plan.fixed}
    # regions[d] holds the lines inside loop d (region 0 = preamble);
    # loops[d - 1] describes the loop that opens region d
    regions: List[List[str]] = [[f"f{node} = fixed[{node}]" for node in plan.fixed]]
    loops: List[Tuple[int, str]] = []
    probes_in: List[int] = [0]
    meets_in: List[int] = [0]
    labels: Dict[str, str] = {}
    adjacency: Dict[Tuple[str, str], str] = {}
    scan_nodes: List[int] = []
    mw_nodes: List[int] = []
    depth = 0

    def label_ref(label: str) -> str:
        name = labels.get(label)
        if name is None:
            name = labels[label] = f"l{len(labels)}"
        return name

    def adjacency_ref(direction: str, label: str) -> str:
        name = adjacency.get((direction, label))
        if name is None:
            name = adjacency[(direction, label)] = f"a{len(adjacency)}"
        return name

    def ref(node: int) -> Optional[str]:
        d = bound_depth.get(node)
        if d is None:
            return None
        return f"f{node}" if d == 0 and node in plan.fixed else f"v{node}"

    def open_loop(node: int, iterable: str) -> None:
        nonlocal depth
        depth += 1
        loops.append((node, iterable))
        regions.append([])
        probes_in.append(0)
        meets_in.append(0)
        bound_depth[node] = depth

    for step in plan.steps:
        kind = type(step)
        if kind is ScanNodes:
            probes_in[depth] += 1
            scan_nodes.append(step.node)
            open_loop(step.node, f"seeds{step.node}")
        elif kind is MultiwayIntersect or kind is Extend:
            node = step.node
            by_depth: Dict[int, List[str]] = {}
            for direction, label, anchor in step.probes:
                anchor_ref = ref(anchor)
                if anchor_ref is None:
                    return None
                expr = f"{adjacency_ref(direction, label)}[{anchor_ref}]"
                by_depth.setdefault(bound_depth[anchor], []).append(expr)
            if not by_depth:
                return None
            mw_nodes.append(node)
            current = f"c{node}"
            fold = 0
            for d in sorted(by_depth):
                for expr in by_depth[d]:
                    fold += 1
                    var = f"r{node}_{fold}"
                    regions[d].append(f"{var} = {current} & {expr}")
                    regions[d].append(
                        f"if not {var}: " + ("return" if d == 0 else "continue")
                    )
                    probes_in[d] += 1
                    current = var
            if kind is MultiwayIntersect:
                meets_in[max(by_depth)] += 1
            # singleton results skip the sort: order is trivially stable
            open_loop(node, f"{current} if len({current}) < 2 else sorted({current})")
        elif kind is Verify:
            source_ref, target_ref = ref(step.source), ref(step.target)
            if source_ref is None or target_ref is None:
                return None
            probes_in[depth] += 1
            regions[depth].append(
                f"if not he({source_ref}, {label_ref(step.label)}, {target_ref}): "
                + ("return" if depth == 0 else "continue")
            )
        else:
            return None

    loop_bound = [node for node, d in bound_depth.items() if d > 0]
    if loop_bound:
        entries = ", ".join(f"{node}: v{node}" for node in loop_bound)
        prefix = "{**fixed, " if plan.fixed else "{"
        regions[depth].append(f"yield {prefix}{entries}}}")
    else:
        regions[depth].append("yield dict(fixed)")

    env_names = (
        list(adjacency.values())
        + list(labels.values())
        + [f"c{node}" for node in mw_nodes]
        + [f"seeds{node}" for node in scan_nodes]
        + (["he"] if labels else [])
    )
    defaults = "".join(f", {name}={name}" for name in env_names)
    lines = [f"def _runner(fixed, tally{defaults}):", "    probes = 0", "    meets = 0", "    try:"]
    pad = "        "
    if probes_in[0] or meets_in[0]:
        lines.append(pad + f"probes += {probes_in[0]}; meets += {meets_in[0]}")
    for d, region in enumerate(regions):
        if (
            d < len(loops)
            and region
            and region[-1] == f"if not {loops[d][1].split(' ')[0]}: continue"
        ):
            # the loop over an empty candidate set is its own guard
            region = region[:-1]
        lines.extend(pad + line for line in region)
        if d < len(loops):
            node, iterable = loops[d]
            if " " in iterable:  # a conditional expression, not a bare name
                lines.append(pad + f"i{node} = {iterable}")
                iterable = f"i{node}"
            # the next region's per-iteration tallies, charged in bulk
            # from the trip count (one line per binding, not per step)
            inner_probes, inner_meets = probes_in[d + 1], meets_in[d + 1]
            if inner_probes or inner_meets:
                lines.append(pad + f"n{node} = len({iterable})")
                charges = []
                if inner_probes:
                    factor = f"{inner_probes} * n{node}" if inner_probes > 1 else f"n{node}"
                    charges.append(f"probes += {factor}")
                if inner_meets:
                    factor = f"{inner_meets} * n{node}" if inner_meets > 1 else f"n{node}"
                    charges.append(f"meets += {factor}")
                lines.append(pad + "; ".join(charges))
            lines.append(pad + f"for v{node} in {iterable}:")
            pad += "    "
    lines.append("    finally:")
    lines.append("        charge(index_probes=probes, intersections=meets)")
    spec = {
        "labels": labels,
        "adjacency": adjacency,
        "scan_nodes": scan_nodes,
        "mw_nodes": mw_nodes,
    }
    return "\n".join(lines), spec


def _runner_for(plan: Plan) -> Optional[Tuple[Any, Dict[str, Any]]]:
    """The compiled code object + env spec for ``plan`` (LRU-cached)."""
    cached = _runner_cache.get(plan)
    if cached is not None:
        _runner_cache.move_to_end(plan)
        return cached
    generated = _generate_runner(plan)
    if generated is None:
        return None
    source, spec = generated
    code = compile(source, "<multiway-plan>", "exec")
    _runner_cache[plan] = (code, spec)
    while len(_runner_cache) > MAX_COMPILED_RUNNERS:
        _runner_cache.popitem(last=False)
    return code, spec


def _instantiate_runner(plan: Plan, pattern: Pattern, instance: Instance):
    """Bind the compiled runner to live data; ``None`` if uncompilable.

    Returns the generator *function* (called as ``runner(fixed, None)``),
    so callers with many seeds — the semi-naive delta path — pay this
    setup once.  Multiway plans read the label's CSR span sets (built on
    demand); other plans read span sets only when an index for the
    current epoch is already warm, falling back to the store's cached
    neighbour views — delta seeding must not force an O(E log E) index
    build every fixpoint round.
    """
    compiled = _runner_for(plan)
    if compiled is None:
        return None
    code, spec = compiled
    store = instance.store
    env: Dict[str, Any] = {"he": store.has_edge, "charge": _counters.charge}
    for label, name in spec["labels"].items():
        env[name] = label
    build_index = plan.strategy == "multiway"
    for (direction, label), name in spec["adjacency"].items():
        adjacency_index = (
            store.sorted_adjacency(label) if build_index else store.cached_adjacency(label)
        )
        if adjacency_index is not None:
            env[name] = (
                adjacency_index.targets_sets()
                if direction == "out"
                else adjacency_index.sources_sets()
            )
        elif direction == "out":
            env[name] = _NeighbourSets(store.out_neighbours, label)
        else:
            env[name] = _NeighbourSets(store.in_neighbours, label)
    for node in spec["scan_nodes"]:
        env[f"seeds{node}"] = sorted(_seed_candidates(pattern, instance, node))
    for node in spec["mw_nodes"]:
        record = pattern.node_record(node)
        if record.has_print or pattern.predicate_of(node) is not None:
            env[f"c{node}"] = frozenset(_seed_candidates(pattern, instance, node))
        else:
            env[f"c{node}"] = store.nodes_with_label(record.label)
    exec(code, env)
    return env["_runner"]


def seeded_runner(plan: Plan, pattern: Pattern, instance: Instance):
    """A ``fixed -> Iterator[Matching]`` callable with setup hoisted.

    The factory behind :func:`repro.core.matching.find_matchings_delta`:
    one compiled-runner instantiation (or one interpreter closure) per
    plan, one generator per seed.  Callers must validate the seed
    bindings themselves (:func:`_binding_ok`) — the runner assumes the
    fixed nodes already satisfy their pattern records.
    """
    if _USE_COMPILED_MULTIWAY and (plan.strategy == "multiway" or plan.fixed):
        runner = _instantiate_runner(plan, pattern, instance)
        if runner is not None:
            return lambda fixed: runner(fixed, None)
    return lambda fixed: _interpret_plan(plan, pattern, instance, dict(fixed))


# ----------------------------------------------------------------------
# step interpreter
# ----------------------------------------------------------------------


def execute_plan(
    plan: Plan,
    pattern: Pattern,
    instance: Instance,
    fixed: Optional[Matching] = None,
) -> Iterator[Matching]:
    """Stream the matchings ``plan`` enumerates, deterministically.

    A dispatcher, not a generator: multiway and seeded plans get their
    compiled nested-loop runner returned directly (no extra frame per
    match), everything else goes through the step interpreter.
    """
    fixed = dict(fixed or {})
    for pattern_node, instance_node in fixed.items():
        if not _binding_ok(pattern, instance, pattern_node, instance_node):
            return iter(())
    if (
        _USE_COMPILED_MULTIWAY
        and (plan.strategy == "multiway" or plan.fixed)
        and not (fixed and not plan.fixed)
    ):
        runner = _instantiate_runner(plan, pattern, instance)
        if runner is not None:
            return runner(fixed, None)
    return _interpret_plan(plan, pattern, instance, fixed)


def _interpret_plan(
    plan: Plan,
    pattern: Pattern,
    instance: Instance,
    fixed: Matching,
) -> Iterator[Matching]:
    """The recursive step interpreter (reference path for every plan)."""
    # work tallies: [index probes, leapfrog seeks, multiway intersections]
    tally = [0, 0, 0]
    try:
        records = {node: pattern.node_record(node) for node in pattern.nodes()}
        predicates = {node: pattern.predicate_of(node) for node in pattern.nodes()}
        store = instance.store
        assignment: Matching = dict(fixed)
        steps = plan.steps

        label_of = instance.label_of
        print_of = instance.print_of

        def node_ok(node: int, candidate: int) -> bool:
            # raw column reads — no NodeRecord allocation per candidate
            record = records[node]
            if label_of(candidate) != record.label:
                return False
            c_print = print_of(candidate)
            if record.has_print and record.print_value != c_print:
                return False
            predicate = predicates[node]
            if predicate is not None:
                if c_print is NO_PRINT or not predicate(c_print):
                    return False
            return True

        def run(index: int) -> Iterator[Matching]:
            if index == len(steps):
                yield dict(assignment)
                return
            step = steps[index]
            if type(step) is Extend:
                adjacency: List[FrozenSet[int]] = []
                for direction, label, anchor in step.probes:
                    image = assignment[anchor]
                    if direction == "out":
                        adjacency.append(store.out_neighbours(image, label))
                    else:
                        adjacency.append(store.in_neighbours(image, label))
                tally[0] += len(adjacency)
                adjacency.sort(key=len)
                narrowest = adjacency[0]
                if not narrowest:
                    return
                result = set(narrowest)
                for narrower in adjacency[1:]:
                    result &= narrower
                    if not result:
                        return
                node = step.node
                for candidate in sorted(result):
                    if node_ok(node, candidate):
                        assignment[node] = candidate
                        yield from run(index + 1)
                        del assignment[node]
            elif type(step) is MultiwayIntersect:
                # reference path: galloping k-way intersection over the
                # CSR adjacency slices and the node's sorted label array
                node = step.node
                operands: List[Sequence[int]] = []
                for direction, label, anchor in step.probes:
                    adjacency_index = store.sorted_adjacency(label)
                    image = assignment[anchor]
                    if direction == "out":
                        operands.append(adjacency_index.targets_of(image))
                    else:
                        operands.append(adjacency_index.sources_of(image))
                tally[0] += len(operands)
                record = records[node]
                if record.has_print or predicates[node] is not None:
                    # tiny explicit constraint list: enforces label,
                    # print value and predicate in the intersection
                    operands.append(sorted(_seed_candidates(pattern, instance, node)))
                else:
                    operands.append(store.sorted_nodes_with_label(record.label))
                candidates, step_seeks = intersect_sorted(operands)
                tally[1] += step_seeks
                tally[2] += 1
                for candidate in candidates:
                    assignment[node] = candidate
                    yield from run(index + 1)
                    del assignment[node]
            elif type(step) is Verify:
                tally[0] += 1
                if store.has_edge(
                    assignment[step.source], step.label, assignment[step.target]
                ):
                    yield from run(index + 1)
            elif type(step) is ScanNodes:
                tally[0] += 1
                node = step.node
                for candidate in sorted(_seed_candidates(pattern, instance, node)):
                    assignment[node] = candidate
                    yield from run(index + 1)
                    del assignment[node]
            else:  # ScanEdges
                tally[0] += 1
                source, target = step.source, step.target
                if source == target:
                    for s, t in sorted(store.edges_with_label(step.label)):
                        if s == t and node_ok(source, s):
                            assignment[source] = s
                            yield from run(index + 1)
                            del assignment[source]
                else:
                    for s, t in sorted(store.edges_with_label(step.label)):
                        if node_ok(source, s) and node_ok(target, t):
                            assignment[source] = s
                            assignment[target] = t
                            yield from run(index + 1)
                            del assignment[target]
                            del assignment[source]

        yield from run(0)
    finally:
        if tally[0] or tally[1] or tally[2]:
            _counters.charge(
                index_probes=tally[0],
                leapfrog_seeks=tally[1],
                intersections=tally[2],
            )


def planned_matchings(
    pattern: Pattern,
    instance: Instance,
    fixed: Optional[Matching] = None,
) -> Iterator[Matching]:
    """Plan (through the cache) and execute in one call.

    This is the default matcher behind
    :func:`repro.core.matching.find_matchings`.
    """
    plan, _ = plan_for(pattern, instance, tuple(fixed) if fixed else ())
    yield from execute_plan(plan, pattern, instance, fixed)
