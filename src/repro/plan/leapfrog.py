"""Leapfrog-style k-way sorted intersection (the multiway join core).

The worst-case-optimal join operator (:class:`~repro.plan.steps.
MultiwayIntersect`) binds one pattern variable by intersecting several
sorted id arrays at once: one CSR adjacency slice per pattern edge into
the already-bound frontier, plus the variable's sorted label array.
This module supplies the intersection itself:

* :func:`gallop` — find the first position holding ``key`` or more by
  exponential probing then binary search, so a seek over a run of
  length *g* costs O(log g) instead of O(log n) — the "galloping"
  primitive of leapfrog join;
* :func:`intersect_sorted` — intersect k sorted duplicate-free arrays
  by walking the smallest and galloping the rest forward, keeping one
  monotone cursor per array (never re-scanning a prefix).  The cost is
  O(min·Σlog) — within a constant of Veldhuizen's leapfrog triejoin on
  duplicate-free unary relations, and the piece that turns a cyclic
  pattern's O(n²) binary intermediates into O(n^1.5) touched ids.

Operands may be lists, ``array('q')`` values or the zero-copy
``memoryview`` slices :class:`~repro.graph.adjacency.AdjacencyIndex`
hands out — anything indexable, sorted ascending and duplicate-free.
Every function returns the number of galloping seeks it performed so
the executor can charge ``leapfrog_seeks`` to the work counters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def gallop(values: Sequence[int], key: int, lo: int, hi: int) -> int:
    """First index in ``[lo, hi)`` with ``values[index] >= key``.

    Exponential probing from ``lo`` followed by binary search over the
    bracketed run; ``hi`` is returned when every element is smaller.
    """
    if lo >= hi or values[lo] >= key:
        return lo
    step = 1
    probe = lo + 1
    while probe < hi and values[probe] < key:
        lo = probe
        step <<= 1
        probe = lo + step
    if probe > hi:
        probe = hi
    # values[lo] < key <= values[probe] (if probe < hi): bisect between
    while lo + 1 < probe:
        mid = (lo + probe) >> 1
        if values[mid] < key:
            lo = mid
        else:
            probe = mid
    return probe


def intersect_sorted(operands: Sequence[Sequence[int]]) -> Tuple[List[int], int]:
    """Intersect sorted duplicate-free int sequences; ``(result, seeks)``.

    The smallest operand drives; every other operand keeps a monotone
    cursor advanced by :func:`gallop`.  With one operand the result is
    a plain copy (zero seeks); with zero operands it is empty.
    """
    if not operands:
        return [], 0
    arrays = sorted(operands, key=len)
    smallest = arrays[0]
    if not len(smallest):
        return [], 0
    if len(arrays) == 1:
        return list(smallest), 0
    others = arrays[1:]
    positions = [0] * len(others)
    lengths = [len(arr) for arr in others]
    result: List[int] = []
    seeks = 0
    for key in smallest:
        member = True
        for which, arr in enumerate(others):
            position = gallop(arr, key, positions[which], lengths[which])
            seeks += 1
            positions[which] = position
            if position >= lengths[which]:
                # this operand is exhausted: nothing further can match
                return result, seeks
            if arr[position] != key:
                member = False
                break
        if member:
            result.append(key)
    return result, seeks
