"""Labeled directed multigraph substrate underlying GOOD instances.

This package is self-contained (it knows nothing about schemes or the
GOOD operations).  It provides:

* :class:`~repro.graph.store.GraphStore` — the mutable node/edge store
  with by-label, by-print-value and adjacency indexes;
* :class:`~repro.graph.adjacency.AdjacencyIndex` — immutable CSR
  sorted-adjacency arrays per edge label, the substrate of the
  worst-case-optimal multiway join (:mod:`repro.plan.leapfrog`);
* :func:`~repro.graph.diff.graph_diff` — structural difference between
  two stores (used by operation reports and tests);
* :func:`~repro.graph.iso.find_isomorphism` — isomorphism up to node
  identity, used to verify the paper's claim that operations are
  "deterministic up to the particular choice of new objects".
"""

from repro.graph.adjacency import AdjacencyIndex
from repro.graph.diff import GraphDiff, graph_diff
from repro.graph.iso import find_isomorphism, isomorphic
from repro.graph.refstore import ReferenceGraphStore
from repro.graph.store import NO_PRINT, Delta, Edge, GraphStore, GraphStoreError, NodeRecord

__all__ = [
    "AdjacencyIndex",
    "Delta",
    "Edge",
    "GraphDiff",
    "GraphStore",
    "GraphStoreError",
    "NO_PRINT",
    "NodeRecord",
    "ReferenceGraphStore",
    "find_isomorphism",
    "graph_diff",
    "isomorphic",
]
