"""Structural difference between two graph stores.

Used by operation reports (``what did this GOOD operation do?``) and by
the test suite to assert the exact effect of the paper's figures
(e.g. "the node addition of Fig. 6 adds two nodes and two edges").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Tuple

from repro.graph.store import Edge, GraphStore


@dataclass(frozen=True)
class GraphDiff:
    """The difference ``after - before`` between two stores.

    Node ids are comparable across the two stores because GOOD
    operations copy stores id-preservingly (see ``GraphStore.copy``).
    """

    nodes_added: FrozenSet[int] = frozenset()
    nodes_removed: FrozenSet[int] = frozenset()
    edges_added: FrozenSet[Edge] = frozenset()
    edges_removed: FrozenSet[Edge] = frozenset()
    prints_changed: Dict[int, Tuple[Any, Any]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when the two stores are structurally identical."""
        return (
            not self.nodes_added
            and not self.nodes_removed
            and not self.edges_added
            and not self.edges_removed
            and not self.prints_changed
        )

    def summary(self) -> str:
        """One-line human readable summary of the diff."""
        return (
            f"+{len(self.nodes_added)} nodes, -{len(self.nodes_removed)} nodes, "
            f"+{len(self.edges_added)} edges, -{len(self.edges_removed)} edges"
        )


def graph_diff(before: GraphStore, after: GraphStore) -> GraphDiff:
    """Compute the structural difference between two stores."""
    before_nodes = set(before.nodes())
    after_nodes = set(after.nodes())
    nodes_added = frozenset(after_nodes - before_nodes)
    nodes_removed = frozenset(before_nodes - after_nodes)

    before_edges = set(before.edges())
    after_edges = set(after.edges())
    edges_added = frozenset(after_edges - before_edges)
    edges_removed = frozenset(before_edges - after_edges)

    prints_changed: Dict[int, Tuple[Any, Any]] = {}
    for node_id in before_nodes & after_nodes:
        old = before.node(node_id)
        new = after.node(node_id)
        if old.print_value is not new.print_value and old.print_value != new.print_value:
            prints_changed[node_id] = (old.print_value, new.print_value)

    return GraphDiff(nodes_added, nodes_removed, edges_added, edges_removed, prints_changed)
