"""Columnar storage primitives behind :class:`repro.graph.store.GraphStore`.

Three building blocks, all designed around ``array('q')`` so a million
nodes cost megabytes instead of hundreds of megabytes of boxed objects:

* :class:`LabelInterner` — a process-global, append-only string table.
  Labels become small ints (*label ids*); every column, journal entry
  and redo record carries the id, and the canonical string object is
  shared so equality checks on decoded labels hit the pointer fast
  path.
* :class:`IntColumn` — a sorted set of 64-bit ints as a flat array
  plus a bounded pending overlay (recent adds/removes), merged back
  into the base array when the overlay outgrows a proportional
  threshold (the logarithmic method: total merge work stays O(1)
  amortised per mutation).
* :class:`EdgeColumn` — one edge label's adjacency as CSR arrays in
  *both* directions (targets grouped by source, sources grouped by
  target) with the same pending-overlay discipline, so
  ``sorted_adjacency`` is an O(1) wrap of the base arrays when the
  overlay is empty instead of an O(E log E) rebuild per epoch.

Mutating methods must only ever be called by a store that owns the
column privately (the store's COW machinery clones a shared column
before its first write).  Read methods never modify the base or the
overlay; they may memoize a merged result in a single attribute
assignment, which is GIL-atomic and idempotent, so frozen snapshots
shared across reader threads stay safe.
"""

from __future__ import annotations

import sys
import threading
from array import array
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Overlay merges trigger once the pending set outgrows
#: ``max(_FLUSH_MIN, base_size >> _FLUSH_SHIFT)`` — proportional
#: thresholds keep bulk loads O(1) amortised per insert while bounding
#: the overlay a reader has to merge over.
_FLUSH_MIN = 64
_FLUSH_SHIFT = 3

#: Shared empty sorted array (immutable-by-convention).
EMPTY_ARRAY = array("q")


class LabelInterner:
    """Append-only ``str ↔ small int`` table shared by every store.

    Interning is idempotent and ids are dense (0, 1, 2, ...), so columns
    can use them as array values and dict keys interchangeably.  The
    table only ever grows; lookups are lock-free dict reads and inserts
    take a lock only on the miss path.
    """

    __slots__ = ("_ids", "_names", "_lock")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []
        self._lock = threading.Lock()

    def intern(self, name: str) -> int:
        """Return the id for ``name``, assigning the next id on a miss."""
        lid = self._ids.get(name)
        if lid is not None:
            return lid
        with self._lock:
            lid = self._ids.get(name)
            if lid is None:
                lid = len(self._names)
                self._names.append(sys.intern(name))
                self._ids[name] = lid
            return lid

    def lookup(self, name: str) -> int:
        """The id for ``name`` if already interned, else ``-1``.

        Read paths use this so querying a label the process has never
        seen does not grow the table.
        """
        lid = self._ids.get(name)
        return -1 if lid is None else lid

    def name(self, lid: int) -> str:
        """The canonical string for ``lid`` (same object every call)."""
        return self._names[lid]

    def __len__(self) -> int:
        return len(self._names)

    def table_bytes(self) -> int:
        """Approximate resident bytes of the intern table."""
        names = self._names
        return (
            sys.getsizeof(self._ids)
            + sys.getsizeof(names)
            + sum(sys.getsizeof(name) for name in names)
        )

    def snapshot(self) -> List[str]:
        """The id-ordered label list (for checkpoint headers)."""
        return list(self._names)


#: The process-wide interner.  Journals and redo records carry its ids;
#: anything that crosses a process boundary (WAL, checkpoints) must be
#: decoded to strings first and re-interned on the far side.
LABELS = LabelInterner()
intern_label = LABELS.intern
label_name = LABELS.name
lookup_label = LABELS.lookup


def merge_sorted(base: array, dels: Set[int], adds: List[int]) -> array:
    """Merge a sorted base array with sorted adds, dropping ``dels``."""
    out = array("q")
    if not dels and not adds:
        out.frombytes(base.tobytes())
        return out
    append = out.append
    i = j = 0
    n, m = len(base), len(adds)
    while i < n and j < m:
        left, right = base[i], adds[j]
        if left < right:
            if left not in dels:
                append(left)
            i += 1
        else:
            append(right)
            j += 1
    while i < n:
        if base[i] not in dels:
            append(base[i])
        i += 1
    while j < m:
        append(adds[j])
        j += 1
    return out


class IdSlotMap:
    """``external node id -> slot`` with a dense-array fast path.

    Ids handed out by the store counter are dense, so the common case
    is a direct ``array('q')`` indexed by id (-1 = absent).  Explicit
    sparse or negative ids (``add_node(node_id=...)``) fall back to an
    overflow dict rather than ballooning the array.
    """

    __slots__ = ("_direct", "_overflow")

    def __init__(self) -> None:
        self._direct = array("q")
        self._overflow: Dict[int, int] = {}

    def get(self, node_id: int) -> int:
        """The slot for ``node_id``, or ``-1`` when absent."""
        if 0 <= node_id < len(self._direct):
            return self._direct[node_id]
        return self._overflow.get(node_id, -1)

    def set(self, node_id: int, slot: int) -> None:
        direct = self._direct
        if 0 <= node_id < len(direct):
            direct[node_id] = slot
            return
        if 0 <= node_id <= len(direct) + max(1024, len(direct)):
            direct.extend([-1] * (node_id + 1 - len(direct)))
            direct[node_id] = slot
            return
        self._overflow[node_id] = slot

    def pop(self, node_id: int) -> None:
        if 0 <= node_id < len(self._direct):
            self._direct[node_id] = -1
        else:
            self._overflow.pop(node_id, None)

    def clone(self) -> "IdSlotMap":
        twin = IdSlotMap.__new__(IdSlotMap)
        fresh = array("q")
        fresh.frombytes(self._direct.tobytes())
        twin._direct = fresh
        twin._overflow = dict(self._overflow)
        return twin

    def nbytes(self) -> int:
        return self._direct.itemsize * len(self._direct) + sys.getsizeof(self._overflow)


class IntColumn:
    """A sorted set of ints: flat base array + bounded pending overlay.

    Invariants: ``adds`` is disjoint from the base and from ``dels``;
    ``dels`` is a subset of the base.  ``count`` is maintained so
    cardinality stays O(1).
    """

    __slots__ = ("base", "adds", "dels", "count", "_merged")

    def __init__(self, values: Optional[array] = None) -> None:
        self.base: array = values if values is not None else array("q")
        self.adds: Set[int] = set()
        self.dels: Set[int] = set()
        self.count: int = len(self.base)
        self._merged: Optional[array] = None

    def __contains__(self, value: int) -> bool:
        if value in self.adds:
            return True
        if value in self.dels:
            return False
        base = self.base
        position = bisect_left(base, value)
        return position < len(base) and base[position] == value

    def add(self, value: int) -> bool:
        """Insert ``value``; returns whether the set changed."""
        if value in self.dels:
            self.dels.remove(value)
        elif value in self.adds or self._in_base(value):
            return False
        else:
            self.adds.add(value)
        self.count += 1
        self._merged = None
        self._maybe_flush()
        return True

    def discard(self, value: int) -> bool:
        """Remove ``value``; returns whether the set changed."""
        if value in self.adds:
            self.adds.remove(value)
        elif value not in self.dels and self._in_base(value):
            self.dels.add(value)
        else:
            return False
        self.count -= 1
        self._merged = None
        self._maybe_flush()
        return True

    def _in_base(self, value: int) -> bool:
        base = self.base
        position = bisect_left(base, value)
        return position < len(base) and base[position] == value

    def _maybe_flush(self) -> None:
        if len(self.adds) + len(self.dels) > max(_FLUSH_MIN, len(self.base) >> _FLUSH_SHIFT):
            self.flush()

    def flush(self) -> None:
        """Fold the overlay into a fresh base array (writer-only)."""
        if self.adds or self.dels:
            self.base = merge_sorted(self.base, self.dels, sorted(self.adds))
            self.adds = set()
            self.dels = set()
        self._merged = None

    def merged(self) -> array:
        """The full sorted contents; read-only, memoized, never mutates
        the overlay (safe on shared/frozen columns)."""
        if not self.adds and not self.dels:
            return self.base
        merged = self._merged
        if merged is None:
            merged = merge_sorted(self.base, self.dels, sorted(self.adds))
            self._merged = merged
        return merged

    def __iter__(self) -> Iterator[int]:
        return iter(self.merged())

    def __len__(self) -> int:
        return self.count

    def clone(self) -> "IntColumn":
        """A private twin sharing the (immutable-by-convention) base."""
        twin = IntColumn.__new__(IntColumn)
        twin.base = self.base
        twin.adds = set(self.adds)
        twin.dels = set(self.dels)
        twin.count = self.count
        twin._merged = self._merged
        return twin

    def nbytes(self) -> int:
        return (
            self.base.itemsize * len(self.base)
            + sys.getsizeof(self.adds)
            + sys.getsizeof(self.dels)
        )


def build_csr(pairs: List[Tuple[int, int]]) -> Tuple[array, array, array]:
    """``(keys, offs, values)`` CSR arrays from ``(key, value)`` pairs
    already sorted by key then value."""
    keys = array("q")
    offs = array("q", (0,))
    values = array("q")
    current = None
    for key, value in pairs:
        if key != current:
            if current is not None:
                offs.append(len(values))
            keys.append(key)
            current = key
        values.append(value)
    if current is not None:
        offs.append(len(values))
    return keys, offs, values


def _merge_csr(
    keys: array,
    offs: array,
    values: array,
    dels: Set[Tuple[int, int]],
    adds: List[Tuple[int, int]],
) -> Tuple[array, array, array]:
    """Merge CSR base arrays with sorted add pairs minus ``dels``.

    ``dels`` pairs are in the same ``(key, value)`` orientation as the
    arrays.  Linear in the output plus the overlay sort done by the
    caller, so periodic merges keep the amortised cost per edge O(1).
    """
    out_keys = array("q")
    out_offs = array("q", (0,))
    out_vals = array("q")
    j = 0
    m = len(adds)
    current = None

    def emit(key: int, value: int) -> None:
        nonlocal current
        if key != current:
            if current is not None:
                out_offs.append(len(out_vals))
            out_keys.append(key)
            current = key
        out_vals.append(value)

    for index, key in enumerate(keys):
        lo, hi = offs[index], offs[index + 1]
        for position in range(lo, hi):
            value = values[position]
            while j < m and adds[j] < (key, value):
                emit(adds[j][0], adds[j][1])
                j += 1
            if dels and (key, value) in dels:
                continue
            emit(key, value)
    while j < m:
        emit(adds[j][0], adds[j][1])
        j += 1
    if current is not None:
        out_offs.append(len(out_vals))
    return out_keys, out_offs, out_vals


def csr_span(keys: array, offs: array, key: int) -> Tuple[int, int]:
    """The ``(lo, hi)`` span of ``key`` in a CSR (keys, offs) pair."""
    position = bisect_left(keys, key)
    if position < len(keys) and keys[position] == key:
        return offs[position], offs[position + 1]
    return 0, 0


class EdgeColumn:
    """One edge label's adjacency: bidirectional CSR + pending overlay.

    The forward arrays group targets by source; the reverse arrays
    group sources by target.  Both are maintained by linear merges, so
    ``sorted_adjacency`` never re-sorts the whole label.  ``adjacency``
    (the :class:`~repro.graph.adjacency.AdjacencyIndex` accessor) lives
    on the store, which also handles COW cloning; see
    :meth:`GraphStore.sorted_adjacency`.
    """

    __slots__ = (
        "fwd_keys",
        "fwd_offs",
        "fwd_vals",
        "rev_keys",
        "rev_offs",
        "rev_vals",
        "add_set",
        "del_set",
        "add_out",
        "add_in",
        "count",
        "index",
    )

    def __init__(self) -> None:
        self.fwd_keys = array("q")
        self.fwd_offs = array("q", (0,))
        self.fwd_vals = array("q")
        self.rev_keys = array("q")
        self.rev_offs = array("q", (0,))
        self.rev_vals = array("q")
        self.add_set: Set[Tuple[int, int]] = set()
        self.del_set: Set[Tuple[int, int]] = set()
        self.add_out: Dict[int, List[int]] = {}
        self.add_in: Dict[int, List[int]] = {}
        self.count = 0
        #: memoized AdjacencyIndex for the current contents (managed by
        #: the store; invalidated on every mutation/flush)
        self.index: Any = None

    # -- mutation (writer-owned columns only) ---------------------------
    def add(self, source: int, target: int) -> bool:
        pair = (source, target)
        if pair in self.del_set:
            self.del_set.remove(pair)
        elif pair in self.add_set or self._in_base(source, target):
            return False
        else:
            self.add_set.add(pair)
            self.add_out.setdefault(source, []).append(target)
            self.add_in.setdefault(target, []).append(source)
        self.count += 1
        self.index = None
        self._maybe_flush()
        return True

    def remove(self, source: int, target: int) -> bool:
        pair = (source, target)
        if pair in self.add_set:
            self.add_set.remove(pair)
            self._drop_pending(self.add_out, source, target)
            self._drop_pending(self.add_in, target, source)
        elif pair not in self.del_set and self._in_base(source, target):
            self.del_set.add(pair)
        else:
            return False
        self.count -= 1
        self.index = None
        self._maybe_flush()
        return True

    @staticmethod
    def _drop_pending(bucket: Dict[int, List[int]], key: int, value: int) -> None:
        values = bucket[key]
        values.remove(value)
        if not values:
            del bucket[key]

    def _maybe_flush(self) -> None:
        pending = len(self.add_set) + len(self.del_set)
        if pending > max(_FLUSH_MIN, len(self.fwd_vals) >> _FLUSH_SHIFT):
            self.flush()

    def flush(self) -> None:
        """Fold the overlay into fresh CSR base arrays (writer-only)."""
        if not self.add_set and not self.del_set:
            return
        adds_fwd = sorted(self.add_set)
        self.fwd_keys, self.fwd_offs, self.fwd_vals = _merge_csr(
            self.fwd_keys, self.fwd_offs, self.fwd_vals, self.del_set, adds_fwd
        )
        dels_rev = {(target, source) for source, target in self.del_set}
        adds_rev = sorted((target, source) for source, target in self.add_set)
        self.rev_keys, self.rev_offs, self.rev_vals = _merge_csr(
            self.rev_keys, self.rev_offs, self.rev_vals, dels_rev, adds_rev
        )
        self.add_set = set()
        self.del_set = set()
        self.add_out = {}
        self.add_in = {}
        self.index = None

    # -- reads (never mutate base or overlay) ---------------------------
    @property
    def dirty(self) -> bool:
        """Whether a pending overlay is outstanding."""
        return bool(self.add_set or self.del_set)

    def _in_base(self, source: int, target: int) -> bool:
        lo, hi = csr_span(self.fwd_keys, self.fwd_offs, source)
        if lo == hi:
            return False
        vals = self.fwd_vals
        position = bisect_left(vals, target, lo, hi)
        return position < hi and vals[position] == target

    def has(self, source: int, target: int) -> bool:
        pair = (source, target)
        if pair in self.add_set:
            return True
        if pair in self.del_set:
            return False
        return self._in_base(source, target)

    def _side(
        self, node: int, keys: array, offs: array, vals: array,
        pend: Dict[int, List[int]], flip: bool,
    ) -> List[int]:
        lo, hi = csr_span(keys, offs, node)
        base = vals[lo:hi].tolist() if hi > lo else []
        if self.del_set and base:
            if flip:
                base = [v for v in base if (v, node) not in self.del_set]
            else:
                base = [v for v in base if (node, v) not in self.del_set]
        extra = pend.get(node)
        if extra:
            base.extend(extra)
            base.sort()
        return base

    def out_list(self, source: int) -> List[int]:
        """Sorted targets of edges leaving ``source``."""
        return self._side(source, self.fwd_keys, self.fwd_offs, self.fwd_vals, self.add_out, False)

    def in_list(self, target: int) -> List[int]:
        """Sorted sources of edges arriving at ``target``."""
        return self._side(target, self.rev_keys, self.rev_offs, self.rev_vals, self.add_in, True)

    def has_source(self, source: int) -> bool:
        if source in self.add_out:
            return True
        lo, hi = csr_span(self.fwd_keys, self.fwd_offs, source)
        if lo == hi:
            return False
        if not self.del_set:
            return True
        vals = self.fwd_vals
        return any((source, vals[i]) not in self.del_set for i in range(lo, hi))

    def has_target(self, target: int) -> bool:
        if target in self.add_in:
            return True
        lo, hi = csr_span(self.rev_keys, self.rev_offs, target)
        if lo == hi:
            return False
        if not self.del_set:
            return True
        vals = self.rev_vals
        return any((vals[i], target) not in self.del_set for i in range(lo, hi))

    def out_degree(self, source: int) -> int:
        lo, hi = csr_span(self.fwd_keys, self.fwd_offs, source)
        degree = (hi - lo) + len(self.add_out.get(source, ()))
        if self.del_set and hi > lo:
            vals = self.fwd_vals
            degree -= sum((source, vals[i]) in self.del_set for i in range(lo, hi))
        return degree

    def in_degree(self, target: int) -> int:
        lo, hi = csr_span(self.rev_keys, self.rev_offs, target)
        degree = (hi - lo) + len(self.add_in.get(target, ()))
        if self.del_set and hi > lo:
            vals = self.rev_vals
            degree -= sum((vals[i], target) in self.del_set for i in range(lo, hi))
        return degree

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All ``(source, target)`` pairs, sorted (merged view)."""
        if not self.dirty:
            keys, offs, vals = self.fwd_keys, self.fwd_offs, self.fwd_vals
        else:
            keys, offs, vals = _merge_csr(
                self.fwd_keys, self.fwd_offs, self.fwd_vals,
                self.del_set, sorted(self.add_set),
            )
        for index, key in enumerate(keys):
            for position in range(offs[index], offs[index + 1]):
                yield key, vals[position]

    def merged_arrays(self) -> Tuple[array, array, array, array, array, array]:
        """The six CSR arrays with the overlay folded in (read-only)."""
        if not self.dirty:
            return (
                self.fwd_keys, self.fwd_offs, self.fwd_vals,
                self.rev_keys, self.rev_offs, self.rev_vals,
            )
        fwd = _merge_csr(
            self.fwd_keys, self.fwd_offs, self.fwd_vals,
            self.del_set, sorted(self.add_set),
        )
        rev = _merge_csr(
            self.rev_keys, self.rev_offs, self.rev_vals,
            {(t, s) for s, t in self.del_set},
            sorted((t, s) for s, t in self.add_set),
        )
        return fwd + rev

    def clone(self) -> "EdgeColumn":
        """A private twin sharing the base arrays by reference."""
        twin = EdgeColumn.__new__(EdgeColumn)
        twin.fwd_keys = self.fwd_keys
        twin.fwd_offs = self.fwd_offs
        twin.fwd_vals = self.fwd_vals
        twin.rev_keys = self.rev_keys
        twin.rev_offs = self.rev_offs
        twin.rev_vals = self.rev_vals
        twin.add_set = set(self.add_set)
        twin.del_set = set(self.del_set)
        twin.add_out = {k: list(v) for k, v in self.add_out.items()}
        twin.add_in = {k: list(v) for k, v in self.add_in.items()}
        twin.count = self.count
        twin.index = self.index
        return twin

    def nbytes(self) -> int:
        arrays = (
            self.fwd_keys, self.fwd_offs, self.fwd_vals,
            self.rev_keys, self.rev_offs, self.rev_vals,
        )
        total = sum(a.itemsize * len(a) for a in arrays)
        total += sys.getsizeof(self.add_set) + sys.getsizeof(self.del_set)
        total += sys.getsizeof(self.add_out) + sys.getsizeof(self.add_in)
        return total
