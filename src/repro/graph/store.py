"""The labeled directed multigraph store, columnar edition.

A :class:`GraphStore` holds labeled nodes — each optionally carrying a
*print value* (the paper's ``print`` label for printable objects) — and
labeled directed edges.  Since the columnar rewrite the physical layout
is index-free adjacency over flat arrays rather than dicts of boxed
records:

* node labels live in a process-global string-intern table
  (:data:`repro.graph.columns.LABELS`); label ids are small ints;
* nodes occupy dense *slots*: parallel columns ``slot -> label id``
  (``array('q')``), ``slot -> print value`` (a list) and ``slot ->
  external id``, with a free-list recycling slots after removals and
  an id→slot map keeping the external integer node-id API unchanged;
* each edge label is one :class:`~repro.graph.columns.EdgeColumn` —
  CSR adjacency arrays in both directions, maintained incrementally by
  bounded pending overlays and periodic linear merges, so
  ``sorted_adjacency`` is O(1) warm instead of an epoch-keyed
  O(E log E) rebuild;
* per-label node membership is a sorted
  :class:`~repro.graph.columns.IntColumn`, which also backs ``nodes()``
  iteration without re-sorting the whole id set per call.

The hot read accessors (``out_neighbours``, ``in_neighbours``,
``nodes_with_label``, ``edges_with_label``) still hand out *cached*
frozenset views with the same identity semantics as before: repeated
calls return the identical object until a mutation touches the
underlying index.  Statistics are versioned by :attr:`stats_epoch`,
which advances on every structural change (node/edge add/remove) but
not on print-value updates.

``fork(frozen=True)`` shares every column by reference and privatizes
per column on the live side's first write, so MVCC captures cost O(1)
and divergence costs O(changes).  Undo journals and WAL redo records
carry interned label ids instead of strings.

The store enforces only graph-level integrity (no dangling edges, no
duplicate edges).  GOOD-specific constraints live in
:mod:`repro.core.instance`.  Node identifiers are integers handed out
by a per-store counter; iteration orders are deterministic (ascending
ids, lexicographically sorted labels), which makes every operation in
the reproduction reproducible run-to-run.  The historical dict-backed
implementation survives as
:class:`repro.graph.refstore.ReferenceGraphStore`, the oracle of the
columnar equivalence suite.
"""

from __future__ import annotations

import sys
from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.graph.adjacency import AdjacencyIndex
from repro.graph.columns import (
    EMPTY_ARRAY,
    LABELS,
    EdgeColumn,
    IdSlotMap,
    IntColumn,
    build_csr,
    intern_label,
    label_name,
    lookup_label,
)


class GraphStoreError(Exception):
    """Raised on graph-level integrity violations (unknown node, ...)."""


@dataclass
class Delta:
    """A recorded batch of additions: the unit of semi-naive evaluation.

    A delta holds the nodes and edges added to a store while it was
    attached as a tracker (``GraphStore.start_tracking``), plus the
    store generation at which recording began.  The generation counter
    is monotone across *all* mutations, so two deltas from the same
    store are ordered by ``start_generation``.

    Removals are rare in the fixpoint paths that consume deltas (rules
    only add), but for safety a tracked removal retracts the item from
    the delta so a delta never advertises structure the store lost.
    """

    nodes: Set[int] = field(default_factory=set)
    edges: Set[Tuple[int, str, int]] = field(default_factory=set)
    start_generation: int = 0
    #: Bumped by every tracked mutation and by :meth:`merge`; the sorted
    #: views below memoize against it (plus the set sizes, so a delta
    #: whose sets are filled in directly still invalidates correctly).
    _version: int = field(default=0, repr=False, compare=False)
    _nodes_cache: Optional[Tuple[Tuple[int, int], List[int]]] = field(
        default=None, repr=False, compare=False
    )
    _edges_cache: Optional[Tuple[Tuple[int, int], List[Tuple[int, str, int]]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_empty(self) -> bool:
        """Whether nothing was recorded."""
        return not self.nodes and not self.edges

    def __len__(self) -> int:
        return len(self.nodes) + len(self.edges)

    def record_node(self, node_id: int) -> None:
        """Track a node addition (store mutator hook)."""
        self.nodes.add(node_id)
        self._version += 1

    def retract_node(self, node_id: int) -> None:
        """Untrack a node removed while recording (store mutator hook)."""
        self.nodes.discard(node_id)
        self._version += 1

    def record_edge(self, edge: Tuple[int, str, int]) -> None:
        """Track an edge addition (store mutator hook)."""
        self.edges.add(edge)
        self._version += 1

    def retract_edge(self, edge: Tuple[int, str, int]) -> None:
        """Untrack an edge removed while recording (store mutator hook)."""
        self.edges.discard(edge)
        self._version += 1

    def merge(self, other: "Delta") -> "Delta":
        """Fold ``other`` into this delta; returns ``self``."""
        self.nodes |= other.nodes
        self.edges |= other.edges
        self.start_generation = min(self.start_generation, other.start_generation)
        self._version += 1
        return self

    def sorted_nodes(self) -> List[int]:
        """The recorded nodes in deterministic (ascending) order.

        Memoized per version: fixpoint rounds consult the sorted views
        many times between mutations, so re-sorting on every call was
        pure overhead.  Callers must not mutate the returned list.
        """
        key = (self._version, len(self.nodes))
        if self._nodes_cache is None or self._nodes_cache[0] != key:
            self._nodes_cache = (key, sorted(self.nodes))
        return self._nodes_cache[1]

    def sorted_edges(self) -> List[Tuple[int, str, int]]:
        """The recorded edges in deterministic order (memoized, like
        :meth:`sorted_nodes`; callers must not mutate the result)."""
        key = (self._version, len(self.edges))
        if self._edges_cache is None or self._edges_cache[0] != key:
            self._edges_cache = (key, sorted(self.edges))
        return self._edges_cache[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Delta(nodes={len(self.nodes)}, edges={len(self.edges)}, "
            f"from_generation={self.start_generation})"
        )


class _NoPrint:
    """Sentinel for "this node carries no print value".

    ``None`` is not usable as the sentinel because ``None`` is a
    perfectly valid print value for a Bool-like domain.
    """

    _instance: Optional["_NoPrint"] = None

    def __new__(cls) -> "_NoPrint":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NO_PRINT"

    def __reduce__(self):
        return (_NoPrint, ())


#: Module-level sentinel: a node whose print value is :data:`NO_PRINT`
#: has no print label at all.
NO_PRINT = _NoPrint()


@dataclass(frozen=True)
class NodeRecord:
    """Immutable snapshot of one node: its label and print value."""

    label: str
    print_value: Any = NO_PRINT

    @property
    def has_print(self) -> bool:
        """Whether the node carries a print value."""
        return self.print_value is not NO_PRINT


@dataclass(frozen=True, order=True)
class Edge:
    """A labeled directed edge ``source --label--> target``."""

    source: int
    label: str
    target: int

    def as_tuple(self) -> Tuple[int, str, int]:
        """Return the edge as a plain ``(source, label, target)`` tuple."""
        return (self.source, self.label, self.target)


class GraphStore:
    """A mutable labeled directed multigraph over columnar storage."""

    __slots__ = (
        # node columns (slot-indexed)
        "_slot_label",
        "_slot_print",
        "_slot_id",
        "_id_map",
        "_free",
        "_ids",
        # per-label structures
        "_members",
        "_prints",
        "_ecols",
        "_out_stats",
        "_in_stats",
        # counters
        "_next_id",
        "_edge_count",
        "_generation",
        "_stats_epoch",
        # observers
        "_trackers",
        "_journals",
        # cached views
        "_label_views",
        "_edge_label_views",
        "_out_views",
        "_in_views",
        "_empty_adjacency",
        "_plan_cache",
        # copy-on-write state
        "_frozen",
        "_shared_data",
        "_shared_views",
        "_cow_inner",
        "_owned_node_cols",
        "_owned_print_col",
        "_owned_members",
        "_owned_prints",
        "_owned_ecols",
    )

    def __init__(self) -> None:
        # slot -> interned label id (-1 marks a free slot)
        self._slot_label = array("q")
        # slot -> print value (NO_PRINT when absent)
        self._slot_print: List[Any] = []
        # slot -> external node id (-1 when free)
        self._slot_id = array("q")
        self._id_map = IdSlotMap()
        self._free: List[int] = []
        # maintained sorted column of live external ids (nodes())
        self._ids = IntColumn()
        # label id -> sorted membership column
        self._members: Dict[int, IntColumn] = {}
        # (label id, print value) -> set of node ids
        self._prints: Dict[Tuple[int, Any], Set[int]] = {}
        # edge label id -> bidirectional CSR adjacency column
        self._ecols: Dict[int, EdgeColumn] = {}
        # (node label id, edge label id) -> edge totals for the planner
        self._out_stats: Dict[Tuple[int, int], int] = {}
        self._in_stats: Dict[Tuple[int, int], int] = {}
        self._next_id = 0
        self._edge_count = 0
        self._generation = 0
        self._stats_epoch = 0
        self._trackers: List[Delta] = []
        # attached undo journals (repro.txn.journal); each mutator
        # appends an inverse-describing entry to every journal so a
        # rollback can replay the changes in reverse
        self._journals: List[Any] = []
        # cached frozenset views handed to hot readers; invalidated
        # per-key on mutation so unrelated reads keep their objects
        self._label_views: Dict[str, FrozenSet[int]] = {}
        self._edge_label_views: Dict[str, FrozenSet[Tuple[int, int]]] = {}
        self._out_views: Dict[int, Dict[str, FrozenSet[int]]] = {}
        self._in_views: Dict[int, Dict[str, FrozenSet[int]]] = {}
        # label -> empty AdjacencyIndex for labels with no edge column;
        # entries stay correct forever (a label that gains edges routes
        # through its column instead), so the dict is freely shared
        self._empty_adjacency: Dict[str, AdjacencyIndex] = {}
        # compiled-plan slot managed by repro.plan (per-store, not copied)
        self._plan_cache: Optional[Dict[Any, Any]] = None
        # --- copy-on-write state (see fork) ---
        self._frozen = False
        self._shared_data = False
        self._shared_views = False
        self._cow_inner = False
        self._owned_node_cols = False
        self._owned_print_col = False
        self._owned_members: Set[int] = set()
        self._owned_prints: Set[Tuple[int, Any]] = set()
        self._owned_ecols: Set[int] = set()

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone mutation counter (bumps on every successful change)."""
        return self._generation

    @property
    def stats_epoch(self) -> int:
        """Monotone *structural* change counter.

        Advances whenever the cardinality statistics may have shifted
        (node or edge added/removed) but not on ``set_print`` — a plan
        compiled against one epoch stays cost-optimal until the epoch
        moves.  Every ``stats_epoch`` bump is also a ``generation``
        bump, never the other way around.
        """
        return self._stats_epoch

    def start_tracking(self) -> Delta:
        """Attach and return a fresh :class:`Delta` recorder.

        Until :meth:`stop_tracking`, every added node/edge is recorded
        in the delta (and retracted again if removed while tracked).
        Trackers nest; each records independently.
        """
        delta = Delta(start_generation=self._generation)
        self._trackers.append(delta)
        return delta

    def stop_tracking(self, delta: Delta) -> Delta:
        """Detach a recorder previously returned by :meth:`start_tracking`."""
        try:
            self._trackers.remove(delta)
        except ValueError:
            raise GraphStoreError("delta is not attached to this store") from None
        return delta

    def attach_journal(self, journal: Any) -> None:
        """Attach an undo journal (an object with an ``entries`` list).

        Every subsequent mutation appends one inverse-describing entry
        to ``journal.entries``; see :mod:`repro.txn.journal` for the
        entry vocabulary and the reverse-replay rollback.  Entries
        carry interned label ids (ints), not strings.
        """
        self._journals.append(journal)

    def detach_journal(self, journal: Any) -> None:
        """Detach a journal previously passed to :meth:`attach_journal`."""
        try:
            self._journals.remove(journal)
        except ValueError:
            raise GraphStoreError("journal is not attached to this store") from None

    # ------------------------------------------------------------------
    # copy-on-write forks (MVCC snapshot support)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether this store is an immutable snapshot (mutators raise)."""
        return self._frozen

    def fork(self, *, frozen: bool = True) -> "GraphStore":
        """Return an O(1) copy-on-write clone of this store.

        The clone shares *every* column, index and cached-view
        structure with this store; nothing is copied at fork time.  The
        live side pays for divergence lazily: its first mutation after
        the fork pointer-copies the top-level dicts, node columns are
        copied on the first write that touches them, and each touched
        per-label column is privatized once (tracked by the
        ``_owned_*`` state), so the bytes copied are proportional to
        the changes made — not to the store.  Neither side ever mutates
        a structure the other can still see; sorted-adjacency indexes
        are memoized *on the shared columns*, so a frozen snapshot and
        its parent keep returning the identical index object until the
        live side diverges.

        With ``frozen=True`` (the default) the clone is an immutable
        published snapshot: concurrent readers may use it freely, and
        forking it again never touches this store.  ``frozen=False``
        yields a mutable clone (both sides then COW against each
        other).  Trackers and journals never carry over; the compiled
        plan cache is *shared* — entries are keyed by ``stats_epoch``,
        so versions at different epochs coexist in one cache.
        """
        clone = GraphStore.__new__(GraphStore)
        clone._slot_label = self._slot_label
        clone._slot_print = self._slot_print
        clone._slot_id = self._slot_id
        clone._id_map = self._id_map
        clone._free = self._free
        clone._ids = self._ids
        clone._members = self._members
        clone._prints = self._prints
        clone._ecols = self._ecols
        clone._out_stats = self._out_stats
        clone._in_stats = self._in_stats
        clone._next_id = self._next_id
        clone._edge_count = self._edge_count
        clone._generation = self._generation
        clone._stats_epoch = self._stats_epoch
        clone._trackers = []
        clone._journals = []
        clone._label_views = self._label_views
        clone._edge_label_views = self._edge_label_views
        clone._out_views = self._out_views
        clone._in_views = self._in_views
        clone._empty_adjacency = self._empty_adjacency
        if self._plan_cache is None and not self._frozen:
            # pre-create so all versions share one epoch-keyed cache
            self._plan_cache = OrderedDict()
        clone._plan_cache = self._plan_cache
        clone._frozen = frozen
        clone._shared_data = True
        clone._shared_views = True
        clone._cow_inner = True
        clone._owned_node_cols = False
        clone._owned_print_col = False
        clone._owned_members = set()
        clone._owned_prints = set()
        clone._owned_ecols = set()
        if not self._frozen:
            # the live parent must now COW too; a frozen parent never
            # mutates, so forking it is read-only (and thread-safe)
            self._shared_data = True
            self._shared_views = True
            self._cow_inner = True
            self._owned_node_cols = False
            self._owned_print_col = False
            self._owned_members = set()
            self._owned_prints = set()
            self._owned_ecols = set()
        return clone

    def _before_write(self) -> None:
        """Mutator prologue: reject frozen stores, privatize shared dicts."""
        if self._frozen:
            raise GraphStoreError(
                "store is frozen (a published MVCC snapshot); "
                "fork(frozen=False) yields a mutable clone"
            )
        if self._shared_views:
            # snapshot the outer dicts first with GIL-atomic dict() so a
            # concurrent reader lazily inserting views cannot resize the
            # dict we iterate; the two-level copy keeps the other side's
            # inner view dicts untouched
            self._label_views = dict(self._label_views)
            self._edge_label_views = dict(self._edge_label_views)
            self._out_views = {n: dict(v) for n, v in dict(self._out_views).items()}
            self._in_views = {n: dict(v) for n, v in dict(self._in_views).items()}
            self._shared_views = False
        if self._shared_data:
            self._members = dict(self._members)
            self._prints = dict(self._prints)
            self._ecols = dict(self._ecols)
            self._out_stats = dict(self._out_stats)
            self._in_stats = dict(self._in_stats)
            self._shared_data = False

    def _own_node_cols(self) -> None:
        """Privatize the slot/id columns before the first node write."""
        if not self._cow_inner or self._owned_node_cols:
            return
        labels = array("q")
        labels.frombytes(self._slot_label.tobytes())
        self._slot_label = labels
        ids = array("q")
        ids.frombytes(self._slot_id.tobytes())
        self._slot_id = ids
        self._id_map = self._id_map.clone()
        self._free = list(self._free)
        self._ids = self._ids.clone()
        self._owned_node_cols = True

    def _own_print_col(self) -> None:
        """Privatize the print column before the first print write."""
        if not self._cow_inner or self._owned_print_col:
            return
        self._slot_print = list(self._slot_print)
        self._owned_print_col = True

    def _own_member(self, lid: int) -> IntColumn:
        col = self._members.get(lid)
        if col is None:
            col = self._members[lid] = IntColumn()
            if self._cow_inner:
                self._owned_members.add(lid)
            return col
        if self._cow_inner and lid not in self._owned_members:
            col = self._members[lid] = col.clone()
            self._owned_members.add(lid)
        return col

    def _own_print_set(self, key: Tuple[int, Any]) -> None:
        if not self._cow_inner or key in self._owned_prints:
            return
        nodes = self._prints.get(key)
        if nodes is not None:
            self._prints[key] = set(nodes)
        self._owned_prints.add(key)

    def _own_ecol(self, elid: int) -> EdgeColumn:
        col = self._ecols.get(elid)
        if col is None:
            col = self._ecols[elid] = EdgeColumn()
            if self._cow_inner:
                self._owned_ecols.add(elid)
            return col
        if self._cow_inner and elid not in self._owned_ecols:
            col = self._ecols[elid] = col.clone()
            self._owned_ecols.add(elid)
        return col

    # ------------------------------------------------------------------
    # node operations
    # ------------------------------------------------------------------
    def add_node(self, label: str, print_value: Any = NO_PRINT, node_id: Optional[int] = None) -> int:
        """Create a node with ``label`` and optional print value.

        Returns the node id — fresh from the counter, or ``node_id``
        when given (used to keep ids aligned between a pattern and its
        crossed extensions; the counter skips past explicit ids).
        """
        self._before_write()
        if node_id is None:
            node_id = self._next_id
            self._next_id += 1
        else:
            if self._id_map.get(node_id) >= 0:
                raise GraphStoreError(f"node id {node_id} already exists")
            self._next_id = max(self._next_id, node_id + 1)
        lid = intern_label(label)
        self._own_node_cols()
        self._own_print_col()
        if self._free:
            slot = self._free.pop()
            self._slot_label[slot] = lid
            self._slot_id[slot] = node_id
            self._slot_print[slot] = print_value
        else:
            slot = len(self._slot_label)
            self._slot_label.append(lid)
            self._slot_id.append(node_id)
            self._slot_print.append(print_value)
        self._id_map.set(node_id, slot)
        self._ids.add(node_id)
        self._own_member(lid).add(node_id)
        if print_value is not NO_PRINT:
            key = (lid, print_value)
            self._own_print_set(key)
            self._prints.setdefault(key, set()).add(node_id)
        self._label_views.pop(label, None)
        self._out_views.pop(node_id, None)
        self._in_views.pop(node_id, None)
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.record_node(node_id)
        for journal in self._journals:
            journal.entries.append(("add_node", node_id, lid, print_value))
        return node_id

    def remove_node(self, node_id: int) -> None:
        """Delete a node together with all its incident edges."""
        slot = self._require_slot(node_id)
        self._before_write()
        for edge in list(self.edges_of(node_id)):
            self.remove_edge(edge.source, edge.label, edge.target)
        lid = self._slot_label[slot]
        print_value = self._slot_print[slot]
        label = label_name(lid)
        self._own_node_cols()
        self._own_print_col()
        self._own_member(lid).discard(node_id)
        if print_value is not NO_PRINT:
            key = (lid, print_value)
            self._own_print_set(key)
            nodes = self._prints[key]
            nodes.discard(node_id)
            if not nodes:
                del self._prints[key]
        self._slot_label[slot] = -1
        self._slot_id[slot] = -1
        self._slot_print[slot] = NO_PRINT
        self._id_map.pop(node_id)
        self._free.append(slot)
        self._ids.discard(node_id)
        self._label_views.pop(label, None)
        self._out_views.pop(node_id, None)
        self._in_views.pop(node_id, None)
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.retract_node(node_id)
        # incident edges journalled their own removals above, so a
        # reverse replay re-creates the node before re-adding them
        for journal in self._journals:
            journal.entries.append(("remove_node", node_id, lid, print_value))

    def set_print(self, node_id: int, print_value: Any) -> None:
        """Attach or replace the print value of ``node_id``."""
        slot = self._require_slot(node_id)
        self._before_write()
        lid = self._slot_label[slot]
        old_value = self._slot_print[slot]
        if old_value is not NO_PRINT:
            key = (lid, old_value)
            self._own_print_set(key)
            nodes = self._prints[key]
            nodes.discard(node_id)
            if not nodes:
                del self._prints[key]
        self._own_print_col()
        self._slot_print[slot] = print_value
        if print_value is not NO_PRINT:
            key = (lid, print_value)
            self._own_print_set(key)
            self._prints.setdefault(key, set()).add(node_id)
        self._generation += 1
        for journal in self._journals:
            journal.entries.append(("set_print", node_id, old_value, print_value))

    def has_node(self, node_id: int) -> bool:
        """Whether ``node_id`` exists in the store."""
        try:
            return self._id_map.get(node_id) >= 0
        except TypeError:
            return False

    def node(self, node_id: int) -> NodeRecord:
        """Return a :class:`NodeRecord` snapshot for ``node_id``."""
        slot = self._require_slot(node_id)
        return NodeRecord(label_name(self._slot_label[slot]), self._slot_print[slot])

    def label_of(self, node_id: int) -> str:
        """Return the label of ``node_id`` (the canonical interned str)."""
        return label_name(self._slot_label[self._require_slot(node_id)])

    def label_id_of(self, node_id: int) -> int:
        """Return the interned label id of ``node_id`` (no allocation)."""
        return self._slot_label[self._require_slot(node_id)]

    def print_of(self, node_id: int) -> Any:
        """Return the print value of ``node_id`` (or :data:`NO_PRINT`)."""
        return self._slot_print[self._require_slot(node_id)]

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids in ascending (creation) order.

        Backed by the maintained sorted id column — O(1) warm rather
        than sorting the full id set on every call.
        """
        return iter(self._ids.merged())

    def nodes_with_label(self, label: str) -> FrozenSet[int]:
        """All node ids carrying ``label`` (a cached frozenset view).

        The returned object is identical across calls until a node
        with this label is added or removed.
        """
        view = self._label_views.get(label)
        if view is None:
            lid = lookup_label(label)
            col = self._members.get(lid) if lid >= 0 else None
            view = frozenset(col.merged()) if col is not None else frozenset()
            self._label_views[label] = view
        return view

    def nodes_with_print(self, label: str, print_value: Any) -> FrozenSet[int]:
        """All node ids with the given label *and* print value."""
        lid = lookup_label(label)
        if lid < 0:
            return frozenset()
        return frozenset(self._prints.get((lid, print_value), frozenset()))

    def labels_in_use(self) -> FrozenSet[str]:
        """The set of node labels that occur in the store."""
        return frozenset(
            label_name(lid) for lid, col in self._members.items() if col.count
        )

    @property
    def node_count(self) -> int:
        """Number of nodes in the store."""
        return self._ids.count

    @property
    def next_id(self) -> int:
        """The id the next ``add_node`` call would hand out."""
        return self._next_id

    # ------------------------------------------------------------------
    # edge operations
    # ------------------------------------------------------------------
    def add_edge(self, source: int, label: str, target: int) -> bool:
        """Insert the edge; return ``False`` if it was already present."""
        s_slot = self._require_slot(source)
        t_slot = self._require_slot(target)
        elid = lookup_label(label)
        existing = self._ecols.get(elid) if elid >= 0 else None
        if existing is not None and existing.has(source, target):
            return False
        self._before_write()
        if elid < 0:
            elid = intern_label(label)
        self._own_ecol(elid).add(source, target)
        out_key = (self._slot_label[s_slot], elid)
        self._out_stats[out_key] = self._out_stats.get(out_key, 0) + 1
        in_key = (self._slot_label[t_slot], elid)
        self._in_stats[in_key] = self._in_stats.get(in_key, 0) + 1
        self._edge_label_views.pop(label, None)
        self._out_views.pop(source, None)
        self._in_views.pop(target, None)
        self._edge_count += 1
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.record_edge((source, label, target))
        for journal in self._journals:
            journal.entries.append(("add_edge", source, elid, target))
        return True

    def remove_edge(self, source: int, label: str, target: int) -> bool:
        """Delete the edge; return ``False`` if it was not present."""
        elid = lookup_label(label)
        existing = self._ecols.get(elid) if elid >= 0 else None
        if existing is None or not existing.has(source, target):
            return False
        self._before_write()
        self._own_ecol(elid).remove(source, target)
        out_key = (self._slot_label[self._id_map.get(source)], elid)
        if self._out_stats[out_key] == 1:
            del self._out_stats[out_key]
        else:
            self._out_stats[out_key] -= 1
        in_key = (self._slot_label[self._id_map.get(target)], elid)
        if self._in_stats[in_key] == 1:
            del self._in_stats[in_key]
        else:
            self._in_stats[in_key] -= 1
        self._edge_label_views.pop(label, None)
        self._out_views.pop(source, None)
        self._in_views.pop(target, None)
        self._edge_count -= 1
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.retract_edge((source, label, target))
        for journal in self._journals:
            journal.entries.append(("remove_edge", source, elid, target))
        return True

    def has_edge(self, source: int, label: str, target: int) -> bool:
        """Whether the edge ``source --label--> target`` exists."""
        elid = lookup_label(label)
        if elid < 0:
            return False
        col = self._ecols.get(elid)
        return col is not None and col.has(source, target)

    def out_neighbours(self, node_id: int, label: str) -> FrozenSet[int]:
        """Targets of ``label``-edges leaving ``node_id``.

        A cached frozenset view: the identical object is returned until
        an edge incident to ``node_id`` changes.
        """
        views = self._out_views.get(node_id)
        if views is None:
            views = self._out_views[node_id] = {}
        view = views.get(label)
        if view is None:
            col = self._ecol_for(label)
            view = frozenset(col.out_list(node_id)) if col is not None else frozenset()
            views[label] = view
        return view

    def in_neighbours(self, node_id: int, label: str) -> FrozenSet[int]:
        """Sources of ``label``-edges arriving at ``node_id``.

        A cached frozenset view, like :meth:`out_neighbours`.
        """
        views = self._in_views.get(node_id)
        if views is None:
            views = self._in_views[node_id] = {}
        view = views.get(label)
        if view is None:
            col = self._ecol_for(label)
            view = frozenset(col.in_list(node_id)) if col is not None else frozenset()
            views[label] = view
        return view

    def out_labels(self, node_id: int) -> FrozenSet[str]:
        """Edge labels leaving ``node_id``."""
        self._require_slot(node_id)
        return frozenset(
            label_name(elid)
            for elid, col in self._ecols.items()
            if col.has_source(node_id)
        )

    def in_labels(self, node_id: int) -> FrozenSet[str]:
        """Edge labels arriving at ``node_id``."""
        self._require_slot(node_id)
        return frozenset(
            label_name(elid)
            for elid, col in self._ecols.items()
            if col.has_target(node_id)
        )

    def out_edges(self, node_id: int) -> Iterator[Edge]:
        """Iterate over edges leaving ``node_id`` deterministically."""
        self._require_slot(node_id)
        for label, col in self._sorted_ecols():
            for target in col.out_list(node_id):
                yield Edge(node_id, label, target)

    def in_edges(self, node_id: int) -> Iterator[Edge]:
        """Iterate over edges arriving at ``node_id`` deterministically."""
        self._require_slot(node_id)
        for label, col in self._sorted_ecols():
            for source in col.in_list(node_id):
                yield Edge(source, label, node_id)

    def edges_of(self, node_id: int) -> Iterator[Edge]:
        """All edges incident to ``node_id`` (self-loops reported once)."""
        seen: Set[Edge] = set()
        for edge in self.out_edges(node_id):
            seen.add(edge)
            yield edge
        for edge in self.in_edges(node_id):
            if edge not in seen:
                yield edge

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges, deterministically ordered
        (ascending source id, then label, then target)."""
        cols = self._sorted_ecols()
        if not cols:
            return
        for node_id in self.nodes():
            for label, col in cols:
                for target in col.out_list(node_id):
                    yield Edge(node_id, label, target)

    def _sorted_ecols(self) -> List[Tuple[str, EdgeColumn]]:
        return sorted(
            ((label_name(elid), col) for elid, col in self._ecols.items() if col.count),
            key=lambda pair: pair[0],
        )

    def _ecol_for(self, label: str) -> Optional[EdgeColumn]:
        elid = lookup_label(label)
        if elid < 0:
            return None
        return self._ecols.get(elid)

    @property
    def edge_count(self) -> int:
        """Number of edges in the store."""
        return self._edge_count

    # ------------------------------------------------------------------
    # secondary indexes and cardinality statistics (planner support)
    # ------------------------------------------------------------------
    def edges_with_label(self, label: str) -> FrozenSet[Tuple[int, int]]:
        """All ``(source, target)`` pairs of ``label``-edges.

        A cached frozenset view: the identical object is returned until
        an edge with this label is added or removed.
        """
        view = self._edge_label_views.get(label)
        if view is None:
            col = self._ecol_for(label)
            view = frozenset(col.pairs()) if col is not None else frozenset()
            self._edge_label_views[label] = view
        return view

    def edge_labels_in_use(self) -> FrozenSet[str]:
        """The set of edge labels that occur in the store."""
        return frozenset(
            label_name(elid) for elid, col in self._ecols.items() if col.count
        )

    # ------------------------------------------------------------------
    # sorted-adjacency arrays (worst-case-optimal join support)
    # ------------------------------------------------------------------
    def sorted_adjacency(self, label: str) -> AdjacencyIndex:
        """The CSR sorted-adjacency index for ``label``.

        The adjacency arrays *are* the primary edge representation, so
        a warm call is an O(1) memoized wrap of the column's base
        arrays; only an outstanding pending overlay costs a linear
        merge (memoized until the next mutation of that label).  The
        returned index is immutable and shared freely with MVCC forks;
        see :mod:`repro.graph.adjacency`.
        """
        col = self._ecol_for(label)
        if col is None:
            index = self._empty_adjacency.get(label)
            if index is None:
                index = AdjacencyIndex(label, (), self._stats_epoch)
                self._empty_adjacency[label] = index
            return index
        index = col.index
        if index is None:
            index = AdjacencyIndex.from_arrays(
                label, self._stats_epoch, *col.merged_arrays()
            )
            col.index = index
        return index

    def cached_adjacency(self, label: str) -> Optional[AdjacencyIndex]:
        """The current index for ``label`` if already built, else
        ``None`` — lets hot paths use arrays opportunistically without
        forcing a build for one-off lookups."""
        col = self._ecol_for(label)
        if col is None:
            return self._empty_adjacency.get(label)
        return col.index

    def sorted_nodes_with_label(self, label: str) -> array:
        """All node ids carrying ``label`` as a sorted ``array('q')``.

        The maintained membership column itself (merged view) — O(1)
        warm; the multiway join intersects this array directly so
        candidate node ids come out label-checked for free.  Callers
        must not mutate the returned array.
        """
        lid = lookup_label(label)
        col = self._members.get(lid) if lid >= 0 else None
        if col is None:
            return EMPTY_ARRAY
        return col.merged()

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label`` (O(1))."""
        lid = lookup_label(label)
        col = self._members.get(lid) if lid >= 0 else None
        return 0 if col is None else col.count

    def edge_label_count(self, label: str) -> int:
        """Number of edges carrying ``label`` (O(1))."""
        col = self._ecol_for(label)
        return 0 if col is None else col.count

    def out_degree_total(self, node_label: str, edge_label: str) -> int:
        """How many ``edge_label`` edges leave ``node_label`` nodes (O(1)).

        Divided by :meth:`label_count`, this is the average out-degree
        the planner uses to cost an index-probe extension.
        """
        lid = lookup_label(node_label)
        elid = lookup_label(edge_label)
        if lid < 0 or elid < 0:
            return 0
        return self._out_stats.get((lid, elid), 0)

    def in_degree_total(self, node_label: str, edge_label: str) -> int:
        """How many ``edge_label`` edges arrive at ``node_label`` nodes (O(1))."""
        lid = lookup_label(node_label)
        elid = lookup_label(edge_label)
        if lid < 0 or elid < 0:
            return 0
        return self._in_stats.get((lid, elid), 0)

    # ------------------------------------------------------------------
    # resident-size accounting (STATS gauges, benchmarks)
    # ------------------------------------------------------------------
    def store_bytes(self) -> int:
        """Approximate resident bytes of the store's core columns.

        Counts the slot columns, id map, membership and adjacency
        columns and the index/statistics dicts; print *values* are
        shared Python objects and are not traversed.  Cached frozenset
        views are derived data and excluded.
        """
        total = self._slot_label.itemsize * len(self._slot_label)
        total += self._slot_id.itemsize * len(self._slot_id)
        total += sys.getsizeof(self._slot_print)
        total += self._id_map.nbytes()
        total += sys.getsizeof(self._free) + self._ids.nbytes()
        total += sys.getsizeof(self._members) + sys.getsizeof(self._ecols)
        for col in self._members.values():
            total += col.nbytes()
        for ecol in self._ecols.values():
            total += ecol.nbytes()
        total += sys.getsizeof(self._prints)
        for nodes in self._prints.values():
            total += sys.getsizeof(nodes)
        total += sys.getsizeof(self._out_stats) + sys.getsizeof(self._in_stats)
        return total

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------
    def copy(self) -> "GraphStore":
        """Copy the store; node ids and the id counter carry over.

        Implemented as a mutable copy-on-write fork: both sides keep
        deep-copy semantics but only pay for the columns they actually
        touch afterwards.  The compiled plan cache deliberately does
        not carry over (unlike :meth:`fork`, a copy is an independent
        database, not a version of this one).
        """
        if self._frozen:
            return self.fork(frozen=False)
        had_plan_cache = self._plan_cache is not None
        clone = self.fork(frozen=False)
        clone._plan_cache = None
        if not had_plan_cache:
            self._plan_cache = None
        return clone

    def degree(self, node_id: int) -> int:
        """Total number of incident edge endpoints at ``node_id``."""
        self._require_slot(node_id)
        return sum(
            col.out_degree(node_id) + col.in_degree(node_id)
            for col in self._ecols.values()
        )

    def __len__(self) -> int:
        return self._ids.count

    def __contains__(self, node_id: object) -> bool:
        return self.has_node(node_id)  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[int]:
        return self.nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphStore(nodes={self.node_count}, edges={self.edge_count})"

    # ------------------------------------------------------------------
    # bulk column access (checkpoint streaming)
    # ------------------------------------------------------------------
    def snapshot_columns(self) -> Dict[str, Any]:
        """Dense columns for bulk serialization (checkpoint format 2).

        Returns a dict with a *local* label table (so the document is
        self-contained across processes whose global interners differ):

        * ``labels`` — local-id-ordered label strings;
        * ``node_ids`` / ``node_labels`` — parallel lists (label =
          local id);
        * ``prints`` — ``[index, value]`` pairs into the node lists;
        * ``edges`` — ``[local label id, [s, t, s, t, ...]]`` pairs.
        """
        local: Dict[int, int] = {}
        labels: List[str] = []

        def localize(lid: int) -> int:
            local_id = local.get(lid)
            if local_id is None:
                local_id = local[lid] = len(labels)
                labels.append(label_name(lid))
            return local_id

        node_ids: List[int] = []
        node_labels: List[int] = []
        prints: List[List[Any]] = []
        id_map = self._id_map
        slot_label = self._slot_label
        slot_print = self._slot_print
        for index, node_id in enumerate(self._ids.merged()):
            slot = id_map.get(node_id)
            node_ids.append(node_id)
            node_labels.append(localize(slot_label[slot]))
            value = slot_print[slot]
            if value is not NO_PRINT:
                prints.append([index, value])
        edges: List[List[Any]] = []
        for elid in sorted(
            (elid for elid, col in self._ecols.items() if col.count),
            key=label_name,
        ):
            flat: List[int] = []
            for source, target in self._ecols[elid].pairs():
                flat.append(source)
                flat.append(target)
            edges.append([localize(elid), flat])
        return {
            "labels": labels,
            "node_ids": node_ids,
            "node_labels": node_labels,
            "prints": prints,
            "edges": edges,
            "next_id": self._next_id,
        }

    @classmethod
    def from_columns(cls, columns: Dict[str, Any]) -> "GraphStore":
        """Rebuild a store from :meth:`snapshot_columns` output."""
        store = cls()
        labels = [intern_label(name) for name in columns["labels"]]
        node_ids = columns["node_ids"]
        node_labels = columns["node_labels"]
        slot_label = store._slot_label
        slot_id = store._slot_id
        slot_print = store._slot_print
        id_map = store._id_map
        members: Dict[int, List[int]] = {}
        for slot, (node_id, local_id) in enumerate(zip(node_ids, node_labels)):
            lid = labels[local_id]
            slot_label.append(lid)
            slot_id.append(node_id)
            slot_print.append(NO_PRINT)
            id_map.set(node_id, slot)
            members.setdefault(lid, []).append(node_id)
        for index, value in columns["prints"]:
            node_id = node_ids[index]
            slot_print[index] = value
            lid = labels[node_labels[index]]
            store._prints.setdefault((lid, value), set()).add(node_id)
        ids = array("q", node_ids)
        if any(ids[i] > ids[i + 1] for i in range(len(ids) - 1)):
            ids = array("q", sorted(ids))
        store._ids = IntColumn(ids)
        for lid, nodes in members.items():
            nodes.sort()
            store._members[lid] = IntColumn(array("q", nodes))
        edge_count = 0
        for local_id, flat in columns["edges"]:
            elid = labels[local_id]
            col = store._ecols[elid] = EdgeColumn()
            pairs = sorted(
                (flat[i], flat[i + 1]) for i in range(0, len(flat), 2)
            )
            col.fwd_keys, col.fwd_offs, col.fwd_vals = build_csr(pairs)
            rev = sorted((t, s) for s, t in pairs)
            col.rev_keys, col.rev_offs, col.rev_vals = build_csr(rev)
            col.count = len(pairs)
            edge_count += len(pairs)
            for source, target in pairs:
                s_lid = slot_label[id_map.get(source)]
                t_lid = slot_label[id_map.get(target)]
                out_key = (s_lid, elid)
                store._out_stats[out_key] = store._out_stats.get(out_key, 0) + 1
                in_key = (t_lid, elid)
                store._in_stats[in_key] = store._in_stats.get(in_key, 0) + 1
        store._edge_count = edge_count
        store._next_id = columns.get("next_id", 0)
        if node_ids:
            store._next_id = max(store._next_id, max(node_ids) + 1)
        store._generation = store._ids.count + edge_count
        store._stats_epoch = store._generation
        return store

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_slot(self, node_id: int) -> int:
        try:
            slot = self._id_map.get(node_id)
        except TypeError:
            slot = -1
        if slot < 0:
            raise GraphStoreError(f"unknown node id {node_id!r}")
        return slot
