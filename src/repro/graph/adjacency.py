"""Sorted adjacency arrays: the compact per-edge-label index layer.

An :class:`AdjacencyIndex` is a CSR-style snapshot of one edge label's
adjacency:

* ``targets`` — one ``array('q')`` holding every target id, grouped by
  source and sorted ascending within each group;
* ``sources`` — the mirror array for the reverse direction (every
  source id, grouped by target, sorted within each group);
* two ``(keys, offs)`` array pairs mapping a node id to its
  ``(lo, hi)`` slice by binary search — 16 bytes per distinct
  endpoint instead of a boxed dict entry.

Lookups hand out **memoryview slices** — zero-copy, index- and
``len``-able, and usable with :mod:`bisect` — so a k-way sorted
intersection (:mod:`repro.plan.leapfrog`) walks raw 64-bit ints
without building a single Python set.

Since the columnar store rewrite the adjacency arrays are the *primary*
edge representation (:class:`repro.graph.columns.EdgeColumn` maintains
them incrementally), and an index is usually a zero-copy wrap of the
column's base arrays (:meth:`AdjacencyIndex.from_arrays`) rather than
an O(E log E) build.  The pair-iterable constructor remains for the
reference store and direct construction in tests.  Indexes are
immutable once built and stamped with the store's ``stats_epoch``;
builds are charged to the thread-local ``index_builds`` counter.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Tuple

from repro.graph.columns import build_csr

#: The empty slice every miss returns (shared, zero-length, immutable).
EMPTY_VIEW = memoryview(array("q"))

#: The empty set every span-set miss returns (shared, immutable).
EMPTY_SET: frozenset = frozenset()


class SpanSets(dict):
    """Lazy ``node -> frozenset`` views over one direction of an index.

    Subscripting builds the node's frozenset from its CSR span on first
    access and memoizes it (``__missing__``), so warm lookups are one
    C-level dict subscript — the fetch primitive of the compiled
    multiway runner (:mod:`repro.plan.executor`).  Misses memoize the
    shared empty frozenset.  Like the arrays they derive from, span
    sets are immutable-by-convention and shared across MVCC forks.
    """

    __slots__ = ("_keys", "_offs", "_vals")

    def __init__(self, keys: array, offs: array, vals: array) -> None:
        super().__init__()
        self._keys = keys
        self._offs = offs
        self._vals = vals

    def __missing__(self, node: int) -> frozenset:
        keys = self._keys
        position = bisect_left(keys, node)
        if position < len(keys) and keys[position] == node:
            offs = self._offs
            value = frozenset(self._vals[offs[position] : offs[position + 1]])
        else:
            value = EMPTY_SET
        self[node] = value
        return value


def _charge_build() -> None:
    # imported lazily: repro.core pulls in the matcher stack, which in
    # turn imports this package — at call time the cycle is long closed
    from repro.core import counters as _counters

    _counters.charge(index_builds=1)


class AdjacencyIndex:
    """An immutable CSR view of one edge label at one statistics epoch."""

    __slots__ = (
        "label",
        "epoch",
        "pair_count",
        "_targets",
        "_tview",
        "_fwd_keys",
        "_fwd_offs",
        "_sources",
        "_sview",
        "_rev_keys",
        "_rev_offs",
        "_fwd_sets",
        "_rev_sets",
    )

    def __init__(self, label: str, pairs: Iterable[Tuple[int, int]], epoch: int) -> None:
        forward = sorted(pairs)
        fwd_keys, fwd_offs, fwd_vals = build_csr(forward)
        reverse = sorted((target, source) for source, target in forward)
        rev_keys, rev_offs, rev_vals = build_csr(reverse)
        self._init_arrays(
            label, epoch, fwd_keys, fwd_offs, fwd_vals, rev_keys, rev_offs, rev_vals
        )
        _charge_build()

    @classmethod
    def from_arrays(
        cls,
        label: str,
        epoch: int,
        fwd_keys: array,
        fwd_offs: array,
        fwd_vals: array,
        rev_keys: array,
        rev_offs: array,
        rev_vals: array,
    ) -> "AdjacencyIndex":
        """Zero-copy wrap of pre-built CSR arrays (the columnar store's
        fast path; the arrays must never be mutated afterwards)."""
        index = cls.__new__(cls)
        index._init_arrays(
            label, epoch, fwd_keys, fwd_offs, fwd_vals, rev_keys, rev_offs, rev_vals
        )
        _charge_build()
        return index

    def _init_arrays(
        self, label, epoch, fwd_keys, fwd_offs, fwd_vals, rev_keys, rev_offs, rev_vals
    ) -> None:
        self.label = label
        self.epoch = epoch
        self.pair_count = len(fwd_vals)
        self._targets = fwd_vals
        self._tview = memoryview(fwd_vals)
        self._fwd_keys = fwd_keys
        self._fwd_offs = fwd_offs
        self._sources = rev_vals
        self._sview = memoryview(rev_vals)
        self._rev_keys = rev_keys
        self._rev_offs = rev_offs
        self._fwd_sets: SpanSets = SpanSets(fwd_keys, fwd_offs, fwd_vals)
        self._rev_sets: SpanSets = SpanSets(rev_keys, rev_offs, rev_vals)

    def targets_of(self, source: int) -> memoryview:
        """Sorted targets of ``label``-edges leaving ``source`` (zero-copy)."""
        keys = self._fwd_keys
        position = bisect_left(keys, source)
        if position < len(keys) and keys[position] == source:
            offs = self._fwd_offs
            return self._tview[offs[position] : offs[position + 1]]
        return EMPTY_VIEW

    def sources_of(self, target: int) -> memoryview:
        """Sorted sources of ``label``-edges arriving at ``target`` (zero-copy)."""
        keys = self._rev_keys
        position = bisect_left(keys, target)
        if position < len(keys) and keys[position] == target:
            offs = self._rev_offs
            return self._sview[offs[position] : offs[position + 1]]
        return EMPTY_VIEW

    def targets_sets(self) -> SpanSets:
        """Lazy ``source -> frozenset(targets)`` views (memoized)."""
        return self._fwd_sets

    def sources_sets(self) -> SpanSets:
        """Lazy ``target -> frozenset(sources)`` views (memoized)."""
        return self._rev_sets

    def has_pair(self, source: int, target: int) -> bool:
        """Whether the edge ``source --label--> target`` is in the index."""
        keys = self._fwd_keys
        position = bisect_left(keys, source)
        if position == len(keys) or keys[position] != source:
            return False
        offs = self._fwd_offs
        lo, hi = offs[position], offs[position + 1]
        targets = self._targets
        spot = bisect_left(targets, target, lo, hi)
        return spot < hi and targets[spot] == target

    def sources(self) -> Iterable[int]:
        """The distinct source ids, in ascending order."""
        return self._fwd_keys

    def __len__(self) -> int:
        return self.pair_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdjacencyIndex({self.label!r}, pairs={self.pair_count}, epoch={self.epoch})"
        )
