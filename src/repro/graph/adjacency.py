"""Sorted adjacency arrays: the compact per-edge-label index layer.

An :class:`AdjacencyIndex` is a CSR-style snapshot of one edge label's
adjacency, built from the store's ``(source, target)`` pair index:

* ``targets`` — one ``array('q')`` holding every target id, grouped by
  source and sorted ascending within each group;
* ``sources`` — the mirror array for the reverse direction (every
  source id, grouped by target, sorted within each group);
* two position dicts mapping a node id to its ``(lo, hi)`` slice.

Lookups hand out **memoryview slices** — zero-copy, index- and
``len``-able, and usable with :mod:`bisect` — so a k-way sorted
intersection (:mod:`repro.plan.leapfrog`) walks raw 64-bit ints
without building a single Python set.

Indexes are immutable once built and stamped with the store's
``stats_epoch``; the :class:`~repro.graph.store.GraphStore` caches them
keyed by ``(kind, label, epoch)`` exactly like compiled plans, so a
structural mutation simply strands the old entry (and an MVCC snapshot
pinned at an older epoch keeps hitting its own).  Building is O(E log E)
in the label's edge count and is charged to the thread-local
``index_builds`` counter.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterable, Tuple

#: The empty slice every miss returns (shared, zero-length, immutable).
EMPTY_VIEW = memoryview(array("q"))

#: The empty set every span-set miss returns (shared, immutable).
EMPTY_SET: frozenset = frozenset()


class SpanSets(dict):
    """Lazy ``node -> frozenset`` views over one direction of an index.

    Subscripting builds the node's frozenset from its CSR span on first
    access and memoizes it (``__missing__``), so warm lookups are one
    C-level dict subscript — the fetch primitive of the compiled
    multiway runner (:mod:`repro.plan.executor`).  Misses memoize the
    shared empty frozenset.  Like the arrays they derive from, span
    sets are immutable-by-convention and shared across MVCC forks.
    """

    __slots__ = ("_ids", "_spans")

    def __init__(self, ids: array, spans: Dict[int, Tuple[int, int]]) -> None:
        super().__init__()
        self._ids = ids
        self._spans = spans

    def __missing__(self, node: int) -> frozenset:
        span = self._spans.get(node)
        value = EMPTY_SET if span is None else frozenset(self._ids[span[0] : span[1]])
        self[node] = value
        return value


def _charge_build() -> None:
    # imported lazily: repro.core pulls in the matcher stack, which in
    # turn imports this package — at call time the cycle is long closed
    from repro.core import counters as _counters

    _counters.charge(index_builds=1)


class AdjacencyIndex:
    """An immutable CSR view of one edge label at one statistics epoch."""

    __slots__ = (
        "label",
        "epoch",
        "pair_count",
        "_targets",
        "_fwd",
        "_sources",
        "_rev",
        "_fwd_sets",
        "_rev_sets",
    )

    def __init__(self, label: str, pairs: Iterable[Tuple[int, int]], epoch: int) -> None:
        self.label = label
        self.epoch = epoch
        forward = sorted(pairs)
        self.pair_count = len(forward)
        self._targets = array("q", (target for _, target in forward))
        self._fwd: Dict[int, Tuple[int, int]] = _positions(source for source, _ in forward)
        reverse = sorted(forward, key=lambda pair: (pair[1], pair[0]))
        self._sources = array("q", (source for source, _ in reverse))
        self._rev: Dict[int, Tuple[int, int]] = _positions(target for _, target in reverse)
        self._fwd_sets: SpanSets = SpanSets(self._targets, self._fwd)
        self._rev_sets: SpanSets = SpanSets(self._sources, self._rev)
        _charge_build()

    def targets_of(self, source: int) -> memoryview:
        """Sorted targets of ``label``-edges leaving ``source`` (zero-copy)."""
        span = self._fwd.get(source)
        if span is None:
            return EMPTY_VIEW
        return memoryview(self._targets)[span[0] : span[1]]

    def sources_of(self, target: int) -> memoryview:
        """Sorted sources of ``label``-edges arriving at ``target`` (zero-copy)."""
        span = self._rev.get(target)
        if span is None:
            return EMPTY_VIEW
        return memoryview(self._sources)[span[0] : span[1]]

    def targets_sets(self) -> SpanSets:
        """Lazy ``source -> frozenset(targets)`` views (memoized)."""
        return self._fwd_sets

    def sources_sets(self) -> SpanSets:
        """Lazy ``target -> frozenset(sources)`` views (memoized)."""
        return self._rev_sets

    def has_pair(self, source: int, target: int) -> bool:
        """Whether the edge ``source --label--> target`` is in the index."""
        span = self._fwd.get(source)
        if span is None:
            return False
        lo, hi = span
        position = bisect_left(self._targets, target, lo, hi)
        return position < hi and self._targets[position] == target

    def sources(self) -> Iterable[int]:
        """The distinct source ids, in ascending order."""
        return sorted(self._fwd)

    def __len__(self) -> int:
        return self.pair_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdjacencyIndex({self.label!r}, pairs={self.pair_count}, epoch={self.epoch})"
        )


def _positions(grouped: Iterable[int]) -> Dict[int, Tuple[int, int]]:
    """``node -> (lo, hi)`` spans over an already-grouped id sequence."""
    spans: Dict[int, Tuple[int, int]] = {}
    start = 0
    current = None
    index = 0
    for index, node in enumerate(grouped):
        if node != current:
            if current is not None:
                spans[current] = (start, index)
            current = node
            start = index
    if current is not None:
        spans[current] = (start, index + 1)
    return spans
