"""Graph isomorphism up to node identity.

The paper states that all GOOD operations are "deterministic up to the
particular choice of new objects".  Two runs of the same program may
hand out different node ids for the freshly created objects, but the
resulting instance graphs must be isomorphic via a label-, print- and
edge-preserving bijection.  This module provides the checker the
property tests (experiment P1 in DESIGN.md) rely on.

The algorithm is a straightforward backtracking search over candidate
bijections, pruned by an iteratively refined structural signature
(label, print value, degree profile, then neighbourhood signatures —
a few rounds of colour refinement).  GOOD instances are sparse and
richly labeled, so this is fast in practice.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.graph.store import NO_PRINT, GraphStore

_REFINEMENT_ROUNDS = 3


def _initial_signature(store: GraphStore, node_id: int) -> Hashable:
    record = store.node(node_id)
    print_part: Any = record.print_value if record.has_print else NO_PRINT
    out_profile = tuple(
        sorted((label, len(store.out_neighbours(node_id, label))) for label in store.out_labels(node_id))
    )
    in_profile = tuple(
        sorted((label, len(store.in_neighbours(node_id, label))) for label in store.in_labels(node_id))
    )
    return (record.label, repr(print_part), out_profile, in_profile)


def _refine(store: GraphStore, colours: Dict[int, int]) -> Dict[int, int]:
    signatures: Dict[int, Hashable] = {}
    for node_id in store.nodes():
        out_sig = tuple(
            sorted(
                (label, tuple(sorted(colours[t] for t in store.out_neighbours(node_id, label))))
                for label in store.out_labels(node_id)
            )
        )
        in_sig = tuple(
            sorted(
                (label, tuple(sorted(colours[s] for s in store.in_neighbours(node_id, label))))
                for label in store.in_labels(node_id)
            )
        )
        signatures[node_id] = (colours[node_id], out_sig, in_sig)
    palette: Dict[Hashable, int] = {}
    refined: Dict[int, int] = {}
    for node_id in store.nodes():
        refined[node_id] = palette.setdefault(signatures[node_id], len(palette))
    return refined


def _colouring(store: GraphStore) -> Dict[int, int]:
    palette: Dict[Hashable, int] = {}
    colours: Dict[int, int] = {}
    for node_id in store.nodes():
        colours[node_id] = palette.setdefault(_initial_signature(store, node_id), len(palette))
    for _ in range(_REFINEMENT_ROUNDS):
        colours = _refine(store, colours)
    return colours


def _class_histogram(store: GraphStore, colours: Dict[int, int]) -> Dict[Hashable, int]:
    histogram: Dict[Hashable, int] = {}
    for node_id in store.nodes():
        key = (store.label_of(node_id), colours[node_id])
        histogram[key] = histogram.get(key, 0) + 1
    return histogram


def find_isomorphism(left: GraphStore, right: GraphStore) -> Optional[Dict[int, int]]:
    """Return a node bijection ``left -> right`` or ``None``.

    The bijection preserves labels, print values (including their
    absence) and all labeled edges in both directions.
    """
    if left.node_count != right.node_count or left.edge_count != right.edge_count:
        return None

    left_colours = _colouring(left)
    right_colours = _colouring(right)

    # Colour ids are only comparable through their full signatures, so
    # compare histograms keyed on (label, refined colour) after mapping
    # colours of both sides through a shared palette built from scratch.
    left_classes = _group_by_class(left, left_colours)
    right_classes = _group_by_class(right, right_colours)
    if sorted(left_classes, key=repr) != sorted(right_classes, key=repr):
        return None
    for key in left_classes:
        if len(left_classes[key]) != len(right_classes.get(key, ())):
            return None

    order = sorted(left.nodes(), key=lambda n: (len(left_classes[_class_key(left, left_colours, n)]), n))
    mapping: Dict[int, int] = {}
    used: Dict[int, int] = {}

    def feasible(l_node: int, r_node: int) -> bool:
        for label in left.out_labels(l_node):
            for l_target in left.out_neighbours(l_node, label):
                if l_target in mapping and not right.has_edge(r_node, label, mapping[l_target]):
                    return False
        for label in left.in_labels(l_node):
            for l_source in left.in_neighbours(l_node, label):
                if l_source in mapping and not right.has_edge(mapping[l_source], label, r_node):
                    return False
        # the reverse direction: edges at r_node into already-used nodes
        # must have preimages at l_node
        for label in right.out_labels(r_node):
            for r_target in right.out_neighbours(r_node, label):
                if r_target in used and not left.has_edge(l_node, label, used[r_target]):
                    return False
        for label in right.in_labels(r_node):
            for r_source in right.in_neighbours(r_node, label):
                if r_source in used and not left.has_edge(used[r_source], label, l_node):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        l_node = order[index]
        key = _class_key(left, left_colours, l_node)
        for r_node in sorted(right_classes[key]):
            if r_node in used:
                continue
            if not feasible(l_node, r_node):
                continue
            mapping[l_node] = r_node
            used[r_node] = l_node
            if backtrack(index + 1):
                return True
            del mapping[l_node]
            del used[r_node]
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def isomorphic(left: GraphStore, right: GraphStore) -> bool:
    """Whether the two stores are isomorphic (see :func:`find_isomorphism`)."""
    return find_isomorphism(left, right) is not None


def _class_key(store: GraphStore, colours: Dict[int, int], node_id: int) -> Hashable:
    record = store.node(node_id)
    print_part = repr(record.print_value) if record.has_print else "NO_PRINT"
    return (record.label, print_part, _signature_of_colour(store, colours, node_id))


def _signature_of_colour(store: GraphStore, colours: Dict[int, int], node_id: int) -> Hashable:
    # A colour id is store-local; expand one round of neighbourhood
    # structure into a store-independent representation.
    out_sig = tuple(
        sorted(
            (label, tuple(sorted(_node_atom(store, t) for t in store.out_neighbours(node_id, label))))
            for label in store.out_labels(node_id)
        )
    )
    in_sig = tuple(
        sorted(
            (label, tuple(sorted(_node_atom(store, s) for s in store.in_neighbours(node_id, label))))
            for label in store.in_labels(node_id)
        )
    )
    return (out_sig, in_sig)


def _node_atom(store: GraphStore, node_id: int) -> Tuple[str, str]:
    record = store.node(node_id)
    return (record.label, repr(record.print_value) if record.has_print else "NO_PRINT")


def _group_by_class(store: GraphStore, colours: Dict[int, int]) -> Dict[Hashable, List[int]]:
    classes: Dict[Hashable, List[int]] = {}
    for node_id in store.nodes():
        classes.setdefault(_class_key(store, colours, node_id), []).append(node_id)
    return classes
