"""The retained dict-of-records reference store.

:class:`ReferenceGraphStore` is the pre-columnar ``GraphStore``
implementation, kept verbatim as an executable specification: a Python
dict of per-node :class:`~repro.graph.store.NodeRecord` objects plus
set-based adjacency and label indexes, with the sorted-adjacency CSR
arrays bolted on as a lazily rebuilt secondary index.

It exists for two reasons:

* the hypothesis equivalence suite
  (``tests/property/test_columnar_equivalence.py``) drives random
  interleaved mutation/fork sequences through both stores and asserts
  every observable agrees — the columnar rewrite stays honest against
  the simple implementation;
* the columnar benchmark (``benchmarks/test_bench_columnar.py``)
  measures resident bytes and cold pattern-match latency against this
  store to assert the headline floors.

Apart from the class name (and journal entries carrying label strings
rather than interned label ids) the semantics, caching and COW
behaviour are identical to the historical store; see
:mod:`repro.graph.store` for the API documentation.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.graph.adjacency import AdjacencyIndex
from repro.graph.store import NO_PRINT, Delta, Edge, GraphStoreError, NodeRecord

#: Sorted-adjacency / sorted-label entries kept per store.  Entries are
#: immutable and keyed by epoch, so eviction only ever costs a rebuild.
MAX_CACHED_ADJACENCY = 64


class ReferenceGraphStore:
    """The dict-backed labeled multigraph store (executable oracle)."""

    __slots__ = (
        "_nodes",
        "_out",
        "_in",
        "_by_label",
        "_by_print",
        "_by_edge_label",
        "_out_stats",
        "_in_stats",
        "_next_id",
        "_edge_count",
        "_generation",
        "_stats_epoch",
        "_trackers",
        "_journals",
        "_label_views",
        "_edge_label_views",
        "_out_views",
        "_in_views",
        "_adjacency_cache",
        "_plan_cache",
        "_frozen",
        "_shared_data",
        "_shared_views",
        "_cow_inner",
        "_owned_out",
        "_owned_in",
        "_owned_label",
        "_owned_print",
        "_owned_edge_label",
    )

    def __init__(self) -> None:
        self._nodes: Dict[int, NodeRecord] = {}
        # node -> edge label -> set of neighbour node ids
        self._out: Dict[int, Dict[str, Set[int]]] = {}
        self._in: Dict[int, Dict[str, Set[int]]] = {}
        self._by_label: Dict[str, Set[int]] = {}
        self._by_print: Dict[Tuple[str, Any], Set[int]] = {}
        # edge label -> set of (source, target) pairs
        self._by_edge_label: Dict[str, Set[Tuple[int, int]]] = {}
        # (source node label, edge label) -> number of such edges
        self._out_stats: Dict[Tuple[str, str], int] = {}
        # (target node label, edge label) -> number of such edges
        self._in_stats: Dict[Tuple[str, str], int] = {}
        self._next_id = 0
        self._edge_count = 0
        self._generation = 0
        self._stats_epoch = 0
        self._trackers: List[Delta] = []
        self._journals: List[Any] = []
        self._label_views: Dict[str, FrozenSet[int]] = {}
        self._edge_label_views: Dict[str, FrozenSet[Tuple[int, int]]] = {}
        self._out_views: Dict[int, Dict[str, FrozenSet[int]]] = {}
        self._in_views: Dict[int, Dict[str, FrozenSet[int]]] = {}
        self._adjacency_cache: "OrderedDict[Tuple[str, str, int], Any]" = OrderedDict()
        self._plan_cache: Optional[Dict[Any, Any]] = None
        self._frozen = False
        self._shared_data = False
        self._shared_views = False
        self._cow_inner = False
        self._owned_out: Set[int] = set()
        self._owned_in: Set[int] = set()
        self._owned_label: Set[str] = set()
        self._owned_print: Set[Tuple[str, Any]] = set()
        self._owned_edge_label: Set[str] = set()

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone mutation counter (bumps on every successful change)."""
        return self._generation

    @property
    def stats_epoch(self) -> int:
        """Monotone *structural* change counter."""
        return self._stats_epoch

    def start_tracking(self) -> Delta:
        """Attach and return a fresh :class:`Delta` recorder."""
        delta = Delta(start_generation=self._generation)
        self._trackers.append(delta)
        return delta

    def stop_tracking(self, delta: Delta) -> Delta:
        """Detach a recorder previously returned by :meth:`start_tracking`."""
        try:
            self._trackers.remove(delta)
        except ValueError:
            raise GraphStoreError("delta is not attached to this store") from None
        return delta

    def attach_journal(self, journal: Any) -> None:
        """Attach an undo journal (an object with an ``entries`` list)."""
        self._journals.append(journal)

    def detach_journal(self, journal: Any) -> None:
        """Detach a journal previously passed to :meth:`attach_journal`."""
        try:
            self._journals.remove(journal)
        except ValueError:
            raise GraphStoreError("journal is not attached to this store") from None

    # ------------------------------------------------------------------
    # copy-on-write forks (MVCC snapshot support)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether this store is an immutable snapshot (mutators raise)."""
        return self._frozen

    def fork(self, *, frozen: bool = True) -> "ReferenceGraphStore":
        """Return an O(1) copy-on-write clone of this store."""
        clone = ReferenceGraphStore.__new__(ReferenceGraphStore)
        clone._nodes = self._nodes
        clone._out = self._out
        clone._in = self._in
        clone._by_label = self._by_label
        clone._by_print = self._by_print
        clone._by_edge_label = self._by_edge_label
        clone._out_stats = self._out_stats
        clone._in_stats = self._in_stats
        clone._next_id = self._next_id
        clone._edge_count = self._edge_count
        clone._generation = self._generation
        clone._stats_epoch = self._stats_epoch
        clone._trackers = []
        clone._journals = []
        clone._label_views = self._label_views
        clone._edge_label_views = self._edge_label_views
        clone._out_views = self._out_views
        clone._in_views = self._in_views
        if frozen or self._frozen:
            clone._adjacency_cache = self._adjacency_cache
        else:
            clone._adjacency_cache = OrderedDict()
        if self._plan_cache is None and not self._frozen:
            self._plan_cache = OrderedDict()
        clone._plan_cache = self._plan_cache
        clone._frozen = frozen
        clone._shared_data = True
        clone._shared_views = True
        clone._cow_inner = True
        clone._owned_out = set()
        clone._owned_in = set()
        clone._owned_label = set()
        clone._owned_print = set()
        clone._owned_edge_label = set()
        if not self._frozen:
            self._shared_data = True
            self._shared_views = True
            self._cow_inner = True
            self._owned_out = set()
            self._owned_in = set()
            self._owned_label = set()
            self._owned_print = set()
            self._owned_edge_label = set()
        return clone

    def _before_write(self) -> None:
        """Mutator prologue: reject frozen stores, privatize shared dicts."""
        if self._frozen:
            raise GraphStoreError(
                "store is frozen (a published MVCC snapshot); "
                "fork(frozen=False) yields a mutable clone"
            )
        if self._shared_views:
            self._label_views = dict(self._label_views)
            self._edge_label_views = dict(self._edge_label_views)
            self._out_views = {n: dict(v) for n, v in dict(self._out_views).items()}
            self._in_views = {n: dict(v) for n, v in dict(self._in_views).items()}
            self._shared_views = False
        if self._shared_data:
            self._nodes = dict(self._nodes)
            self._out = dict(self._out)
            self._in = dict(self._in)
            self._by_label = dict(self._by_label)
            self._by_print = dict(self._by_print)
            self._by_edge_label = dict(self._by_edge_label)
            self._out_stats = dict(self._out_stats)
            self._in_stats = dict(self._in_stats)
            self._shared_data = False

    def _own_adj_out(self, node_id: int) -> None:
        if not self._cow_inner or node_id in self._owned_out:
            return
        adj = self._out.get(node_id)
        if adj is not None:
            self._out[node_id] = {lbl: set(ts) for lbl, ts in adj.items()}
        self._owned_out.add(node_id)

    def _own_adj_in(self, node_id: int) -> None:
        if not self._cow_inner or node_id in self._owned_in:
            return
        adj = self._in.get(node_id)
        if adj is not None:
            self._in[node_id] = {lbl: set(ss) for lbl, ss in adj.items()}
        self._owned_in.add(node_id)

    def _own_label(self, label: str) -> None:
        if not self._cow_inner or label in self._owned_label:
            return
        nodes = self._by_label.get(label)
        if nodes is not None:
            self._by_label[label] = set(nodes)
        self._owned_label.add(label)

    def _own_print(self, key: Tuple[str, Any]) -> None:
        if not self._cow_inner or key in self._owned_print:
            return
        nodes = self._by_print.get(key)
        if nodes is not None:
            self._by_print[key] = set(nodes)
        self._owned_print.add(key)

    def _own_edge_label(self, label: str) -> None:
        if not self._cow_inner or label in self._owned_edge_label:
            return
        pairs = self._by_edge_label.get(label)
        if pairs is not None:
            self._by_edge_label[label] = set(pairs)
        self._owned_edge_label.add(label)

    # ------------------------------------------------------------------
    # node operations
    # ------------------------------------------------------------------
    def add_node(self, label: str, print_value: Any = NO_PRINT, node_id: Optional[int] = None) -> int:
        """Create a node with ``label`` and optional print value."""
        self._before_write()
        if node_id is None:
            node_id = self._next_id
            self._next_id += 1
        else:
            if node_id in self._nodes:
                raise GraphStoreError(f"node id {node_id} already exists")
            self._next_id = max(self._next_id, node_id + 1)
        self._nodes[node_id] = NodeRecord(label, print_value)
        self._out[node_id] = {}
        self._in[node_id] = {}
        if self._cow_inner:
            self._owned_out.add(node_id)
            self._owned_in.add(node_id)
        self._own_label(label)
        self._by_label.setdefault(label, set()).add(node_id)
        if print_value is not NO_PRINT:
            self._own_print((label, print_value))
            self._by_print.setdefault((label, print_value), set()).add(node_id)
        self._label_views.pop(label, None)
        self._out_views.pop(node_id, None)
        self._in_views.pop(node_id, None)
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.record_node(node_id)
        for journal in self._journals:
            journal.entries.append(("add_node", node_id, label, print_value))
        return node_id

    def remove_node(self, node_id: int) -> None:
        """Delete a node together with all its incident edges."""
        record = self._require(node_id)
        self._before_write()
        for edge in list(self.edges_of(node_id)):
            self.remove_edge(edge.source, edge.label, edge.target)
        self._own_label(record.label)
        self._by_label[record.label].discard(node_id)
        if not self._by_label[record.label]:
            del self._by_label[record.label]
        if record.has_print:
            key = (record.label, record.print_value)
            self._own_print(key)
            self._by_print[key].discard(node_id)
            if not self._by_print[key]:
                del self._by_print[key]
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]
        self._label_views.pop(record.label, None)
        self._out_views.pop(node_id, None)
        self._in_views.pop(node_id, None)
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.retract_node(node_id)
        for journal in self._journals:
            journal.entries.append(("remove_node", node_id, record.label, record.print_value))

    def set_print(self, node_id: int, print_value: Any) -> None:
        """Attach or replace the print value of ``node_id``."""
        record = self._require(node_id)
        self._before_write()
        if record.has_print:
            key = (record.label, record.print_value)
            self._own_print(key)
            self._by_print[key].discard(node_id)
            if not self._by_print[key]:
                del self._by_print[key]
        self._nodes[node_id] = NodeRecord(record.label, print_value)
        if print_value is not NO_PRINT:
            self._own_print((record.label, print_value))
            self._by_print.setdefault((record.label, print_value), set()).add(node_id)
        self._generation += 1
        for journal in self._journals:
            journal.entries.append(("set_print", node_id, record.print_value, print_value))

    def has_node(self, node_id: int) -> bool:
        """Whether ``node_id`` exists in the store."""
        return node_id in self._nodes

    def node(self, node_id: int) -> NodeRecord:
        """Return the :class:`NodeRecord` for ``node_id``."""
        return self._require(node_id)

    def label_of(self, node_id: int) -> str:
        """Return the label of ``node_id``."""
        return self._require(node_id).label

    def print_of(self, node_id: int) -> Any:
        """Return the print value of ``node_id`` (or :data:`NO_PRINT`)."""
        return self._require(node_id).print_value

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids in ascending (creation) order."""
        return iter(sorted(self._nodes))

    def nodes_with_label(self, label: str) -> FrozenSet[int]:
        """All node ids carrying ``label`` (a cached frozenset view)."""
        view = self._label_views.get(label)
        if view is None:
            view = self._label_views[label] = frozenset(self._by_label.get(label, ()))
        return view

    def nodes_with_print(self, label: str, print_value: Any) -> FrozenSet[int]:
        """All node ids with the given label *and* print value."""
        return frozenset(self._by_print.get((label, print_value), frozenset()))

    def labels_in_use(self) -> FrozenSet[str]:
        """The set of node labels that occur in the store."""
        return frozenset(self._by_label)

    @property
    def node_count(self) -> int:
        """Number of nodes in the store."""
        return len(self._nodes)

    @property
    def next_id(self) -> int:
        """The id the next ``add_node`` call would hand out."""
        return self._next_id

    # ------------------------------------------------------------------
    # edge operations
    # ------------------------------------------------------------------
    def add_edge(self, source: int, label: str, target: int) -> bool:
        """Insert the edge; return ``False`` if it was already present."""
        source_record = self._require(source)
        target_record = self._require(target)
        if target in self._out[source].get(label, ()):
            return False
        self._before_write()
        self._own_adj_out(source)
        self._own_adj_in(target)
        self._own_edge_label(label)
        self._out[source].setdefault(label, set()).add(target)
        self._in[target].setdefault(label, set()).add(source)
        self._by_edge_label.setdefault(label, set()).add((source, target))
        out_key = (source_record.label, label)
        self._out_stats[out_key] = self._out_stats.get(out_key, 0) + 1
        in_key = (target_record.label, label)
        self._in_stats[in_key] = self._in_stats.get(in_key, 0) + 1
        self._edge_label_views.pop(label, None)
        self._out_views.pop(source, None)
        self._in_views.pop(target, None)
        self._edge_count += 1
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.record_edge((source, label, target))
        for journal in self._journals:
            journal.entries.append(("add_edge", source, label, target))
        return True

    def remove_edge(self, source: int, label: str, target: int) -> bool:
        """Delete the edge; return ``False`` if it was not present."""
        if target not in self._out.get(source, {}).get(label, ()):
            return False
        self._before_write()
        self._own_adj_out(source)
        self._own_adj_in(target)
        self._own_edge_label(label)
        targets = self._out[source][label]
        targets.discard(target)
        if not targets:
            del self._out[source][label]
        sources = self._in[target][label]
        sources.discard(source)
        if not sources:
            del self._in[target][label]
        pairs = self._by_edge_label[label]
        pairs.discard((source, target))
        if not pairs:
            del self._by_edge_label[label]
        out_key = (self._nodes[source].label, label)
        if self._out_stats[out_key] == 1:
            del self._out_stats[out_key]
        else:
            self._out_stats[out_key] -= 1
        in_key = (self._nodes[target].label, label)
        if self._in_stats[in_key] == 1:
            del self._in_stats[in_key]
        else:
            self._in_stats[in_key] -= 1
        self._edge_label_views.pop(label, None)
        self._out_views.pop(source, None)
        self._in_views.pop(target, None)
        self._edge_count -= 1
        self._generation += 1
        self._stats_epoch += 1
        for tracker in self._trackers:
            tracker.retract_edge((source, label, target))
        for journal in self._journals:
            journal.entries.append(("remove_edge", source, label, target))
        return True

    def has_edge(self, source: int, label: str, target: int) -> bool:
        """Whether the edge ``source --label--> target`` exists."""
        return target in self._out.get(source, {}).get(label, ())

    def out_neighbours(self, node_id: int, label: str) -> FrozenSet[int]:
        """Targets of ``label``-edges leaving ``node_id`` (cached view)."""
        views = self._out_views.get(node_id)
        if views is None:
            views = self._out_views[node_id] = {}
        view = views.get(label)
        if view is None:
            view = views[label] = frozenset(self._out.get(node_id, {}).get(label, ()))
        return view

    def in_neighbours(self, node_id: int, label: str) -> FrozenSet[int]:
        """Sources of ``label``-edges arriving at ``node_id`` (cached view)."""
        views = self._in_views.get(node_id)
        if views is None:
            views = self._in_views[node_id] = {}
        view = views.get(label)
        if view is None:
            view = views[label] = frozenset(self._in.get(node_id, {}).get(label, ()))
        return view

    def out_labels(self, node_id: int) -> FrozenSet[str]:
        """Edge labels leaving ``node_id``."""
        self._require(node_id)
        return frozenset(self._out[node_id])

    def in_labels(self, node_id: int) -> FrozenSet[str]:
        """Edge labels arriving at ``node_id``."""
        self._require(node_id)
        return frozenset(self._in[node_id])

    def out_edges(self, node_id: int) -> Iterator[Edge]:
        """Iterate over edges leaving ``node_id`` deterministically."""
        self._require(node_id)
        for label in sorted(self._out[node_id]):
            for target in sorted(self._out[node_id][label]):
                yield Edge(node_id, label, target)

    def in_edges(self, node_id: int) -> Iterator[Edge]:
        """Iterate over edges arriving at ``node_id`` deterministically."""
        self._require(node_id)
        for label in sorted(self._in[node_id]):
            for source in sorted(self._in[node_id][label]):
                yield Edge(source, label, node_id)

    def edges_of(self, node_id: int) -> Iterator[Edge]:
        """All edges incident to ``node_id`` (self-loops reported once)."""
        seen: Set[Edge] = set()
        for edge in self.out_edges(node_id):
            seen.add(edge)
            yield edge
        for edge in self.in_edges(node_id):
            if edge not in seen:
                yield edge

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges, deterministically ordered."""
        for node_id in sorted(self._out):
            for label in sorted(self._out[node_id]):
                for target in sorted(self._out[node_id][label]):
                    yield Edge(node_id, label, target)

    @property
    def edge_count(self) -> int:
        """Number of edges in the store."""
        return self._edge_count

    # ------------------------------------------------------------------
    # secondary indexes and cardinality statistics (planner support)
    # ------------------------------------------------------------------
    def edges_with_label(self, label: str) -> FrozenSet[Tuple[int, int]]:
        """All ``(source, target)`` pairs of ``label``-edges (cached view)."""
        view = self._edge_label_views.get(label)
        if view is None:
            view = self._edge_label_views[label] = frozenset(self._by_edge_label.get(label, ()))
        return view

    def edge_labels_in_use(self) -> FrozenSet[str]:
        """The set of edge labels that occur in the store."""
        return frozenset(self._by_edge_label)

    # ------------------------------------------------------------------
    # sorted-adjacency arrays (worst-case-optimal join support)
    # ------------------------------------------------------------------
    def sorted_adjacency(self, label: str) -> AdjacencyIndex:
        """The CSR sorted-adjacency index for ``label`` at this epoch."""
        key = ("adj", label, self._stats_epoch)
        cache = self._adjacency_cache
        index = cache.get(key)
        if index is None:
            index = AdjacencyIndex(
                label, self._by_edge_label.get(label, ()), self._stats_epoch
            )
            cache[key] = index
            self._trim_adjacency_cache()
        return index

    def cached_adjacency(self, label: str) -> Optional[AdjacencyIndex]:
        """The current-epoch index for ``label`` if already built."""
        return self._adjacency_cache.get(("adj", label, self._stats_epoch))

    def sorted_nodes_with_label(self, label: str) -> array:
        """All node ids carrying ``label`` as a sorted ``array('q')``."""
        key = ("lbl", label, self._stats_epoch)
        cache = self._adjacency_cache
        nodes = cache.get(key)
        if nodes is None:
            nodes = array("q", sorted(self._by_label.get(label, ())))
            cache[key] = nodes
            self._trim_adjacency_cache()
        return nodes

    def _trim_adjacency_cache(self) -> None:
        cache = self._adjacency_cache
        try:
            while len(cache) > MAX_CACHED_ADJACENCY:
                cache.popitem(last=False)
        except KeyError:  # concurrent eviction raced ours; stays bounded
            pass

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label`` (O(1))."""
        nodes = self._by_label.get(label)
        return 0 if nodes is None else len(nodes)

    def edge_label_count(self, label: str) -> int:
        """Number of edges carrying ``label`` (O(1))."""
        pairs = self._by_edge_label.get(label)
        return 0 if pairs is None else len(pairs)

    def out_degree_total(self, node_label: str, edge_label: str) -> int:
        """How many ``edge_label`` edges leave ``node_label`` nodes (O(1))."""
        return self._out_stats.get((node_label, edge_label), 0)

    def in_degree_total(self, node_label: str, edge_label: str) -> int:
        """How many ``edge_label`` edges arrive at ``node_label`` nodes (O(1))."""
        return self._in_stats.get((node_label, edge_label), 0)

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------
    def copy(self) -> "ReferenceGraphStore":
        """Deep-copy the store; node ids and the id counter carry over."""
        if self._frozen:
            return self.fork(frozen=False)
        clone = ReferenceGraphStore()
        clone._nodes = dict(self._nodes)
        clone._out = {n: {lbl: set(ts) for lbl, ts in adj.items()} for n, adj in self._out.items()}
        clone._in = {n: {lbl: set(ss) for lbl, ss in adj.items()} for n, adj in self._in.items()}
        clone._by_label = {lbl: set(ns) for lbl, ns in self._by_label.items()}
        clone._by_print = {key: set(ns) for key, ns in self._by_print.items()}
        clone._by_edge_label = {lbl: set(ps) for lbl, ps in self._by_edge_label.items()}
        clone._out_stats = dict(self._out_stats)
        clone._in_stats = dict(self._in_stats)
        clone._next_id = self._next_id
        clone._edge_count = self._edge_count
        clone._generation = self._generation
        clone._stats_epoch = self._stats_epoch
        clone._label_views = self._label_views
        clone._edge_label_views = self._edge_label_views
        clone._out_views = self._out_views
        clone._in_views = self._in_views
        clone._shared_views = True
        self._shared_views = True
        return clone

    def degree(self, node_id: int) -> int:
        """Total number of incident edge endpoints at ``node_id``."""
        self._require(node_id)
        out_deg = sum(len(ts) for ts in self._out[node_id].values())
        in_deg = sum(len(ss) for ss in self._in[node_id].values())
        return out_deg + in_deg

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[int]:
        return self.nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReferenceGraphStore(nodes={self.node_count}, edges={self.edge_count})"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require(self, node_id: int) -> NodeRecord:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphStoreError(f"unknown node id {node_id!r}") from None
