"""JSON round-trip for schemes and instances.

The wire format is deliberately plain — dictionaries of sorted lists —
so dumps are diffable and stable across runs.  Print values must be
JSON-serialisable (strings, numbers, booleans, null); richer domains
need a custom encoder at the call site.

Node ids are preserved through a round trip, so programs holding node
handles keep working against a reloaded instance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.errors import GoodError
from repro.core.instance import Instance
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT

FORMAT_VERSION = 1


class SerializationError(GoodError):
    """Malformed serialised data."""


# ----------------------------------------------------------------------
# schemes
# ----------------------------------------------------------------------


def scheme_to_json(scheme: Scheme) -> Dict[str, Any]:
    """A JSON-ready dictionary for a scheme."""
    return {
        "format": FORMAT_VERSION,
        "object_labels": sorted(scheme.object_labels),
        "printable_labels": sorted(scheme.printable_labels),
        "functional_edge_labels": sorted(scheme.functional_edge_labels),
        "multivalued_edge_labels": sorted(scheme.multivalued_edge_labels),
        "properties": sorted(list(triple) for triple in scheme.properties),
        "isa_labels": sorted(scheme.isa_labels),
    }


def scheme_from_json(data: Dict[str, Any]) -> Scheme:
    """Rebuild a scheme; domains resolve through the built-in registry."""
    if data.get("format") != FORMAT_VERSION:
        raise SerializationError(f"unsupported scheme format {data.get('format')!r}")
    scheme = Scheme(
        object_labels=data["object_labels"],
        printable_labels=data["printable_labels"],
        functional_edge_labels=data["functional_edge_labels"],
        multivalued_edge_labels=data["multivalued_edge_labels"],
        properties=[tuple(triple) for triple in data["properties"]],
    )
    for label in data.get("isa_labels", ()):
        scheme.mark_isa(label)
    scheme.validate()
    return scheme


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------


def instance_to_json(instance: Instance) -> Dict[str, Any]:
    """A JSON-ready dictionary for an instance (ids included)."""
    nodes = []
    for node_id in instance.nodes():
        record = instance.node_record(node_id)
        entry: Dict[str, Any] = {"id": node_id, "label": record.label}
        if record.has_print:
            entry["print"] = record.print_value
        nodes.append(entry)
    edges = [
        {"source": edge.source, "label": edge.label, "target": edge.target}
        for edge in instance.edges()
    ]
    return {
        "format": FORMAT_VERSION,
        "scheme": scheme_to_json(instance.scheme),
        "nodes": nodes,
        "edges": edges,
    }


def instance_from_json(data: Dict[str, Any]) -> Instance:
    """Rebuild an instance, preserving node ids, and validate it."""
    if data.get("format") != FORMAT_VERSION:
        raise SerializationError(f"unsupported instance format {data.get('format')!r}")
    scheme = scheme_from_json(data["scheme"])
    instance = Instance(scheme)
    for entry in data["nodes"]:
        label = entry["label"]
        node_id = entry["id"]
        if scheme.is_printable_label(label):
            instance.add_printable(label, entry.get("print", NO_PRINT), _node_id=node_id)
        else:
            if "print" in entry:
                raise SerializationError(f"object node {node_id} carries a print value")
            instance.add_object(label, _node_id=node_id)
    for entry in data["edges"]:
        instance.add_edge(entry["source"], entry["label"], entry["target"])
    instance.validate()
    return instance


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------


def save_scheme(scheme: Scheme, path: Union[str, Path]) -> None:
    """Write a scheme to a JSON file."""
    Path(path).write_text(json.dumps(scheme_to_json(scheme), indent=2, sort_keys=True))


def load_scheme(path: Union[str, Path]) -> Scheme:
    """Read a scheme from a JSON file."""
    return scheme_from_json(json.loads(Path(path).read_text()))


def save_instance(instance: Instance, path: Union[str, Path]) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_json(instance), indent=2, sort_keys=True))


def load_instance(path: Union[str, Path]) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_json(json.loads(Path(path).read_text()))
