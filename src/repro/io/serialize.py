"""JSON round-trip for schemes and instances.

The wire format is deliberately plain — dictionaries of sorted lists —
so dumps are diffable and stable across runs.  Print values must be
JSON-serialisable (strings, numbers, booleans, null); richer domains
need a custom encoder at the call site.

Node ids are preserved through a round trip, so programs holding node
handles keep working against a reloaded instance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Union

from repro.core.errors import GoodError
from repro.core.instance import Instance
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT

FORMAT_VERSION = 1

#: The columnar bulk format (checkpoint streaming): the label table is
#: written once, then flat parallel int columns — ~10× smaller and much
#: faster to parse than the per-record format 1 on large instances.
#: :func:`instance_from_json` auto-detects both formats; format 1 stays
#: the default for user-facing SAVE/LOAD documents (diffable, obvious).
COLUMNAR_FORMAT_VERSION = 2


class SerializationError(GoodError):
    """Malformed serialised data.

    Always names the offending key (and, for node/edge entries, the
    list position) so a server can reject a bad payload with a precise,
    structured error instead of a bare ``KeyError``/``TypeError``.
    """


def _require_mapping(data: Any, what: str) -> Dict[str, Any]:
    if not isinstance(data, dict):
        raise SerializationError(
            f"{what} document must be a JSON object, got {type(data).__name__}"
        )
    return data


def _require_key(data: Dict[str, Any], key: str, where: str) -> Any:
    if key not in data:
        raise SerializationError(f"{where}: missing required key {key!r}")
    return data[key]


def _require_list(data: Dict[str, Any], key: str, where: str) -> list:
    value = _require_key(data, key, where)
    if not isinstance(value, list):
        raise SerializationError(
            f"{where}: {key!r} must be an array, got {type(value).__name__}"
        )
    return value


# ----------------------------------------------------------------------
# schemes
# ----------------------------------------------------------------------


def scheme_to_json(scheme: Scheme) -> Dict[str, Any]:
    """A JSON-ready dictionary for a scheme."""
    return {
        "format": FORMAT_VERSION,
        "object_labels": sorted(scheme.object_labels),
        "printable_labels": sorted(scheme.printable_labels),
        "functional_edge_labels": sorted(scheme.functional_edge_labels),
        "multivalued_edge_labels": sorted(scheme.multivalued_edge_labels),
        "properties": sorted(list(triple) for triple in scheme.properties),
        "isa_labels": sorted(scheme.isa_labels),
    }


def scheme_from_json(data: Dict[str, Any]) -> Scheme:
    """Rebuild a scheme; domains resolve through the built-in registry."""
    data = _require_mapping(data, "scheme")
    if data.get("format") != FORMAT_VERSION:
        raise SerializationError(f"unsupported scheme format {data.get('format')!r}")
    labels = {
        key: _require_list(data, key, "scheme")
        for key in (
            "object_labels",
            "printable_labels",
            "functional_edge_labels",
            "multivalued_edge_labels",
        )
    }
    properties = []
    for position, triple in enumerate(_require_list(data, "properties", "scheme")):
        if not isinstance(triple, (list, tuple)) or len(triple) != 3:
            raise SerializationError(
                f"scheme: properties[{position}] must be a [source, edge, target] "
                f"triple, got {triple!r}"
            )
        properties.append(tuple(triple))
    try:
        scheme = Scheme(properties=properties, **labels)
        for label in data.get("isa_labels", ()):
            scheme.mark_isa(label)
        scheme.validate()
    except (TypeError, ValueError) as error:
        raise SerializationError(f"scheme: malformed declaration: {error}") from error
    return scheme


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------


def instance_to_json(instance: Instance) -> Dict[str, Any]:
    """A JSON-ready dictionary for an instance (ids included)."""
    nodes = []
    for node_id in instance.nodes():
        record = instance.node_record(node_id)
        entry: Dict[str, Any] = {"id": node_id, "label": record.label}
        if record.has_print:
            entry["print"] = record.print_value
        nodes.append(entry)
    edges = [
        {"source": edge.source, "label": edge.label, "target": edge.target}
        for edge in instance.edges()
    ]
    return {
        "format": FORMAT_VERSION,
        "scheme": scheme_to_json(instance.scheme),
        "nodes": nodes,
        "edges": edges,
    }


def instance_to_columnar_json(instance: Instance) -> Dict[str, Any]:
    """A JSON-ready *columnar* document (format 2) for an instance.

    Requires the native columnar store; the label table appears once
    under ``labels`` and nodes/edges are flat parallel int lists.
    """
    columns = instance.store.snapshot_columns()
    return {
        "format": COLUMNAR_FORMAT_VERSION,
        "scheme": scheme_to_json(instance.scheme),
        "labels": columns["labels"],
        "node_ids": columns["node_ids"],
        "node_labels": columns["node_labels"],
        "prints": columns["prints"],
        "edges": columns["edges"],
        "next_id": columns["next_id"],
    }


def _instance_from_columnar(data: Dict[str, Any]) -> Instance:
    from repro.graph.store import GraphStore

    scheme = scheme_from_json(_require_key(data, "scheme", "instance"))
    for key in ("labels", "node_ids", "node_labels", "prints", "edges"):
        _require_list(data, key, "instance")
    if len(data["node_ids"]) != len(data["node_labels"]):
        raise SerializationError(
            "instance: 'node_ids' and 'node_labels' columns differ in length"
        )
    try:
        store = GraphStore.from_columns(data)
    except (TypeError, ValueError, IndexError, KeyError) as error:
        raise SerializationError(f"instance: malformed columnar document: {error}") from error
    instance = Instance(scheme, _store=store)
    instance.validate()
    return instance


def instance_from_json(data: Dict[str, Any]) -> Instance:
    """Rebuild an instance, preserving node ids, and validate it.

    Accepts both the per-record format 1 and the columnar format 2
    (auto-detected by the ``format`` key).
    """
    data = _require_mapping(data, "instance")
    if data.get("format") == COLUMNAR_FORMAT_VERSION:
        return _instance_from_columnar(data)
    if data.get("format") != FORMAT_VERSION:
        raise SerializationError(f"unsupported instance format {data.get('format')!r}")
    scheme = scheme_from_json(_require_key(data, "scheme", "instance"))
    instance = Instance(scheme)
    for position, entry in enumerate(_require_list(data, "nodes", "instance")):
        where = f"instance: nodes[{position}]"
        entry = _require_mapping(entry, where)
        label = _require_key(entry, "label", where)
        node_id = _require_key(entry, "id", where)
        if not isinstance(node_id, int) or isinstance(node_id, bool):
            raise SerializationError(f"{where}: 'id' must be an integer, got {node_id!r}")
        if not isinstance(label, str):
            raise SerializationError(f"{where}: 'label' must be a string, got {label!r}")
        if scheme.is_printable_label(label):
            instance.add_printable(label, entry.get("print", NO_PRINT), _node_id=node_id)
        else:
            if "print" in entry:
                raise SerializationError(f"{where}: object node {node_id} carries a print value")
            instance.add_object(label, _node_id=node_id)
    for position, entry in enumerate(_require_list(data, "edges", "instance")):
        where = f"instance: edges[{position}]"
        entry = _require_mapping(entry, where)
        source = _require_key(entry, "source", where)
        label = _require_key(entry, "label", where)
        target = _require_key(entry, "target", where)
        for key, endpoint in (("source", source), ("target", target)):
            if not isinstance(endpoint, int) or isinstance(endpoint, bool):
                raise SerializationError(
                    f"{where}: {key!r} must be an integer node id, got {endpoint!r}"
                )
        if not isinstance(label, str):
            raise SerializationError(f"{where}: 'label' must be a string, got {label!r}")
        instance.add_edge(source, label, target)
    instance.validate()
    return instance


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------


def save_scheme(scheme: Scheme, path: Union[str, Path]) -> None:
    """Write a scheme to a JSON file."""
    Path(path).write_text(json.dumps(scheme_to_json(scheme), indent=2, sort_keys=True))


def _parse_file(path: Union[str, Path]) -> Any:
    try:
        return json.loads(Path(path).read_text())
    except ValueError as error:
        raise SerializationError(f"{path}: not valid JSON: {error}") from error


def load_scheme(path: Union[str, Path]) -> Scheme:
    """Read a scheme from a JSON file."""
    return scheme_from_json(_parse_file(path))


def write_instance(instance: Instance, fp: IO[str]) -> None:
    """Stream an instance as JSON to an open text file.

    Produces byte-for-byte the document ``json.dumps(
    instance_to_json(instance), indent=2, sort_keys=True)`` would, but
    emits one node/edge entry at a time instead of materialising the
    whole instance as a second in-memory object plus its dump string —
    checkpointing a 10^5-node store must not double peak memory.
    """
    dump = json.dumps  # compact per-entry encoder
    fp.write('{\n  "edges": [')
    first = True
    for edge in instance.edges():
        fp.write("," if not first else "")
        first = False
        fp.write(
            "\n    "
            + dump(
                {"label": edge.label, "source": edge.source, "target": edge.target},
                indent=2,
                sort_keys=True,
            ).replace("\n", "\n    ")
        )
    fp.write("\n  ],\n" if not first else "],\n")
    fp.write(f'  "format": {FORMAT_VERSION},\n  "nodes": [')
    first = True
    for node_id in instance.nodes():
        record = instance.node_record(node_id)
        entry: Dict[str, Any] = {"id": node_id, "label": record.label}
        if record.has_print:
            entry["print"] = record.print_value
        fp.write("," if not first else "")
        first = False
        fp.write("\n    " + dump(entry, indent=2, sort_keys=True).replace("\n", "\n    "))
    fp.write("\n  ],\n" if not first else "],\n")
    scheme_doc = dump(scheme_to_json(instance.scheme), indent=2, sort_keys=True)
    fp.write('  "scheme": ' + scheme_doc.replace("\n", "\n  ") + "\n}")


def _write_int_list(fp: IO[str], values: Any) -> None:
    # stream a long int list in bounded chunks instead of one dump string
    fp.write("[")
    for start in range(0, len(values), 65536):
        if start:
            fp.write(",")
        fp.write(",".join(map(str, values[start : start + 65536])))
    fp.write("]")


def write_instance_columnar(instance: Instance, fp: IO[str]) -> None:
    """Stream an instance in the columnar format 2 to an open file.

    The intern (label) table is written once; node and edge columns
    follow as flat int lists emitted in bounded chunks, so checkpointing
    a 10^6-node store costs neither a second in-memory instance document
    nor one giant dump string.
    """
    columns = instance.store.snapshot_columns()
    dump = json.dumps
    fp.write('{"format": %d,\n' % COLUMNAR_FORMAT_VERSION)
    fp.write('"labels": %s,\n' % dump(columns["labels"]))
    fp.write('"next_id": %d,\n' % columns["next_id"])
    fp.write('"node_ids": ')
    _write_int_list(fp, columns["node_ids"])
    fp.write(',\n"node_labels": ')
    _write_int_list(fp, columns["node_labels"])
    fp.write(',\n"prints": %s,\n' % dump(columns["prints"]))
    fp.write('"edges": [')
    for position, (local_id, flat) in enumerate(columns["edges"]):
        if position:
            fp.write(",")
        fp.write("\n[%d, " % local_id)
        _write_int_list(fp, flat)
        fp.write("]")
    fp.write('],\n')
    fp.write('"scheme": %s}' % dump(scheme_to_json(instance.scheme), sort_keys=True))


def save_instance(instance: Instance, path: Union[str, Path]) -> None:
    """Write an instance to a JSON file (streamed, see :func:`write_instance`)."""
    with Path(path).open("w") as fp:
        write_instance(instance, fp)


def load_instance(path: Union[str, Path]) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_json(_parse_file(path))
