"""JSON serialisation for schemes, instances and patterns."""

from repro.io.serialize import (
    instance_from_json,
    instance_to_json,
    load_instance,
    load_scheme,
    save_instance,
    save_scheme,
    scheme_from_json,
    scheme_to_json,
)

__all__ = [
    "instance_from_json",
    "instance_to_json",
    "load_instance",
    "load_scheme",
    "save_instance",
    "save_scheme",
    "scheme_from_json",
    "scheme_to_json",
]
