"""Synthetic workload generators for benchmarks and property tests.

The paper has no evaluation section, so there are no author traces to
replay (see DESIGN.md, substitution note).  These generators produce
random-but-valid schemes, instances, patterns and operation sequences
that exercise the same code paths the paper's figures exercise, with a
seeded RNG for reproducibility.
"""

from repro.workloads.generators import (
    chain_instance,
    grid_instance,
    random_basic_program,
    random_instance,
    random_pattern,
    random_rule_program,
    random_scheme,
    scale_free_instance,
    tree_instance,
)
from repro.workloads.relational import random_expression, random_relational_database

__all__ = [
    "chain_instance",
    "grid_instance",
    "random_basic_program",
    "random_expression",
    "random_instance",
    "random_pattern",
    "random_relational_database",
    "random_rule_program",
    "random_scheme",
    "scale_free_instance",
    "tree_instance",
]
