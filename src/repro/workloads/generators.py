"""Random schemes, instances, patterns and operation sequences."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.instance import Instance
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
)
from repro.core.pattern import Pattern
from repro.core.scheme import Scheme
from repro.core.labels import ANY_DOMAIN


def random_scheme(
    rng: random.Random,
    n_classes: int = 4,
    n_printables: int = 2,
    n_functional: int = 4,
    n_multivalued: int = 2,
    n_properties: int = 10,
) -> Scheme:
    """A random valid scheme with the requested label counts."""
    scheme = Scheme()
    classes = [f"C{i}" for i in range(n_classes)]
    printables = [f"P{i}" for i in range(n_printables)]
    functional = [f"f{i}" for i in range(n_functional)]
    multivalued = [f"m{i}" for i in range(n_multivalued)]
    for label in classes:
        scheme.add_object_label(label)
    for label in printables:
        scheme.add_printable_label(label, ANY_DOMAIN)
    for label in functional:
        scheme.add_functional_edge_label(label)
    for label in multivalued:
        scheme.add_multivalued_edge_label(label)
    targets = classes + printables
    attempts = 0
    while len(scheme.properties) < n_properties and attempts < n_properties * 10:
        attempts += 1
        source = rng.choice(classes)
        edge = rng.choice(functional + multivalued)
        target = rng.choice(targets)
        scheme.add_property(source, edge, target)
    scheme.validate()
    return scheme


def random_instance(
    rng: random.Random,
    scheme: Scheme,
    n_nodes: int = 30,
    n_edges: int = 60,
    value_pool: int = 8,
) -> Instance:
    """A random valid instance over ``scheme``.

    Printable nodes draw values from a small pool so patterns with
    constants actually match; edge insertion respects the functional
    and same-label constraints by construction (violating attempts are
    simply skipped).
    """
    instance = Instance(scheme)
    classes = sorted(scheme.object_labels)
    printables = sorted(scheme.printable_labels)
    if not classes:
        return instance
    for _ in range(n_nodes):
        if printables and rng.random() < 0.3:
            label = rng.choice(printables)
            instance.printable(label, f"{label}-v{rng.randrange(value_pool)}")
        else:
            instance.add_object(rng.choice(classes))
    properties = sorted(scheme.properties)
    if not properties:
        return instance
    node_ids = list(instance.nodes())
    for _ in range(n_edges):
        source_label, edge, target_label = rng.choice(properties)
        sources = [n for n in node_ids if instance.label_of(n) == source_label]
        targets = [n for n in node_ids if instance.label_of(n) == target_label]
        if not sources or not targets:
            continue
        source = rng.choice(sources)
        target = rng.choice(targets)
        if instance.edge_violation(source, edge, target) is None:
            instance.add_edge(source, edge, target)
    return instance


def random_pattern(
    rng: random.Random,
    instance: Instance,
    n_nodes: int = 3,
    fix_values: bool = True,
) -> Pattern:
    """A pattern sampled from a connected piece of ``instance``.

    Sampling from the instance guarantees at least one matching, which
    keeps benchmark work non-trivial; ``fix_values`` copies print
    values onto the sampled printable nodes.
    """
    pattern = Pattern(instance.scheme)
    nodes = list(instance.nodes())
    if not nodes:
        return pattern
    start = rng.choice(nodes)
    chosen = [start]
    mapping = {}
    attempts = 0
    while len(chosen) < n_nodes and attempts < 8 * n_nodes:
        attempts += 1
        anchor = rng.choice(chosen)
        neighbours = list(instance.store.out_edges(anchor)) + list(
            instance.store.in_edges(anchor)
        )
        if not neighbours:
            continue
        edge = rng.choice(neighbours)
        other = edge.target if edge.source == anchor else edge.source
        if other not in chosen:
            chosen.append(other)
    for node_id in chosen:
        record = instance.node_record(node_id)
        if instance.scheme.is_printable_label(record.label):
            if fix_values and record.has_print:
                mapping[node_id] = pattern.printable(record.label, record.print_value)
            else:
                mapping[node_id] = pattern.add_printable(record.label)
        else:
            mapping[node_id] = pattern.add_object(record.label)
    chosen_set = set(chosen)
    for node_id in chosen:
        for edge in instance.store.out_edges(node_id):
            if edge.target in chosen_set:
                if not pattern.has_edge(mapping[edge.source], edge.label, mapping[edge.target]):
                    if pattern.edge_violation(mapping[edge.source], edge.label, mapping[edge.target]) is None:
                        pattern.add_edge(mapping[edge.source], edge.label, mapping[edge.target])
    return pattern


def random_basic_program(
    rng: random.Random,
    scheme: Scheme,
    instance: Instance,
    n_operations: int = 6,
) -> List[Operation]:
    """A random sequence of basic operations for differential testing.

    Edge additions are restricted to multivalued labels so random
    programs never hit the Section 3.2 undefined case (conflicting
    functional additions are covered by dedicated tests instead).
    """
    operations: List[Operation] = []
    fresh = 0
    for _ in range(n_operations):
        kind = rng.choice(["NA", "EA", "ND", "ED", "AB"])
        pattern = random_pattern(rng, instance, n_nodes=rng.randint(1, 3))
        if pattern.node_count == 0:
            continue
        pattern_nodes = list(pattern.nodes())
        if kind == "NA":
            targets = rng.sample(pattern_nodes, k=min(len(pattern_nodes), rng.randint(0, 2)))
            label = f"T{fresh}" if rng.random() < 0.7 else "T0"
            fresh += 1
            operations.append(
                NodeAddition(
                    pattern, label, [(f"t{fresh}e{i}", node) for i, node in enumerate(targets)]
                )
            )
        elif kind == "EA":
            object_nodes = [
                n for n in pattern_nodes if scheme.is_object_label(pattern.label_of(n))
            ]
            if not object_nodes:
                continue
            source = rng.choice(object_nodes)
            target = rng.choice(pattern_nodes)
            label = f"link{fresh}"
            fresh += 1
            operations.append(
                EdgeAddition(
                    pattern,
                    [(source, label, target)],
                    new_label_kinds={label: "multivalued"},
                )
            )
        elif kind == "ND":
            operations.append(NodeDeletion(pattern, rng.choice(pattern_nodes)))
        elif kind == "ED":
            edges = [edge.as_tuple() for edge in pattern.edges()]
            if not edges:
                continue
            operations.append(EdgeDeletion(pattern, [rng.choice(edges)]))
        elif kind == "AB":
            object_nodes = [
                n for n in pattern_nodes if scheme.is_object_label(pattern.label_of(n))
            ]
            usable = [
                (node, edge)
                for node in object_nodes
                for (src, edge, _t) in scheme.properties
                if src == pattern.label_of(node) and not scheme.is_functional(edge)
            ]
            if not usable:
                continue
            node, alpha = rng.choice(usable)
            label = f"G{fresh}"
            fresh += 1
            operations.append(Abstraction(pattern, node, label, alpha, f"grp{fresh}"))
    return operations


def chain_instance(scheme: Scheme, length: int) -> Tuple[Instance, List[int]]:
    """A links-to chain of Info nodes over the hyper-media scheme."""
    instance = Instance(scheme)
    nodes = [instance.add_object("Info") for _ in range(length)]
    for left, right in zip(nodes, nodes[1:]):
        instance.add_edge(left, "links-to", right)
    return instance, nodes


def grid_instance(scheme: Scheme, width: int, height: int) -> Tuple[Instance, List[int]]:
    """A ``width`` × ``height`` links-to grid of Info nodes.

    Each cell links to its right and down neighbours — the classic
    many-shortest-paths workload for transitive-closure benchmarks.
    """
    instance = Instance(scheme)
    grid = [[instance.add_object("Info") for _ in range(width)] for _ in range(height)]
    for row in range(height):
        for col in range(width):
            if col + 1 < width:
                instance.add_edge(grid[row][col], "links-to", grid[row][col + 1])
            if row + 1 < height:
                instance.add_edge(grid[row][col], "links-to", grid[row + 1][col])
    return instance, [node for row in grid for node in row]


def tree_instance(scheme: Scheme, depth: int, fanout: int = 2) -> Tuple[Instance, List[int]]:
    """A complete links-to tree of Info nodes, ``depth`` levels deep."""
    instance = Instance(scheme)
    root = instance.add_object("Info")
    nodes = [root]
    frontier = [root]
    for _ in range(depth):
        next_frontier: List[int] = []
        for parent in frontier:
            for _ in range(fanout):
                child = instance.add_object("Info")
                instance.add_edge(parent, "links-to", child)
                nodes.append(child)
                next_frontier.append(child)
        frontier = next_frontier
    return instance, nodes


def random_rule_program(
    rng: random.Random,
    scheme: Scheme,
    node_label: str = "Info",
    base_labels: Tuple[str, ...] = ("links-to",),
    n_levels: int = 2,
    rules_per_level: int = 2,
):
    """A random rule program over ``node_label``, stratified by construction.

    Derived labels are levelled ``d0 < d1 < ...``: a level-*i* rule's
    condition uses base labels, lower-level derived labels and
    (recursively) ``d_i`` positively, and may negate a strictly lower
    level through a crossed extension.  Every generated program
    therefore stratifies while still exercising recursion and negation
    — the input the fixpoint-equivalence property tests need.
    """
    from repro.core.pattern import NegatedPattern
    from repro.rules import Rule

    private = scheme.copy()
    derived = [f"d{level}" for level in range(n_levels)]
    for label in derived:
        private.declare(node_label, label, node_label, functional=False)
    rules = []
    counter = 0
    for level in range(n_levels):
        usable = list(base_labels) + derived[: level + 1]
        lower = derived[:level]
        for _ in range(rules_per_level):
            pattern = Pattern(private)
            nodes = [pattern.add_node(node_label) for _ in range(rng.randint(2, 3))]
            for left, right in zip(nodes, nodes[1:]):
                pattern.add_edge(left, rng.choice(usable), right)
            source = pattern
            if lower and rng.random() < 0.4:
                extension = pattern.copy()
                extra = extension.add_node(node_label)
                extension.add_edge(rng.choice(nodes), rng.choice(lower), extra)
                source = NegatedPattern(pattern)
                source.forbid(extension)
            counter += 1
            rules.append(
                Rule(
                    f"r{counter}",
                    EdgeAddition(
                        source,
                        [(nodes[0], derived[level], nodes[-1])],
                        new_label_kinds={derived[level]: "multivalued"},
                    ),
                )
            )
    return rules


def scale_free_instance(
    rng: random.Random, scheme: Scheme, n_nodes: int, attach: int = 2
) -> Tuple[Instance, List[int]]:
    """A preferential-attachment links-to graph of Info nodes.

    Produces the skewed degree distributions hyper-media link graphs
    actually have; used by the matcher-scaling benchmarks.
    """
    instance = Instance(scheme)
    nodes = [instance.add_object("Info")]
    # the attachment population holds each node once per unit of
    # degree; appending on every edge keeps generation linear
    population = [nodes[0]]
    for _ in range(n_nodes - 1):
        node = instance.add_object("Info")
        for _ in range(min(attach, len(nodes))):
            target = rng.choice(population)
            if not instance.has_edge(node, "links-to", target):
                instance.add_edge(node, "links-to", target)
                population.append(target)
        nodes.append(node)
        population.append(node)
    return instance, nodes
