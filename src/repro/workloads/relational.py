"""Random relational databases and algebra expressions (for C1)."""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.relcomp.relations import (
    AttrConst,
    AttrEq,
    Difference,
    Expr,
    Product,
    Project,
    Rel,
    Relation,
    RelationalDatabase,
    Rename,
    Select,
    Union,
)


def random_relational_database(
    rng: random.Random,
    n_relations: int = 3,
    max_arity: int = 3,
    max_rows: int = 8,
    value_pool: int = 5,
) -> RelationalDatabase:
    """Small random databases with shared values across relations."""
    db = RelationalDatabase()
    values = [f"v{i}" for i in range(value_pool)]
    attr_counter = 0
    for index in range(n_relations):
        arity = rng.randint(1, max_arity)
        attributes = []
        for _ in range(arity):
            attributes.append(f"A{attr_counter}")
            attr_counter += 1
        rows = {
            tuple(rng.choice(values) for _ in range(arity))
            for _ in range(rng.randint(0, max_rows))
        }
        db.add(f"R{index}", Relation.build(attributes, rows))
    return db


def _schema_of(expr: Expr, schemas: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
    if isinstance(expr, Rel):
        return schemas[expr.name]
    if isinstance(expr, Select):
        return _schema_of(expr.child, schemas)
    if isinstance(expr, Project):
        return expr.attributes
    if isinstance(expr, Product):
        return _schema_of(expr.left, schemas) + _schema_of(expr.right, schemas)
    if isinstance(expr, (Union, Difference)):
        return _schema_of(expr.left, schemas)
    if isinstance(expr, Rename):
        mapping = dict(expr.mapping)
        return tuple(mapping.get(a, a) for a in _schema_of(expr.child, schemas))
    raise TypeError(expr)


def random_expression(
    rng: random.Random,
    db: RelationalDatabase,
    depth: int = 3,
    value_pool: int = 5,
) -> Expr:
    """A random well-typed algebra expression over ``db``.

    Every operator of the σπ×∪−ρ fragment can appear; schemas are
    tracked so products stay attribute-disjoint and unions/differences
    stay union-compatible (via renaming when needed).
    """
    schemas: Dict[str, Tuple[str, ...]] = {
        name: db.get(name).attributes for name in db.names()
    }
    values = [f"v{i}" for i in range(value_pool)]
    rename_counter = [0]

    def fresh_rename(expr: Expr, schema: Tuple[str, ...], avoid: Tuple[str, ...]) -> Tuple[Expr, Tuple[str, ...]]:
        mapping = {}
        new_schema: List[str] = []
        for attribute in schema:
            if attribute in avoid or attribute in new_schema:
                new_name = f"B{rename_counter[0]}"
                rename_counter[0] += 1
                mapping[attribute] = new_name
                new_schema.append(new_name)
            else:
                new_schema.append(attribute)
        if not mapping:
            return expr, schema
        return Rename.of(expr, mapping), tuple(new_schema)

    def align(expr: Expr, schema: Tuple[str, ...], target: Tuple[str, ...]) -> Expr:
        """Rename ``expr``'s schema positionally onto ``target``."""
        mapping = {old: new for old, new in zip(schema, target) if old != new}
        if not mapping:
            return expr
        return Rename.of(expr, mapping)

    def build(level: int) -> Tuple[Expr, Tuple[str, ...]]:
        if level <= 0 or rng.random() < 0.25:
            name = rng.choice(list(db.names()))
            return Rel(name), schemas[name]
        choice = rng.choice(["select", "project", "product", "union", "difference", "rename"])
        if choice == "select":
            child, schema = build(level - 1)
            if not schema:
                return child, schema  # nothing to select on
            conditions = []
            for _ in range(rng.randint(1, 2)):
                if len(schema) >= 2 and rng.random() < 0.5:
                    left, right = rng.sample(schema, 2)
                    conditions.append(AttrEq(left, right))
                else:
                    conditions.append(AttrConst(rng.choice(schema), rng.choice(values)))
            return Select(child, tuple(conditions)), schema
        if choice == "project":
            child, schema = build(level - 1)
            width = rng.randint(0, len(schema))
            kept = tuple(rng.sample(schema, width))
            return Project(child, kept), kept
        if choice == "product":
            left, left_schema = build(level - 1)
            right, right_schema = build(level - 1)
            right, right_schema = fresh_rename(right, right_schema, left_schema)
            return Product(left, right), left_schema + right_schema
        if choice in ("union", "difference"):
            left, left_schema = build(level - 1)
            right, right_schema = build(level - 1)
            if len(left_schema) != len(right_schema):
                # pad by projecting the wider operand down
                width = min(len(left_schema), len(right_schema))
                left_schema = left_schema[:width]
                right_schema = right_schema[:width]
                left = Project(left, left_schema)
                right = Project(right, right_schema)
            right = align(right, right_schema, left_schema)
            node = Union(left, right) if choice == "union" else Difference(left, right)
            return node, left_schema
        # rename
        child, schema = build(level - 1)
        if not schema:
            return child, schema
        victim = rng.choice(schema)
        new_name = f"B{rename_counter[0]}"
        rename_counter[0] += 1
        renamed = tuple(new_name if a == victim else a for a in schema)
        return Rename.of(child, {victim: new_name}), renamed

    expr, _ = build(depth)
    return expr
