"""Read-only facades over pinned versions.

A :class:`SnapshotReader` looks exactly like a
:class:`~repro.server.catalog.ServedDatabase` to the session layer —
same ``matchings`` / ``query_program`` / ``explain`` / ``browse`` /
``to_json`` / ``save`` verbs — but every verb executes against one
pinned immutable version, so no read lock is ever taken and a writer
can commit mid-query without the reader noticing.

``query_program`` deserves a note: the engines' live query path is
capture/run/restore against the *shared* engine, which is only safe
under an exclusive lock.  The snapshot path instead runs each QUERY on
a fresh copy-on-write clone of the pinned version
(:meth:`Version.query_target`), so any number of concurrent queries
coexist — and none of them can perturb the snapshot.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.interactive import Session
from repro.server.catalog import CatalogError, ServedDatabase
from repro.txn.snapshot import summarize


class SnapshotReader(ServedDatabase):
    """One pinned version behind the ServedDatabase read API."""

    def __init__(self, database: Any, version: Any) -> None:
        # deliberately not calling ServedDatabase.__init__: this facade
        # wraps an existing version instead of building a backend
        self.name = database.name
        self.backend = database.backend
        self.durability = None
        self.last_commit_lsn = database.last_commit_lsn
        self._pending_ticket = None
        self._owner = database
        self._version = version
        self._released = False
        if version.backend == "native":
            self.session = Session(version.reader_instance())
            self._engine = None
        else:
            self.session = None
            self._engine = version.reader_engine()

    @property
    def version(self) -> Any:
        """The pinned version this reader serves."""
        return self._version

    def release(self) -> None:
        """Unpin the version (idempotent); the registry may GC it."""
        if not self._released:
            self._released = True
            self._owner.snapshots.release(self._version)

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.release()

    # -- reads that need snapshot-specific handling ---------------------
    def query_program(self, source: str) -> Tuple[List[Any], Tuple[int, int]]:
        program = self._compile(source)
        if self.session is not None:
            # Session.query copies the instance first; copying a frozen
            # store is an O(1) mutable fork
            result = self.session.query(program)
            return list(result.reports), (result.instance.node_count, result.instance.edge_count)
        engine = self._version.query_target()
        reports = list(engine.run(program.operations, atomic=False))
        return reports, summarize(engine)

    # -- writes are a bug, not a verb -----------------------------------
    def run_program(self, source: str) -> List[Any]:
        raise CatalogError("snapshot readers are read-only; RUN must go to the live database")

    def undo(self) -> Tuple[int, int]:
        raise CatalogError("snapshot readers are read-only; UNDO must go to the live database")

    def checkpoint(self) -> Any:
        raise CatalogError("snapshot readers cannot checkpoint; use the live database")


__all__ = ["SnapshotReader"]
