"""MVCC snapshot subsystem: immutable versions + refcounted registry.

Readers never block writers: every commit publishes a cheap
copy-on-write version of the database state
(:func:`~repro.mvcc.versions.capture_version`), a refcounted
:class:`~repro.mvcc.registry.SnapshotRegistry` pins versions for
in-flight readers and garbage-collects unpinned ones, and
:class:`~repro.mvcc.readers.SnapshotReader` serves every query verb
from a pinned version with no read lock at all.

The copy-on-write substrate lives with each backend:

* native — :meth:`repro.graph.store.GraphStore.fork` (O(1) frozen
  forks; the live store privatizes touched structures before writing);
* relational — :meth:`repro.storage.minirel.Database.fork` (O(#tables)
  forks with per-table copy-on-first-write segments);
* tarski — the engine's relations are already immutable, so a version
  is just the current family of :class:`BinaryRelation` roots.
"""

from repro.mvcc.registry import SnapshotRegistry
from repro.mvcc.versions import Version, capture_version

__all__ = ["SnapshotRegistry", "Version", "capture_version"]
