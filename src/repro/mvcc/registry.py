"""The refcounted snapshot registry: publish / pin / release / GC.

One :class:`SnapshotRegistry` per served database.  Writers publish a
fresh :class:`~repro.mvcc.versions.Version` after every commit (under
the database's write mutex); readers pin the current version with no
lock ordering against writers at all — ``pin`` is a refcount bump
under the registry's own (never-held-across-IO) mutex.

Garbage collection is immediate and exact: a superseded version is
dropped the moment its pin count reaches zero, and a version that was
already unpinned when superseded is dropped at publish time.  The
version chain therefore only grows while long-running readers hold
old versions — the gauges below surface exactly that.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional


class SnapshotError(RuntimeError):
    """Registry misuse: pinning before the first publish, double release."""


class SnapshotRegistry:
    """Refcounted version chain for one served database."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Any] = None
        # superseded versions still pinned by in-flight readers,
        # oldest first
        self._retired: List[Any] = []
        self._epoch = 0
        self.versions_published = 0
        self.versions_gced = 0

    def next_epoch(self) -> int:
        """A fresh monotone epoch for backends without a store epoch."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    def publish(self, version: Any) -> Any:
        """Install ``version`` as current; GC the predecessor if unpinned."""
        with self._lock:
            previous = self._current
            self._current = version
            self.versions_published += 1
            version.sequence = self.versions_published
            if previous is not None:
                if previous.pins > 0:
                    self._retired.append(previous)
                else:
                    self.versions_gced += 1
            return version

    def pin(self) -> Any:
        """Refcount-pin and return the current version (O(1), no IO)."""
        with self._lock:
            version = self._current
            if version is None:
                raise SnapshotError("no version has been published yet")
            version.pins += 1
            return version

    def release(self, version: Any) -> None:
        """Drop one pin; GC the version if superseded and unpinned."""
        with self._lock:
            if version.pins <= 0:
                raise SnapshotError("release without a matching pin")
            version.pins -= 1
            if version.pins == 0 and version is not self._current:
                try:
                    self._retired.remove(version)
                except ValueError:  # pragma: no cover - defensive
                    pass
                else:
                    self.versions_gced += 1

    @property
    def current(self) -> Optional[Any]:
        """The currently published version (or ``None`` before first publish)."""
        with self._lock:
            return self._current

    def gauges(self) -> Dict[str, int]:
        """The STATS payload: pins, chain length, GC count, shared bytes."""
        with self._lock:
            versions = ([self._current] if self._current is not None else []) + self._retired
            pinned = sum(version.pins for version in versions)
            shared = sum(version.estimated_bytes for version in versions if version.pins > 0)
            return {
                "snapshots_pinned": pinned,
                "version_chain_length": len(versions),
                "versions_published": self.versions_published,
                "versions_gced": self.versions_gced,
                "snapshot_bytes_shared": shared,
            }


__all__ = ["SnapshotRegistry", "SnapshotError"]
