"""Per-backend immutable version snapshots.

A :class:`Version` is one published state of a served database: enough
shared structure to answer every read verb, captured in O(changes) —
never O(store) — at commit time:

* **native** — an :class:`~repro.core.instance.Instance` over a frozen
  :meth:`GraphStore.fork`: the fork shares every index and cached view
  with the live store, and the live store privatizes exactly what it
  touches before its next write.
* **relational** — a :meth:`Database.fork` of the minirel database:
  O(#tables) pointer copies; each table privatizes its row storage on
  its first post-fork mutation.
* **tarski** — the engine's relations update functionally, so the
  version is just the current (immutable) relation family plus the oid
  counter.

Versions are value objects; pin counting and garbage collection live
in :class:`~repro.mvcc.registry.SnapshotRegistry`.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.instance import Instance
from repro.txn.journal import EST_BYTES_PER_ITEM


class Version:
    """One published database state. Subclasses are per-backend."""

    backend = "abstract"

    def __init__(self, scheme: Any, epoch: int, items: int) -> None:
        #: the snapshot's own scheme copy — live scheme evolution
        #: (declare/extend) never reaches a published version
        self.scheme = scheme
        #: the store's ``stats_epoch`` at publish (native) or the
        #: publish ordinal (engines); plan-cache entries key on this
        self.epoch = epoch
        #: node+edge (or row/pair) count, for the bytes-shared gauge
        self.items = items
        #: reader refcount, managed by the registry under its lock
        self.pins = 0
        #: publish ordinal stamped by the registry
        self.sequence = 0

    @property
    def estimated_bytes(self) -> int:
        """Rough payload bytes this version references without copying
        (same per-item constant the txn journals use)."""
        return self.items * EST_BYTES_PER_ITEM

    # -- read surface ---------------------------------------------------
    def reader_instance(self) -> Instance:
        """A native instance view of the version (native backend only)."""
        raise NotImplementedError

    def reader_engine(self) -> Any:
        """A shared read-only engine over the version (engines only)."""
        raise NotImplementedError

    def query_target(self) -> Any:
        """A fresh *mutable* clone for one QUERY run (engines only).

        Query mode executes a program against a temporary state; each
        call gets its own COW clone so concurrent queries on the same
        pinned version never share mutable structure.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(seq={self.sequence}, epoch={self.epoch}, "
            f"pins={self.pins}, items={self.items})"
        )


class NativeVersion(Version):
    backend = "native"

    def __init__(self, instance: Instance) -> None:
        store = instance.store
        super().__init__(instance.scheme, store.stats_epoch, store.node_count + store.edge_count)
        self.instance = instance

    @property
    def estimated_bytes(self) -> int:
        # the columnar store accounts for its own resident columns, so
        # the gauge can report real bytes instead of a per-item guess
        return self.instance.store.store_bytes()

    def reader_instance(self) -> Instance:
        return self.instance


class RelationalVersion(Version):
    backend = "relational"

    def __init__(self, scheme: Any, db: Any, next_oid: int, epoch: int) -> None:
        items = sum(table.count() for table in db._tables.values())
        super().__init__(scheme, epoch, items)
        self.db = db
        self.next_oid = next_oid
        self._engine: Any = None

    def _make_engine(self, scheme: Any, db: Any) -> Any:
        from repro.storage.engine import RelationalEngine
        from repro.storage.layout import GoodLayout

        # GoodLayout.__init__ scans the node directory to recover the
        # oid counter; we already know it, so build the layout directly
        layout = GoodLayout.__new__(GoodLayout)
        layout.scheme = scheme
        layout.db = db
        layout._next_oid = self.next_oid
        return RelationalEngine(scheme, layout)

    def reader_engine(self) -> Any:
        if self._engine is None:
            # benign race: two pinning readers may both build; either
            # result is valid and the last assignment wins
            self._engine = self._make_engine(self.scheme, self.db)
        return self._engine

    def query_target(self) -> Any:
        return self._make_engine(self.scheme.copy(), self.db.fork())


class TarskiVersion(Version):
    backend = "tarski"

    def __init__(
        self,
        scheme: Any,
        member: Any,
        values: Dict[str, Any],
        edges: Dict[str, Any],
        next_oid: int,
        epoch: int,
    ) -> None:
        items = len(member) + sum(len(relation) for relation in edges.values())
        super().__init__(scheme, epoch, items)
        self.member = member
        self.values = values
        self.edges = edges
        self.next_oid = next_oid
        self._engine: Any = None

    def _make_engine(self, scheme: Any) -> Any:
        from repro.tarski.engine import TarskiEngine

        engine = TarskiEngine(scheme)
        engine.member = self.member
        engine.values = dict(self.values)
        engine.edges = dict(self.edges)
        engine._next_oid = self.next_oid
        return engine

    def reader_engine(self) -> Any:
        if self._engine is None:
            self._engine = self._make_engine(self.scheme)
        return self._engine

    def query_target(self) -> Any:
        return self._make_engine(self.scheme.copy())


def capture_version(database: Any) -> Version:
    """Snapshot a :class:`~repro.server.catalog.ServedDatabase`.

    Called under the database's write mutex (or before serving starts),
    so the state cannot move underneath the capture.  Cost: O(1) for
    native and tarski, O(#tables) for relational.
    """
    if database.session is not None:
        live = database.session.instance
        frozen = Instance(live.scheme.copy(), _store=live.store.fork(frozen=True))
        return NativeVersion(frozen)
    engine = database.target
    if database.backend == "relational":
        return RelationalVersion(
            engine.scheme.copy(),
            engine.layout.db.fork(),
            engine.layout._next_oid,
            database.snapshots.next_epoch(),
        )
    return TarskiVersion(
        engine.scheme.copy(),
        engine.member,
        dict(engine.values),
        dict(engine.edges),
        engine._next_oid,
        database.snapshots.next_epoch(),
    )


__all__ = [
    "Version",
    "NativeVersion",
    "RelationalVersion",
    "TarskiVersion",
    "capture_version",
]
