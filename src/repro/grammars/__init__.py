"""Graph grammars, for the Section 5 comparison (experiment S3).

"The GOOD transformation language is reminiscent of graph grammars ...
the operational semantics of (graph) grammar derivations is
non-deterministic, both in the choice of the production to be applied
as in the choice of the particular matching ...  In GOOD, basic
operations are applied in a predetermined order, and, importantly,
work on every matching of the pattern, in parallel."

:class:`~repro.grammars.rewriting.GraphGrammar` is a deliberately
minimal nondeterministic rewriter over GOOD instances: a production is
a GOOD addition/deletion restricted to *one* randomly chosen matching
per derivation step.  The S3 benchmark measures how many derivation
steps a grammar needs to reach the state a single GOOD operation
produces in one deterministic step.
"""

from repro.grammars.rewriting import GraphGrammar, Production, apply_to_one_matching

__all__ = ["GraphGrammar", "Production", "apply_to_one_matching"]
