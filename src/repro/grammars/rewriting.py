"""A minimal nondeterministic graph-grammar rewriter over instances.

A :class:`Production` wraps one GOOD addition or deletion; *applying*
it rewrites exactly one matching of its source pattern (chosen by a
seeded RNG) instead of all of them.  A :class:`GraphGrammar` repeatedly
picks an applicable production at random and applies it — the classical
derivation semantics the paper contrasts GOOD's set-oriented semantics
against.

Only the subset needed for the comparison is implemented (node/edge
addition and deletion); gluing conditions and sophisticated embedding
mechanisms — the "not yet completely resolved problems" the paper
sidesteps — are intentionally out of scope, exactly as they are in
GOOD itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.errors import OperationError
from repro.core.instance import Instance
from repro.core.matching import Matching, find_any
from repro.core.operations import (
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
)

RewritableOp = Union[NodeAddition, EdgeAddition, NodeDeletion, EdgeDeletion]


def _applicable_matchings(operation: RewritableOp, instance: Instance) -> List[Matching]:
    """Matchings whose rewriting would actually change the instance."""
    matchings = list(find_any(operation.source_pattern, instance))
    useful: List[Matching] = []
    for matching in matchings:
        if isinstance(operation, NodeAddition):
            targets = tuple(matching[m] for _, m in operation.edges)
            if operation._existing_node(instance, targets) is None:
                useful.append(matching)
        elif isinstance(operation, EdgeAddition):
            if any(
                not instance.has_edge(matching[s], label, matching[t])
                for s, label, t in operation.edges
            ):
                useful.append(matching)
        elif isinstance(operation, NodeDeletion):
            if instance.has_node(matching[operation.node]):
                useful.append(matching)
        elif isinstance(operation, EdgeDeletion):
            if any(
                instance.has_edge(matching[s], label, matching[t])
                for s, label, t in operation.edges
            ):
                useful.append(matching)
    return useful


def apply_to_one_matching(
    operation: RewritableOp, instance: Instance, matching: Matching
) -> None:
    """Rewrite a single matching in place (the grammar step kernel)."""
    if isinstance(operation, NodeAddition):
        operation.extend_scheme(instance.scheme)
        targets = tuple(matching[m] for _, m in operation.edges)
        if operation._existing_node(instance, targets) is not None:
            return
        new_node = instance.add_object(operation.node_label)
        for (edge_label, _), target in zip(operation.edges, targets):
            instance.add_edge(new_node, edge_label, target)
    elif isinstance(operation, EdgeAddition):
        operation.extend_scheme(instance.scheme)
        for source, edge_label, target in operation.edges:
            if not instance.has_edge(matching[source], edge_label, matching[target]):
                instance.add_edge(matching[source], edge_label, matching[target])
    elif isinstance(operation, NodeDeletion):
        victim = matching[operation.node]
        if instance.has_node(victim):
            instance.remove_node(victim)
    elif isinstance(operation, EdgeDeletion):
        for source, edge_label, target in operation.edges:
            instance.remove_edge(matching[source], edge_label, matching[target])
    else:
        raise OperationError(f"not a rewritable operation: {type(operation).__name__}")


@dataclass
class Production:
    """A named grammar production wrapping one GOOD operation."""

    name: str
    operation: RewritableOp

    def applicable(self, instance: Instance) -> List[Matching]:
        """All matchings whose rewriting would change the instance."""
        return _applicable_matchings(self.operation, instance)


class GraphGrammar:
    """A nondeterministic rewriter with a seeded RNG."""

    def __init__(self, productions: Sequence[Production], seed: int = 0) -> None:
        self.productions = list(productions)
        self.rng = random.Random(seed)

    def derive_step(self, instance: Instance) -> Optional[str]:
        """One derivation step: pick production and matching at random.

        Returns the applied production's name, or ``None`` when no
        production is applicable (the derivation is complete).
        """
        choices = []
        for production in self.productions:
            matchings = production.applicable(instance)
            if matchings:
                choices.append((production, matchings))
        if not choices:
            return None
        production, matchings = self.rng.choice(choices)
        matching = self.rng.choice(matchings)
        production.operation.materialize_constants(instance)
        apply_to_one_matching(production.operation, instance, matching)
        return production.name

    def derive(self, instance: Instance, max_steps: int = 100_000) -> int:
        """Rewrite until no production applies; return the step count."""
        steps = 0
        while steps < max_steps:
            if self.derive_step(instance) is None:
                return steps
            steps += 1
        raise OperationError(f"derivation did not terminate within {max_steps} steps")
