"""The interactive session: query/update modes, browsing, undo."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.errors import GoodError
from repro.core.instance import Instance
from repro.core.matching import find_any
from repro.core.methods import Method, MethodRegistry
from repro.core.operations import Operation
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.program import Program, ProgramResult
from repro.viz.ascii import summarize_instance
from repro.viz.dot import instance_to_dot


class SessionError(GoodError):
    """Misuse of the interactive session (e.g. undo with no history)."""


@dataclass
class Subinstance:
    """A browsable slice of an instance: kept node ids + the view.

    The view is a real :class:`Instance` over the same scheme with the
    same node ids, so follow-up patterns and renderings work on it
    directly.
    """

    nodes: Tuple[int, ...]
    view: Instance

    def to_dot(self, name: str = "view") -> str:
        """Graphviz DOT of the slice."""
        return instance_to_dot(self.view, name)

    def summary(self) -> str:
        """Terminal summary of the slice."""
        return summarize_instance(self.view)

    def to_json(self) -> dict:
        """A serialisable document for the slice (wire format).

        ``nodes`` lists the kept node ids; ``view`` is a full instance
        document (:func:`repro.io.serialize.instance_to_json`), so the
        slice can be reloaded or rendered client-side.
        """
        from repro.io.serialize import instance_to_json

        return {"nodes": list(self.nodes), "view": instance_to_json(self.view)}


class Session:
    """One object base, manipulated through interpretation modes."""

    def __init__(
        self,
        instance: Instance,
        methods: Optional[Sequence[Method]] = None,
        max_undo: int = 16,
    ) -> None:
        self.instance = instance
        self.methods = MethodRegistry(methods or ())
        self.max_undo = max_undo
        self._undo: List[Instance] = []

    # ------------------------------------------------------------------
    # query / update modes
    # ------------------------------------------------------------------
    def _as_program(
        self, program: Union[str, Program, Operation, Sequence[Operation]]
    ) -> Program:
        if isinstance(program, str):
            from repro.dsl import parse_program

            parsed = parse_program(program, self.instance.scheme)
            for name in self.methods.names():
                parsed.methods.register(self.methods.get(name))
            return parsed
        if isinstance(program, Program):
            for name in self.methods.names():
                program.methods.register(self.methods.get(name))
            return program
        if isinstance(program, Operation):
            return Program([program], methods=self.methods)
        return Program(list(program), methods=self.methods)

    def query(self, program: Union[str, Program, Operation, Sequence[Operation]]) -> ProgramResult:
        """Run in query mode: the result is "only a temporary entity".

        ``program`` may be a :class:`Program`, a single operation, a
        sequence of operations, or DSL source text (see
        :mod:`repro.dsl`).
        """
        return self._as_program(program).run(self.instance, in_place=False)

    def update(self, program: Union[str, Program, Operation, Sequence[Operation]]) -> ProgramResult:
        """Run in update mode: the result "replaces the original".

        The previous state is pushed on a bounded undo stack.
        """
        self._undo.append(self.instance.copy(scheme=self.instance.scheme.copy()))
        if len(self._undo) > self.max_undo:
            self._undo.pop(0)
        return self._as_program(program).run(self.instance, in_place=True)

    def undo(self) -> Instance:
        """Restore the state before the most recent update."""
        if not self._undo:
            raise SessionError("nothing to undo")
        self.instance = self._undo.pop()
        return self.instance

    @property
    def undo_depth(self) -> int:
        """How many updates can be undone."""
        return len(self._undo)

    # ------------------------------------------------------------------
    # browsing / visualizing
    # ------------------------------------------------------------------
    def matchings(self, pattern: Union[Pattern, NegatedPattern]):
        """All matchings of a (possibly crossed) pattern, as a list."""
        return list(find_any(pattern, self.instance))

    def extract(self, pattern: Union[Pattern, NegatedPattern]) -> Subinstance:
        """The subinstance induced by all matchings of ``pattern``."""
        kept: Set[int] = set()
        for matching in find_any(pattern, self.instance):
            kept.update(matching.values())
        return self._slice(kept)

    def browse(self, node: int, hops: int = 1, follow_incoming: bool = True) -> Subinstance:
        """The neighbourhood of ``node`` up to ``hops`` edge traversals."""
        if not self.instance.has_node(node):
            raise SessionError(f"unknown node {node!r}")
        kept: Set[int] = {node}
        frontier: Set[int] = {node}
        for _ in range(hops):
            next_frontier: Set[int] = set()
            for current in frontier:
                for edge in self.instance.store.out_edges(current):
                    next_frontier.add(edge.target)
                if follow_incoming:
                    for edge in self.instance.store.in_edges(current):
                        next_frontier.add(edge.source)
            next_frontier -= kept
            kept |= next_frontier
            frontier = next_frontier
            if not frontier:
                break
        return self._slice(kept)

    def focus(
        self,
        pattern: Union[Pattern, NegatedPattern],
        node: int,
        hops: int = 1,
    ) -> Subinstance:
        """Pattern-directed browsing: expand around the images of one
        pattern node across all matchings."""
        anchors = {matching[node] for matching in find_any(pattern, self.instance)}
        kept: Set[int] = set()
        for anchor in sorted(anchors):
            kept.update(self.browse(anchor, hops=hops).nodes)
        return self._slice(kept)

    def _slice(self, kept: Iterable[int]) -> Subinstance:
        kept_set = set(kept)
        view = Instance(self.instance.scheme)
        for node_id in sorted(kept_set):
            record = self.instance.node_record(node_id)
            if self.instance.scheme.is_printable_label(record.label):
                view.add_printable(record.label, record.print_value, _node_id=node_id)
            else:
                view.add_object(record.label, _node_id=node_id)
        for node_id in sorted(kept_set):
            for edge in self.instance.store.out_edges(node_id):
                if edge.target in kept_set:
                    view.add_edge(edge.source, edge.label, edge.target)
        return Subinstance(tuple(sorted(kept_set)), view)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_dot(self, name: str = "object-base") -> str:
        """Graphviz DOT of the whole object base."""
        return instance_to_dot(self.instance, name)

    def show(self) -> str:
        """Terminal summary of the whole object base."""
        return summarize_instance(self.instance)
