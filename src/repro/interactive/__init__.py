"""Modes of interpretation and pattern-directed browsing (Section 5).

"The GOOD transformation language has indeed been designed in such a
way that it can as well be used for querying, updating, scheme
manipulations, restructuring, browsing, and visualizing parts of a
complex instance.  A systematic treatment of these different 'modes of
interpretation' is given in [2]" — and "The interface provides ...
tools for pattern-directed browsing".

:class:`~repro.interactive.session.Session` provides those modes over
one object base:

* ``query(program)``    — run on a copy, return the result (the
  database is untouched);
* ``update(program)``   — run destructively, with an undo stack;
* ``extract(pattern)``  — the subinstance induced by a pattern's
  matchings ("visualizing parts of a complex instance");
* ``browse(node, …)``   — the neighbourhood subinstance around an
  object, hop by hop;
* ``focus(pattern, node)`` — pattern-directed browsing: jump to the
  objects a pattern selects and expand around them;
* ``to_dot()`` / ``show()`` — rendering hooks into :mod:`repro.viz`.
"""

from repro.interactive.session import Session, Subinstance

__all__ = ["Session", "Subinstance"]
