"""repro — a full reproduction of the GOOD object database model.

GOOD (Gyssens, Paredaens, Van den Bussche, Van Gucht; PODS 1990) is a
database model in which both the conceptual representation of data and
its manipulation are graph-based: schemes and instances are labeled
directed graphs, and queries/updates are graph transformations built
from five basic operations — node addition, edge addition, node
deletion, edge deletion, abstraction — plus a method mechanism.

Quick start::

    from repro import Scheme, Instance, Pattern, NodeAddition, Program

    scheme = Scheme(printable_labels=["String"])
    scheme.declare("Person", "name", "String")
    db = Instance(scheme)
    alice = db.add_object("Person")
    db.add_edge(alice, "name", db.printable("String", "Alice"))

    pattern = Pattern(scheme)
    person = pattern.node("Person")
    pattern.edge(person, "name", pattern.node("String", "Alice"))
    tag = NodeAddition(pattern, "Found", [("hit", person)])
    result = Program([tag]).run(db)

Sub-packages:

* :mod:`repro.core` — the model and transformation language;
* :mod:`repro.graph` — the underlying graph store;
* :mod:`repro.storage` — the Section 5 relational implementation;
* :mod:`repro.tarski` — the Section 5 binary-relation implementation;
* :mod:`repro.relcomp` — Section 4.3 relational/nested completeness;
* :mod:`repro.turing` — Section 4.3 computational completeness;
* :mod:`repro.grammars` — the Section 5 graph-grammar comparison;
* :mod:`repro.hypermedia` — the running example (Figs. 1–31);
* :mod:`repro.viz` / :mod:`repro.io` — rendering and serialisation;
* :mod:`repro.workloads` — synthetic generators for benchmarks.
"""

from repro.core import (
    Abstraction,
    BodyOp,
    EdgeAddition,
    EdgeConflictError,
    EdgeDeletion,
    ExecutionContext,
    GoodError,
    HeadBindings,
    Instance,
    InstanceError,
    Method,
    MethodCall,
    MethodRegistry,
    MethodSignature,
    NegatedPattern,
    NO_PRINT,
    NodeAddition,
    NodeDeletion,
    OperationError,
    Pattern,
    PatternError,
    Program,
    ProgramResult,
    RecursiveEdgeAddition,
    ResourceLimitError,
    Scheme,
    SchemeError,
    TransactionError,
    compile_negation,
    count_matchings,
    empty_pattern,
    find_matchings,
    match_negated,
)

__version__ = "1.0.0"

__all__ = [
    "Abstraction",
    "BodyOp",
    "EdgeAddition",
    "EdgeConflictError",
    "EdgeDeletion",
    "ExecutionContext",
    "GoodError",
    "HeadBindings",
    "Instance",
    "InstanceError",
    "Method",
    "MethodCall",
    "MethodRegistry",
    "MethodSignature",
    "NegatedPattern",
    "NO_PRINT",
    "NodeAddition",
    "NodeDeletion",
    "OperationError",
    "Pattern",
    "PatternError",
    "Program",
    "ProgramResult",
    "RecursiveEdgeAddition",
    "ResourceLimitError",
    "Scheme",
    "SchemeError",
    "TransactionError",
    "compile_negation",
    "count_matchings",
    "empty_pattern",
    "find_matchings",
    "match_negated",
    "__version__",
]
