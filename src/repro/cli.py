"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tour``                 — run the paper's figures end to end and
  print a one-line report per figure (a smoke test of the whole model);
* ``export {scheme,instance} [-o FILE]`` — Graphviz DOT of the
  hyper-media example (render with ``dot -Tpng``);
* ``stats FILE``           — census of a JSON-serialised instance;
* ``validate FILE``        — load a JSON instance and re-check every
  Section 2 constraint; exit code 1 on violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import Program
from repro.core.errors import GoodError
from repro.hypermedia import build_instance, build_scheme, build_version_chain
from repro.hypermedia import figures as F
from repro.io import load_instance
from repro.viz import instance_to_dot, scheme_to_dot, summarize_instance


def _cmd_tour(_args: argparse.Namespace) -> int:
    scheme = build_scheme()
    db, handles = build_instance(scheme)
    print(f"Figs. 1-3   scheme + instance: {db.node_count} nodes, {db.edge_count} edges")
    steps = [
        ("Figs. 4-7  ", [F.fig6_node_addition(scheme)]),
        ("Figs. 8-9  ", [F.fig8_node_addition(scheme)]),
        ("Figs. 10-11", [F.fig10_edge_addition(scheme)]),
        ("Figs. 12-13", [F.fig12_node_addition(scheme), F.fig13_edge_addition(scheme)]),
        ("Figs. 14-15", [F.fig14_node_deletion(scheme)]),
        ("Fig. 16    ", list(F.fig16_update(scheme))),
        ("Figs. 26-27", F.fig26_operations(scheme)[0]),
        ("Figs. 28-29", list(F.fig28_operations(scheme))),
    ]
    for label, ops in steps:
        result = Program(list(ops)).run(db)
        print(f"{label} {'; '.join(r.summary() for r in result.reports)}")
    chain_db, _ = build_version_chain(scheme)
    result = Program(list(F.fig18_operations(scheme))).run(chain_db)
    print(f"Figs. 17-19 {result.reports[-1].summary()}")
    method = F.fig20_update_method(scheme)
    result = Program([F.fig21_call(scheme)], methods=[method]).run(db)
    print(f"Figs. 20-21 {result.reports[0].summary()}")
    print("tour complete.")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    scheme = build_scheme()
    if args.what == "scheme":
        dot = scheme_to_dot(scheme, "hyper-media-scheme")
    else:
        db, _ = build_instance(scheme)
        dot = instance_to_dot(db, "hyper-media-instance")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dot + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import os

    from repro.viz import operation_to_dot, pattern_to_dot

    scheme = build_scheme()
    os.makedirs(args.directory, exist_ok=True)
    artifacts = {
        "fig01_scheme.dot": scheme_to_dot(scheme, "fig1"),
        "fig04_pattern.dot": pattern_to_dot(F.fig4_pattern(scheme).pattern, "fig4"),
        "fig06_node_addition.dot": operation_to_dot(F.fig6_node_addition(scheme)),
        "fig08_pair_aggregates.dot": operation_to_dot(F.fig8_node_addition(scheme)),
        "fig10_edge_addition.dot": operation_to_dot(F.fig10_edge_addition(scheme)),
        "fig12_set_node.dot": operation_to_dot(F.fig12_node_addition(scheme)),
        "fig13_contains.dot": operation_to_dot(F.fig13_edge_addition(scheme)),
        "fig14_node_deletion.dot": operation_to_dot(F.fig14_node_deletion(scheme)),
        "fig16_delete_modified.dot": operation_to_dot(F.fig16_update(scheme)[0]),
        "fig16_add_modified.dot": operation_to_dot(F.fig16_update(scheme)[1]),
        "fig18_abstraction.dot": operation_to_dot(F.fig18_operations(scheme)[2]),
        "fig26_negation.dot": pattern_to_dot(
            F.fig26_negated_pattern(scheme).negated, "fig26"
        ),
        "fig28_closure_step.dot": operation_to_dot(F.fig28_operations(scheme)[1].edge_addition),
    }
    db, _handles = build_instance(scheme)
    artifacts["fig02_instance.dot"] = instance_to_dot(db, "fig2-3")
    for name, dot in sorted(artifacts.items()):
        path = os.path.join(args.directory, name)
        with open(path, "w") as handle:
            handle.write(dot + "\n")
    print(f"wrote {len(artifacts)} DOT files to {args.directory}/")
    print("render with: dot -Tpng <file> -o <file>.png")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    instance = load_instance(args.file)
    print(summarize_instance(instance))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.dsl import parse_pattern
    from repro.plan import explain_pattern

    try:
        instance = load_instance(args.instance)
        if args.pattern.startswith("@"):
            with open(args.pattern[1:]) as handle:
                source = handle.read()
        else:
            source = args.pattern
        pattern, _bindings = parse_pattern(source, instance.scheme)
    except (GoodError, OSError, ValueError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    print(explain_pattern(pattern, instance))
    if args.execute:
        from repro.core import find_matchings
        from repro.core.macros import match_negated
        from repro.core.pattern import NegatedPattern

        if isinstance(pattern, NegatedPattern):
            total = len(list(match_negated(pattern, instance)))
        else:
            total = sum(1 for _ in find_matchings(pattern, instance))
        print(f"matchings: {total}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core import counters as _counters
    from repro.dsl import parse_program

    try:
        instance = load_instance(args.instance)
        with open(args.script) as handle:
            source = handle.read()
        program = parse_program(source, instance.scheme)
    except (GoodError, OSError, ValueError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    with _counters.collect() as tally:
        if args.savepoint:
            code = _run_with_savepoints(program, instance, args)
        else:
            code = _run_atomic(program, instance, args)
    if args.txn_stats:
        print(
            "txn: "
            f"{tally.txn_journal_entries} journal entries, "
            f"{tally.txn_snapshot_captures} snapshot captures, "
            f"{tally.txn_rollbacks} rollbacks, "
            f"~{tally.txn_bytes_avoided} snapshot bytes avoided",
            file=sys.stderr,
        )
    return code


def _run_atomic(program, instance, args: argparse.Namespace) -> int:
    from repro.io import save_instance

    try:
        result = program.run(instance, in_place=True, atomic=args.atomic)
    except (GoodError, OSError, ValueError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        report = getattr(error, "failure_report", None)
        if report is not None:
            print(report.summary(), file=sys.stderr)
        return 1
    for report in result.reports:
        print(report.summary())
    if args.output:
        save_instance(result.instance, args.output)
        print(f"wrote {args.output}")
    else:
        print(
            f"result: {result.instance.node_count} nodes, "
            f"{result.instance.edge_count} edges (use -o to save)"
        )
    return 0


def _run_with_savepoints(program, instance, args: argparse.Namespace) -> int:
    """``repro run --savepoint N``: checkpoint every N operations.

    On failure the instance is rolled back only to the most recent
    savepoint — the completed prefix survives — and, with ``-o``, that
    partial-but-consistent state is saved before exiting non-zero.
    """
    from repro.core.methods import ExecutionContext
    from repro.io import save_instance
    from repro.txn import Transaction

    context = ExecutionContext(program.methods)
    txn = Transaction(instance, name="cli-run")
    last = txn.savepoint("start")
    kept = 0
    reports = []
    try:
        for index, operation in enumerate(program.operations):
            reports.append(operation.apply(instance, context))
            if (index + 1) % args.savepoint == 0:
                last = txn.savepoint(f"op-{index + 1}")
                kept = index + 1
    except GoodError as error:
        txn.rollback_to(last)
        txn.commit()
        failed = len(reports)
        print(f"ERROR at operation {failed}: {error}", file=sys.stderr)
        print(
            f"rolled back to savepoint {last.name!r}; "
            f"{kept} of {len(program.operations)} operations kept",
            file=sys.stderr,
        )
        for report in reports[:kept]:
            print(report.summary())
        if args.output:
            save_instance(instance, args.output)
            print(f"wrote {args.output} (state at savepoint {last.name!r})")
        return 1
    txn.commit()
    for report in reports:
        print(report.summary())
    if args.output:
        save_instance(instance, args.output)
        print(f"wrote {args.output}")
    else:
        print(
            f"result: {instance.node_count} nodes, "
            f"{instance.edge_count} edges (use -o to save)"
        )
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    from repro.core.errors import GoodError as _GoodError
    from repro.dsl import parse_program
    from repro.interactive import Session
    from repro.io import save_instance

    try:
        instance = load_instance(args.instance)
    except (OSError, ValueError, GoodError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    session = Session(instance)
    print(
        f"GOOD shell — {instance.node_count} nodes, {instance.edge_count} edges.\n"
        "Enter DSL statements (end with a blank line). Commands: :show, :dot,\n"
        ":save FILE, :undo, :quit"
    )
    buffer: list = []
    stream = sys.stdin
    while True:
        try:
            prompt = "....> " if buffer else "good> "
            if stream.isatty():
                line = input(prompt)
            else:
                line = stream.readline()
                if not line:
                    break
                line = line.rstrip("\n")
        except EOFError:
            break
        stripped = line.strip()
        if stripped.startswith(":"):
            command, _, argument = stripped.partition(" ")
            if command in (":quit", ":q"):
                break
            if command == ":show":
                print(session.show())
            elif command == ":dot":
                print(session.to_dot())
            elif command == ":undo":
                try:
                    session.undo()
                    print("undone.")
                except _GoodError as error:
                    print(f"ERROR: {error}")
            elif command == ":save":
                if not argument:
                    print("usage: :save FILE")
                else:
                    save_instance(session.instance, argument)
                    print(f"wrote {argument}")
            else:
                print(f"unknown command {command!r}")
            continue
        if stripped:
            buffer.append(line)
            continue
        if not buffer:
            continue
        source = "\n".join(buffer)
        buffer = []
        try:
            result = session.update(source)
        except _GoodError as error:
            print(f"ERROR: {error}")
            # the failed update pushed an undo frame; roll it back
            if session.undo_depth:
                session.undo()
            continue
        for report in result.reports:
            print(report.summary())
    # flush any pending statement at EOF (piped input without a
    # trailing blank line)
    if buffer:
        try:
            result = session.update("\n".join(buffer))
            for report in result.reports:
                print(report.summary())
        except _GoodError as error:
            print(f"ERROR: {error}")
    if args.output:
        save_instance(session.instance, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import Catalog, GoodServer
    from repro.txn.guards import ResourceLimits

    if args.workers > 1 or args.replicas > 0:
        return _serve_cluster(args)
    report = None
    if args.data_dir:
        from repro.wal import recover_catalog

        try:
            catalog, report = recover_catalog(
                args.data_dir,
                fsync_policy=args.fsync,
                checkpoint_bytes=args.checkpoint_bytes,
                wal_format=args.wal_format,
            )
        except (GoodError, OSError) as error:
            print(f"ERROR: {error}", file=sys.stderr)
            return 1
        if report.databases:
            print(report.summary())
    else:
        catalog = Catalog()
    try:
        for spec in args.db or ():
            name, _, path = spec.partition("=")
            if not name or not path:
                print(f"ERROR: --db expects NAME=FILE, got {spec!r}", file=sys.stderr)
                return 1
            if name in catalog:
                # already recovered from the data dir; the durable copy
                # wins over the seed file
                continue
            catalog.load_file(name, path, backend=args.backend)
    except (GoodError, OSError, ValueError) as error:
        catalog.close_durability()
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    server = GoodServer(
        catalog,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_clients,
        max_queue=args.queue,
        lock_timeout=args.lock_timeout,
        mvcc=not args.no_mvcc,
        default_limits=ResourceLimits(
            max_matchings=args.max_matchings, max_call_depth=args.max_call_depth
        ),
    )
    if report is not None:
        for entry in report.databases:
            server.stats.charge(
                entry["name"], recoveries=1, wal_torn=entry["torn_records"]
            )

    async def _serve() -> None:
        host, port = await server.start()
        names = ", ".join(catalog.names()) or "none (clients can CREATE)"
        durable = f" — data dir: {args.data_dir} (fsync={args.fsync})" if args.data_dir else ""
        print(f"serving GOOD on {host}:{port} — databases: {names}{durable}")
        print("stop with Ctrl-C")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nserver stopped.")
    finally:
        catalog.close_durability()
    return 0


def _serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --workers N [--replicas M]``: the scale-out path.

    Boots N shard worker processes (each with its own WAL'd directory
    under ``--data-dir``), M WAL-tailing read replicas, and a
    consistent-hash router in this process speaking the ordinary
    protocol — existing clients connect to the printed address
    unchanged.  Without ``--data-dir`` the cluster serves from a
    temporary directory (fsync off) that is deleted on exit.
    """
    import os
    import time as _time

    from repro.cluster import GoodCluster
    from repro.server import GoodClient

    cluster = GoodCluster(
        workers=args.workers,
        replicas=args.replicas,
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        fsync=args.fsync if args.data_dir else None,
        checkpoint_bytes=args.checkpoint_bytes,
        pool_size=args.max_clients,
        max_waiting=args.queue,
    )
    try:
        host, port = cluster.start()
    except (GoodError, OSError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    try:
        if args.db:
            with GoodClient(host, port) as client:
                for spec in args.db:
                    name, _, path = spec.partition("=")
                    if not name or not path:
                        print(f"ERROR: --db expects NAME=FILE, got {spec!r}", file=sys.stderr)
                        return 1
                    if any(e["name"] == name for e in client.list()["databases"]):
                        continue  # recovered from the data dir; it wins
                    client.load(name, os.path.abspath(path), backend=args.backend)
        durable = (
            f" — data dir: {cluster.data_dir} (fsync={cluster.fsync})"
            if args.data_dir
            else " — ephemeral (no --data-dir)"
        )
        print(
            f"serving GOOD cluster on {host}:{port} — "
            f"{args.workers} worker(s), {args.replicas} replica(s){durable}"
        )
        print("stop with Ctrl-C")
        while True:
            _time.sleep(1)
    except KeyboardInterrupt:
        print("\ncluster stopped.")
        return 0
    finally:
        cluster.stop()


def _cmd_recover(args: argparse.Namespace) -> int:
    import json as _json

    from repro.wal import recover_catalog

    try:
        catalog, report = recover_catalog(
            args.data_dir, fsync_policy="off", validate=args.validate
        )
    except (GoodError, OSError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(report.summary())
    finally:
        catalog.close_durability()
    return 0


def _cmd_connect(args: argparse.Namespace) -> int:
    from repro.server import GoodClient, RemoteError
    from repro.server.protocol import ProtocolError

    host, _, port_text = args.address.partition(":")
    try:
        port = int(port_text) if port_text else 2590
    except ValueError:
        print(f"ERROR: bad port in {args.address!r}", file=sys.stderr)
        return 1
    try:
        client = GoodClient(host or "127.0.0.1", port).connect()
    except OSError as error:
        print(f"ERROR: cannot connect to {host}:{port}: {error}", file=sys.stderr)
        return 1
    hello = client.hello()
    names = ", ".join(entry["name"] for entry in hello["databases"]) or "none"
    print(f"connected to {host}:{port} (protocol {hello['protocol']}) — databases: {names}")
    cluster = hello.get("cluster")
    if cluster:
        print(
            f"cluster endpoint: {cluster.get('workers', 0)} worker(s), "
            f"{cluster.get('replicas', 0)} read replica(s) behind this router"
        )
    if args.use:
        try:
            client.use(args.use)
            print(f"using {args.use!r}")
        except (RemoteError, ProtocolError) as error:
            print(f"ERROR: {error}", file=sys.stderr)
            client.close()
            return 1
    print(
        "Enter DSL statements (end with a blank line) to RUN them remotely.\n"
        "Commands: :use NAME, :list, :match {PATTERN}, :explain {PATTERN},\n"
        ":browse NODE [HOPS], :limit MATCHINGS [DEPTH], :undo, :save FILE,\n"
        ":stats, :quit"
    )
    code = _connect_repl(client)
    client.close()
    return code


def _render_stats(stats) -> list:
    """Human-readable lines for the ``STATS`` payload.

    The payload is nested (per-database counters, snapshot gauges,
    latency windows); a raw JSON dump buries the numbers people
    actually look for, so render the interesting ones directly.
    """

    def window(label: str, ring) -> str:
        if not ring or not ring.get("samples"):
            return f"{label}: no samples"
        return (
            f"{label}: p50 {ring['p50_ms']}ms, p95 {ring['p95_ms']}ms, "
            f"max {ring['max_ms']}ms ({ring['samples']} samples)"
        )

    def human_bytes(count: int) -> str:
        size = float(count)
        for unit in ("B", "KiB", "MiB", "GiB"):
            if size < 1024.0 or unit == "GiB":
                return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
            size /= 1024.0
        return f"{int(count)} B"

    mode = "mvcc" if stats.get("mvcc", False) else "locked (no-mvcc)"
    conns = stats.get("connections", {})
    lines = [
        f"uptime {stats.get('uptime_s', 0)}s — isolation: {mode}",
        f"connections: {conns.get('open', 0)} open / {conns.get('total', 0)} total"
        f" — queue {stats.get('queue_depth', 0)}, running {stats.get('running', 0)}",
    ]
    if "intern_table_size" in stats:
        lines.append(
            f"label interner: {stats.get('intern_table_size', 0)} labels, "
            f"{human_bytes(stats.get('intern_table_bytes', 0))}"
        )
    cluster = stats.get("cluster")
    if cluster:
        router = cluster.get("router", {})
        lines.append(
            f"cluster: {len(cluster.get('workers', {}))} worker(s), "
            f"{len(cluster.get('replicas', {}))} replica(s) — "
            f"reads to replicas {router.get('reads_to_replicas', 0)}, "
            f"to owners {router.get('reads_to_owner', 0)}, "
            f"writes {router.get('writes', 0)}"
        )
        for name, replica in sorted(cluster.get("replicas", {}).items()):
            lag = replica.get("lag", {})
            worst = max(lag.values()) if lag else 0
            lines.append(
                f"  replica {name}: {len(replica.get('applied', {}))} database(s) "
                f"applied, worst lag {worst} LSN(s)"
            )
    total = stats.get("total", {})
    if total:
        lines.append(
            f"totals: {total.get('requests', 0)} requests "
            f"({total.get('errors', 0)} errors), {total.get('runs', 0)} runs, "
            f"{total.get('queries', 0)} queries, "
            f"{total.get('matchings_enumerated', 0)} matchings"
        )
        lines.append("  " + window("latency", total.get("latency")))
        lines.append("  " + window("lock wait", total.get("lock_wait")))
    for name, bucket in sorted(stats.get("databases", {}).items()):
        lines.append(f"database {name}:")
        lines.append(
            f"  requests {bucket.get('requests', 0)} "
            f"({bucket.get('errors', 0)} errors), runs {bucket.get('runs', 0)}, "
            f"queries {bucket.get('queries', 0)}, "
            f"rollbacks {bucket.get('rollbacks', 0)}"
        )
        lines.append(
            f"  plans: {bucket.get('plan_cache_hits', 0)} cached / "
            f"{bucket.get('plan_cache_misses', 0)} compiled, "
            f"{bucket.get('index_probes', 0)} index probes"
        )
        if bucket.get("wal_appends") or bucket.get("checkpoints"):
            lines.append(
                f"  wal: {bucket.get('wal_appends', 0)} appends, "
                f"{bucket.get('wal_fsyncs', 0)} fsyncs, "
                f"{bucket.get('wal_bytes', 0)} bytes, "
                f"{bucket.get('checkpoints', 0)} checkpoints"
            )
        if "store_bytes" in bucket:
            lines.append(f"  memory: store {human_bytes(bucket['store_bytes'])} resident")
        snapshots = bucket.get("snapshots")
        if snapshots:
            lines.append(
                f"  snapshots: {snapshots.get('snapshots_pinned', 0)} pinned, "
                f"chain length {snapshots.get('version_chain_length', 0)}, "
                f"{snapshots.get('versions_published', 0)} published, "
                f"{snapshots.get('versions_gced', 0)} gc'd, "
                f"~{snapshots.get('snapshot_bytes_shared', 0)} bytes shared"
            )
        lines.append("  " + window("latency", bucket.get("latency")))
        lines.append("  " + window("lock wait", bucket.get("lock_wait")))
    return lines


def _connect_repl(client) -> int:
    from repro.core.errors import GoodError as _GoodError

    def command(stripped: str) -> bool:
        """Handle one ``:command``; returns False on :quit."""
        name, _, argument = stripped.partition(" ")
        argument = argument.strip()
        if name in (":quit", ":q"):
            return False
        if name == ":use" and argument:
            print(f"using {client.use(argument)['using']['name']!r}")
        elif name == ":list":
            for entry in client.list()["databases"]:
                print(
                    f"  {entry['name']:<20} {entry['backend']:<10} "
                    f"{entry['nodes']} nodes, {entry['edges']} edges"
                )
        elif name == ":match" and argument:
            found = client.match(argument)
            print(f"{found['total']} matchings")
            for matching in found["matchings"][:20]:
                print(f"  {matching}")
        elif name == ":explain" and argument:
            explained = client.explain(argument)
            print(explained["text"])
            strategy = explained.get("strategy", "left-deep")
            print(
                f"(backend={explained['backend']}, strategy={strategy}, "
                f"cached={explained['cached']})"
            )
        elif name == ":browse" and argument:
            parts = argument.split()
            found = client.browse(int(parts[0]), hops=int(parts[1]) if len(parts) > 1 else 1)
            print(f"nodes: {found['nodes']}")
        elif name == ":limit" and argument:
            parts = argument.split()
            budgets = client.limit(
                max_matchings=int(parts[0]),
                max_call_depth=int(parts[1]) if len(parts) > 1 else None,
            )
            print(f"budgets: {budgets}")
        elif name == ":undo":
            print(f"undone: {client.undo()}")
        elif name == ":save" and argument:
            print(f"saved: {client.save(argument)['saved']}")
        elif name == ":stats":
            for line in _render_stats(client.stats()):
                print(line)
        else:
            print(f"unknown or incomplete command {stripped!r}")
        return True

    buffer: list = []

    def run_buffer() -> None:
        source = "\n".join(buffer)
        buffer.clear()
        result = client.run(source)
        for report in result["reports"]:
            print(report["summary"])
        print(f"database now: {result['nodes']} nodes, {result['edges']} edges")

    stream = sys.stdin
    while True:
        try:
            prompt = "....> " if buffer else "good> "
            if stream.isatty():
                line = input(prompt)
            else:
                line = stream.readline()
                if not line:
                    break
                line = line.rstrip("\n")
        except EOFError:
            break
        stripped = line.strip()
        try:
            if stripped.startswith(":"):
                if not command(stripped):
                    return 0
            elif stripped:
                buffer.append(line)
            elif buffer:
                run_buffer()
        except (_GoodError, ValueError, OSError) as error:
            buffer.clear()
            print(f"ERROR: {error}")
    if buffer:
        try:
            run_buffer()
        except (_GoodError, ValueError, OSError) as error:
            print(f"ERROR: {error}")
            return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        instance = load_instance(args.file)
        instance.validate()
    except (GoodError, OSError, ValueError) as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(f"OK: {instance.node_count} nodes, {instance.edge_count} edges")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GOOD: a Graph-Oriented Object Database Model (PODS 1990 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    tour = commands.add_parser("tour", help="run the paper's figures end to end")
    tour.set_defaults(handler=_cmd_tour)

    export = commands.add_parser("export", help="DOT export of the hyper-media example")
    export.add_argument("what", choices=["scheme", "instance"])
    export.add_argument("-o", "--output", help="write to a file instead of stdout")
    export.set_defaults(handler=_cmd_export)

    figures = commands.add_parser("figures", help="export the paper's figures as DOT")
    figures.add_argument("-d", "--directory", default="figures-dot")
    figures.set_defaults(handler=_cmd_figures)

    stats = commands.add_parser("stats", help="census of a JSON instance")
    stats.add_argument("file")
    stats.set_defaults(handler=_cmd_stats)

    explain = commands.add_parser(
        "explain", help="show the match plan for a DSL pattern (no execution)"
    )
    explain.add_argument("instance", help="JSON instance file")
    explain.add_argument(
        "pattern", help="DSL pattern text, or @FILE to read the pattern from FILE"
    )
    explain.add_argument(
        "--execute",
        action="store_true",
        help="also run the plan and print the matching count",
    )
    explain.set_defaults(handler=_cmd_explain)

    run = commands.add_parser(
        "run", help="run a DSL program (see repro.dsl) against a JSON instance"
    )
    run.add_argument("instance", help="JSON instance file")
    run.add_argument("script", help="DSL program file")
    run.add_argument("-o", "--output", help="write the transformed instance here")
    run.add_argument(
        "--no-atomic",
        dest="atomic",
        action="store_false",
        help="on failure, keep partial state instead of rolling back",
    )
    run.add_argument(
        "--savepoint",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N operations; on failure roll back only "
        "to the last savepoint and keep the completed prefix",
    )
    run.add_argument(
        "--txn-stats",
        action="store_true",
        help="print transaction-layer counters (journal entries, "
        "snapshot captures, rollbacks, copy bytes avoided) to stderr",
    )
    run.set_defaults(handler=_cmd_run, atomic=True)

    shell = commands.add_parser(
        "shell", help="interactive DSL shell over a JSON instance"
    )
    shell.add_argument("instance", help="JSON instance file")
    shell.add_argument("-o", "--output", help="save the final state here on exit")
    shell.set_defaults(handler=_cmd_shell)

    validate = commands.add_parser("validate", help="validate a JSON instance")
    validate.add_argument("file")
    validate.set_defaults(handler=_cmd_validate)

    serve = commands.add_parser(
        "serve", help="serve a catalog of GOOD databases over TCP (see repro.server)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("-p", "--port", type=int, default=2590)
    serve.add_argument(
        "--db",
        action="append",
        metavar="NAME=FILE",
        help="serve a JSON instance file under NAME (repeatable)",
    )
    serve.add_argument(
        "--backend",
        choices=["native", "relational", "tarski"],
        default="native",
        help="backend for the databases loaded via --db",
    )
    serve.add_argument(
        "--max-clients", type=int, default=8, help="concurrent requests executing"
    )
    serve.add_argument(
        "--queue", type=int, default=64, help="admission queue bound (then OVERLOADED)"
    )
    serve.add_argument(
        "--lock-timeout", type=float, default=30.0, help="seconds to wait for a database lock"
    )
    serve.add_argument(
        "--no-mvcc",
        action="store_true",
        help="serve with the legacy reader-writer locks instead of MVCC "
        "snapshots (queries then block behind writers)",
    )
    serve.add_argument(
        "--max-matchings", type=int, default=None, help="default per-session matching budget"
    )
    serve.add_argument(
        "--max-call-depth", type=int, default=None, help="default per-session recursion budget"
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="serve durably from DIR: recover its databases on boot, "
        "write-ahead log every commit, checkpoint periodically",
    )
    serve.add_argument(
        "--fsync",
        default="always",
        metavar="POLICY",
        help="WAL fsync policy: always (default), group:<ms> (group "
        "commit, coalescing fsyncs), or off (OS decides)",
    )
    serve.add_argument(
        "--checkpoint-bytes",
        type=int,
        default=4 * 1024 * 1024,
        help="auto-checkpoint a database once its WAL segment exceeds "
        "this many bytes (0 disables; default 4MiB)",
    )
    serve.add_argument(
        "--wal-format",
        default="text",
        choices=("text", "binary"),
        help="WAL segment format for fresh segments: text (NDJSON, "
        "default, human-readable) or binary (length-prefixed + CRC32, "
        "compact); recovery reads both transparently",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="scale out: shard the catalog over N worker processes "
        "behind a consistent-hash router (see repro.cluster)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="M",
        help="with --workers: add M WAL-fed read replica processes; "
        "MATCH/QUERY/BROWSE/EXPORT fan out to caught-up replicas",
    )
    serve.set_defaults(handler=_cmd_serve)

    recover = commands.add_parser(
        "recover",
        help="recover a serve --data-dir offline and report what was replayed",
    )
    recover.add_argument("data_dir", metavar="DIR")
    recover.add_argument(
        "--validate",
        action="store_true",
        help="re-check every Section 2 constraint on the recovered instances",
    )
    recover.add_argument("--json", action="store_true", help="machine-readable report")
    recover.set_defaults(handler=_cmd_recover)

    connect = commands.add_parser(
        "connect", help="interactive client for a served GOOD catalog"
    )
    connect.add_argument("address", help="HOST[:PORT] of a repro serve instance")
    connect.add_argument("-u", "--use", help="select this database on connect")
    connect.set_defaults(handler=_cmd_connect)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
