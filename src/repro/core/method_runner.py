"""Method-call orchestration over storage engines (Section 5).

"In this way, GOOD programs (**including methods**) are interpreted by
C programs with embedded SQL statements" — the host program drives the
method mechanism while the engine executes the basic operations.  This
module is that host program, generic over any engine exposing

* ``scheme``            — the engine's evolving scheme,
* ``apply(operation)``  — execute one basic operation,
* ``restrict_to(scheme)`` — drop non-conformant structure (footnote 4),

which both :class:`~repro.storage.engine.RelationalEngine` and
:class:`~repro.tarski.engine.TarskiEngine` provide.  The orchestration
is byte-for-byte the Section 3.6 semantics of
:class:`~repro.core.methods.MethodCall`: context node addition, body
with the context spliced in, context deletion, interface restriction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.methods import (
    ExecutionContext,
    MethodCall,
    MethodRegistry,
    transform_body_op,
)
from repro.core.operations import (
    NodeAddition,
    NodeDeletion,
    Operation,
    OperationReport,
    fresh_tag,
)
from repro.core.pattern import Pattern
from repro.txn import faults as _faults
from repro.txn.transaction import atomic_run

#: Reserved receiver-edge prefix (mirrors repro.core.methods).
RECEIVER_EDGE = "@self"


class EngineMethodRunner:
    """Runs full GOOD programs — method calls included — on an engine."""

    def __init__(
        self,
        engine,
        methods: Optional[MethodRegistry] = None,
        max_depth: int = 200,
    ) -> None:
        self.engine = engine
        self.context = ExecutionContext(methods, max_depth=max_depth)

    def run(
        self,
        operations: Sequence[Union[Operation, MethodCall]],
        atomic: bool = True,
    ) -> List[OperationReport]:
        """Apply a sequence of operations/calls in order.

        With ``atomic=True`` (the default) the program is
        all-or-nothing: any failure rolls the engine back to the exact
        pre-run state (scheme included) before re-raising, with a
        :class:`~repro.txn.transaction.FailureReport` attached to the
        exception.  ``atomic=False`` preserves the historical
        partial-mutation-on-error behavior (the method-call interface
        restriction still cleans ``@call:`` scaffolding out of the
        scheme even then).
        """
        if atomic:
            return atomic_run(self.engine, operations, self.apply)
        reports: List[OperationReport] = []
        for index, operation in enumerate(operations):
            _faults.before_operation(operation, index)
            reports.append(self.apply(operation))
            _faults.after_operation(operation, index)
        return reports

    def apply(self, operation: Union[Operation, MethodCall]) -> OperationReport:
        """Apply one operation, orchestrating method calls here."""
        if isinstance(operation, MethodCall):
            return self._call(operation)
        return self.engine.apply(operation)

    # ------------------------------------------------------------------
    # the Section 3.6 call semantics, engine-side
    # ------------------------------------------------------------------
    def _call(self, call: MethodCall) -> OperationReport:
        method = self.context.methods.get(call.method_name)
        call = call.dispatch_via_isa(method, self.engine.scheme)
        call._check_against(method)
        self.context.enter(call.method_name)
        try:
            return self._execute(call, method)
        finally:
            self.context.leave()

    def _execute(self, call: MethodCall, method) -> OperationReport:
        engine = self.engine
        original_scheme = engine.scheme.copy()
        tag = fresh_tag()
        context_label = f"@call:{call.method_name}#{tag}"
        receiver_edge = f"{RECEIVER_EDGE}#{tag}"

        binding_edges = [(receiver_edge, call.receiver)]
        for param_label in sorted(call.arguments):
            binding_edges.append((param_label, call.arguments[param_label]))
        context_na = NodeAddition(
            call.source_pattern, context_label, binding_edges, _internal=True
        )
        na_report = engine.apply(context_na)
        sub_reports: List[OperationReport] = [na_report]

        try:
            if na_report.nodes_added:
                for body_op in method.body:
                    transformed = transform_body_op(
                        body_op, context_label, receiver_edge, engine.scheme
                    )
                    sub_reports.append(self.apply(transformed))
                cleanup_pattern = Pattern(engine.scheme)
                context_node = cleanup_pattern.add_object(context_label)
                sub_reports.append(engine.apply(NodeDeletion(cleanup_pattern, context_node)))
        finally:
            # a raising body op must not leak @call:/@self scaffolding
            # into the engine scheme — the interface restriction always
            # runs, even on the failure path
            engine.restrict_to(original_scheme.union(method.interface))
        return OperationReport(
            operation=call.describe(),
            matching_count=na_report.matching_count,
            sub_reports=tuple(sub_reports),
        )
