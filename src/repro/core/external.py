"""External functions on printable objects (Section 4.1 extension).

The paper notes that practical queries need conditions and computations
on printable objects beyond equality, "possibly using external
functions".  Predicates are covered by
:meth:`~repro.core.pattern.Pattern.constrain`; this module adds the
*computing* counterpart: an operation that, for every matching of a
source pattern, evaluates a Python function over the print values of
selected pattern nodes and attaches the resulting constant to a matched
object via a functional edge.

This is exactly what the body of the paper's method ``D`` (Fig. 23,
"compute the number of days elapsed between two dates") needs — the
paper deliberately hides that body behind the method interface, and our
reproduction implements it with a :class:`ComputedEdgeAddition` over
:func:`repro.core.labels.date_ordinal`.

Like node addition, the operation never *creates* printable values out
of thin air: it materialises the computed constant in the system-given
printable class (see ``Operation.materialize_constants`` for the
rationale) and links the matched source object to it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Union

from repro.core.errors import EdgeConflictError, OperationError
from repro.core.instance import Instance
from repro.core.operations import Operation, OperationReport
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT, Edge


class ComputedEdgeAddition(Operation):
    """Attach ``f(print values...)`` to a matched node, per matching.

    For every matching ``i`` of the source pattern, the print values of
    ``input_nodes``' images are fed to ``function``; the result becomes
    (or finds) the printable node ``(target_label, value)`` and the
    functional edge ``(i(source_node), edge_label, that node)`` is
    added.  Conflicting functional results raise
    :class:`EdgeConflictError`, mirroring Section 3.2.
    """

    kind = "XA"

    def __init__(
        self,
        source_pattern: Union[Pattern, NegatedPattern],
        source_node: int,
        edge_label: str,
        target_label: str,
        input_nodes: Sequence[int],
        function: Callable[..., Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(source_pattern)
        self.source_node = source_node
        self.edge_label = edge_label
        self.target_label = target_label
        self.input_nodes = tuple(input_nodes)
        self.function = function
        self.name = name or getattr(function, "__name__", "external")
        self._require_pattern_node(source_node)
        for node_id in self.input_nodes:
            self._require_pattern_node(node_id)

    def replace_pattern(self, pattern) -> "ComputedEdgeAddition":
        clone = ComputedEdgeAddition.__new__(ComputedEdgeAddition)
        Operation.__init__(clone, pattern)
        clone.source_node = self.source_node
        clone.edge_label = self.edge_label
        clone.target_label = self.target_label
        clone.input_nodes = self.input_nodes
        clone.function = self.function
        clone.name = self.name
        return clone

    def extend_scheme(self, scheme: Scheme) -> None:
        """Declare the functional edge and its property triple."""
        if not scheme.is_printable_label(self.target_label):
            raise OperationError(
                f"computed edges must target a printable class, not {self.target_label!r}"
            )
        source_label = self.source_pattern.label_of(self.source_node)
        if not scheme.is_object_label(source_label):
            raise OperationError(f"computed edges must leave an object class, not {source_label!r}")
        with scheme.allowing_reserved():
            if self.edge_label in scheme.multivalued_edge_labels:
                raise OperationError(f"computed edge label {self.edge_label!r} is multivalued")
            if self.edge_label not in scheme.functional_edge_labels:
                scheme.add_functional_edge_label(self.edge_label)
            scheme.add_property(source_label, self.edge_label, self.target_label)

    def apply(self, instance: Instance, context: Optional[object] = None) -> OperationReport:
        self.extend_scheme(instance.scheme)
        self.materialize_constants(instance)
        matchings = self.matchings(instance)
        planned = {}
        for matching in matchings:
            inputs = []
            for node_id in self.input_nodes:
                value = instance.print_of(matching[node_id])
                if value is NO_PRINT:
                    raise OperationError(
                        f"external function {self.name!r}: matched node for pattern node "
                        f"{node_id} carries no print value"
                    )
                inputs.append(value)
            result = self.function(*inputs)
            source = matching[self.source_node]
            if source in planned and planned[source] != result:
                raise EdgeConflictError(
                    f"external function {self.name!r} computed two different values "
                    f"({planned[source]!r} vs {result!r}) for the functional edge "
                    f"{self.edge_label!r} of node {source}"
                )
            planned[source] = result
        edges_added: List[Edge] = []
        for source in sorted(planned):
            target = instance.printable(self.target_label, planned[source])
            existing = instance.out_neighbours(source, self.edge_label)
            if existing and target not in existing:
                raise EdgeConflictError(
                    f"node {source} already has a {self.edge_label!r} edge; external "
                    f"function {self.name!r} would add a second one"
                )
            if instance.add_edge(source, self.edge_label, target):
                edges_added.append(Edge(source, self.edge_label, target))
        return OperationReport(
            operation=self.describe(),
            matching_count=len(matchings),
            edges_added=tuple(edges_added),
        )

    def describe(self) -> str:
        """Short textual form, e.g. ``XA[diff := days_between]``."""
        return f"XA[{self.edge_label} := {self.name}]"
