"""Pattern matching (Section 3).

A *matching* of a pattern ``J = (M, F)`` in an instance ``I = (N, E)``
is a **total mapping** ``i : M → N`` such that

* labels are preserved: ``λ(i(m)) = λ(m)``;
* defined print values are preserved: ``print(i(m)) = print(m)``;
* edges are preserved: ``(m, α, n) ∈ F ⟹ (i(m), α, i(n)) ∈ E``.

Matchings are graph homomorphisms — they need *not* be injective (two
pattern nodes may map to the same instance node), and the instance may
contain arbitrarily more structure around the image.

Four matchers are provided:

* :func:`find_matchings` — the production matcher: dispatches to the
  cost-based planner (:mod:`repro.plan`), which compiles the pattern
  into a cached, selectivity-ordered index-join plan and executes it;
* :func:`find_matchings_backtracking` — the pre-planner backtracking
  search with a most-constrained-first variable order and
  adjacency-driven candidate pruning, retained as an oracle (the
  planner is property-tested equivalent to it) and as the baseline the
  planner benchmarks measure against;
* :func:`find_matchings_delta` — delta-constrained matching: only the
  matchings that touch a recorded :class:`~repro.graph.store.Delta`
  are enumerated, by seeding planned searches from each delta item
  (the engine behind semi-naive fixpoint evaluation);
* :func:`find_matchings_naive` — the textbook enumeration in a fixed
  node order with post-hoc edge checks, kept as a correctness oracle
  and as the baseline of benchmark P2.

All enumerate matchings in a deterministic order.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.instance import Instance
from repro.core.pattern import NegatedPattern, Pattern
from repro.graph.store import NO_PRINT, Delta
from repro.plan.cache import plan_for
from repro.plan.executor import planned_matchings as _planned_matchings
from repro.plan.executor import seeded_runner

#: A matching: pattern node id -> instance node id.
Matching = Dict[int, int]


def _base_candidates(pattern: Pattern, instance: Instance, pattern_node: int) -> FrozenSet[int]:
    """Candidates for one pattern node from labels/prints/predicates only."""
    record = pattern.node_record(pattern_node)
    if record.has_print:
        found = instance.find_printable(record.label, record.print_value)
        return frozenset() if found is None else frozenset((found,))
    candidates = instance.nodes_with_label(record.label)
    predicate = pattern.predicate_of(pattern_node)
    if predicate is not None:
        candidates = frozenset(
            node_id
            for node_id in candidates
            if instance.print_of(node_id) is not NO_PRINT and predicate(instance.print_of(node_id))
        )
    return candidates


def _pattern_edges(pattern: Pattern) -> List[Tuple[int, str, int]]:
    return [edge.as_tuple() for edge in pattern.edges()]


def _search_order(
    pattern: Pattern,
    instance: Instance,
    fixed: Sequence[int],
    base_candidates: Dict[int, FrozenSet[int]],
) -> List[int]:
    """Most-constrained-first order, preferring nodes touching placed ones.

    Nodes already placed (``fixed``) come first implicitly; the rest are
    picked greedily by (not-adjacent-to-placed, candidate-count, id).
    ``base_candidates`` is the shared per-node candidate table — computed
    once per :func:`find_matchings` call and reused by the backtracking
    search, so the label/print/predicate scans run once per pattern node.
    """
    remaining = [n for n in pattern.nodes() if n not in fixed]
    placed = set(fixed)
    adjacency: Dict[int, set] = {n: set() for n in pattern.nodes()}
    for source, _, target in _pattern_edges(pattern):
        adjacency[source].add(target)
        adjacency[target].add(source)
    counts = {n: len(base_candidates[n]) for n in remaining}

    # selection key is (not-adjacent-to-placed, count, id); only the
    # adjacency bit changes as nodes are placed, so one upfront sort of
    # the static (count, id) part plus a heap of nodes that *became*
    # adjacent replaces the per-iteration resort — O((V+E) log V)
    # instead of O(V^2 log V), with an enumeration order identical to
    # the old repeated-sort selection.
    static = sorted(remaining, key=lambda n: (counts[n], n))
    adjacent_heap: List[Tuple[int, int]] = []
    in_heap: set = set()

    def absorb(node: int) -> None:
        placed.add(node)
        for neighbour in adjacency[node]:
            if neighbour in counts and neighbour not in placed and neighbour not in in_heap:
                heapq.heappush(adjacent_heap, (counts[neighbour], neighbour))
                in_heap.add(neighbour)

    for node in fixed:
        absorb(node)
    order: List[int] = []
    pointer = 0
    for _ in range(len(remaining)):
        while adjacent_heap and adjacent_heap[0][1] in placed:
            heapq.heappop(adjacent_heap)
        if adjacent_heap:
            _, best = heapq.heappop(adjacent_heap)
        else:
            while static[pointer] in placed:
                pointer += 1
            best = static[pointer]
            pointer += 1
        order.append(best)
        absorb(best)
    return order


def find_matchings(
    pattern: Pattern,
    instance: Instance,
    fixed: Optional[Matching] = None,
) -> Iterator[Matching]:
    """Enumerate all matchings of ``pattern`` in ``instance``.

    ``fixed`` pre-binds some pattern nodes to instance nodes; only
    extensions of ``fixed`` are produced (this powers the negation
    macro's "can this positive matching be enlarged?" test).  The empty
    pattern yields exactly one (empty) matching.

    This dispatches to the planner-backed executor (:mod:`repro.plan`):
    the pattern is compiled into a selectivity-ordered index-join plan
    (cached per pattern signature and statistics epoch) and executed
    against the store's secondary indexes.  The pre-planner matcher is
    retained as :func:`find_matchings_backtracking`; both enumerate the
    same matching *set*, each in its own deterministic order.
    """
    return _planned_matchings(pattern, instance, fixed)


def find_matchings_backtracking(
    pattern: Pattern,
    instance: Instance,
    fixed: Optional[Matching] = None,
) -> Iterator[Matching]:
    """The pre-planner production matcher, kept as a reference oracle.

    Backtracking search over per-node base-candidate sets with a
    most-constrained-first variable order and adjacency-driven
    pruning.  Unlike the planner path it recomputes every pattern
    node's base candidates per call and takes no advantage of the
    edge-label index — which is exactly what the planner benchmarks
    (``benchmarks/test_bench_planner.py``) quantify.
    """
    fixed = dict(fixed or {})
    for pattern_node, instance_node in fixed.items():
        if not _binding_ok(pattern, instance, pattern_node, instance_node):
            return
    edges = _pattern_edges(pattern)
    for source, label, target in edges:
        if source in fixed and target in fixed:
            if not instance.has_edge(fixed[source], label, fixed[target]):
                return

    base = {
        node: _base_candidates(pattern, instance, node)
        for node in pattern.nodes()
        if node not in fixed
    }
    order = _search_order(pattern, instance, list(fixed), base)
    out_constraints: Dict[int, List[Tuple[str, int]]] = {n: [] for n in pattern.nodes()}
    in_constraints: Dict[int, List[Tuple[str, int]]] = {n: [] for n in pattern.nodes()}
    for source, label, target in edges:
        # when `source` is placed, target candidates ⊆ out_neighbours
        out_constraints[target].append((label, source))
        in_constraints[source].append((label, target))

    assignment: Matching = dict(fixed)
    records = {node: pattern.node_record(node) for node in pattern.nodes()}

    def node_ok(node: int, candidate: int) -> bool:
        record = records[node]
        c_record = instance.node_record(candidate)
        if c_record.label != record.label:
            return False
        if record.has_print and (
            not c_record.has_print or c_record.print_value != record.print_value
        ):
            return False
        predicate = pattern.predicate_of(node)
        if predicate is not None:
            if not c_record.has_print or not predicate(c_record.print_value):
                return False
        return True

    def candidates_for(node: int) -> List[int]:
        # adjacency constraints from already-placed neighbours give
        # small candidate sets; intersect those first and only fall
        # back to the (large) by-label index when none applies
        adjacency: List[FrozenSet[int]] = []
        for label, source in out_constraints[node]:
            if source != node and source in assignment:
                adjacency.append(instance.out_neighbours(assignment[source], label))
        for label, target in in_constraints[node]:
            if target != node and target in assignment:
                adjacency.append(instance.in_neighbours(assignment[target], label))
        if adjacency:
            adjacency.sort(key=len)
            result = set(adjacency[0])
            for narrower in adjacency[1:]:
                result &= narrower
                if not result:
                    return []
            result = {c for c in result if node_ok(node, c)}
        else:
            result = set(base[node])
        for label, source in out_constraints[node]:
            if source == node:
                # self-loop pattern edge: the candidate must carry the
                # edge to itself (it is not yet in `assignment` while
                # its own candidates are being computed)
                result = {c for c in result if instance.has_edge(c, label, c)}
        return sorted(result)

    def backtrack(index: int) -> Iterator[Matching]:
        if index == len(order):
            yield dict(assignment)
            return
        node = order[index]
        for candidate in candidates_for(node):
            assignment[node] = candidate
            yield from backtrack(index + 1)
            del assignment[node]

    yield from backtrack(0)


def find_matchings_delta(
    pattern: Pattern,
    instance: Instance,
    delta: Delta,
) -> Iterator[Matching]:
    """Matchings of ``pattern`` that touch ``delta`` — the semi-naive core.

    Enumerates exactly the matchings of ``pattern`` in ``instance``
    where at least one pattern edge maps onto a delta edge or at least
    one pattern node maps onto a delta node.  Matchings entirely inside
    the pre-delta instance are *not* produced — they were already
    enumerated when their own delta was new, which is what turns a
    fixpoint's O(rounds × full-match) cost into O(total-derived).

    The search is seeded: for every (pattern edge, delta edge) pair
    with equal labels the edge's endpoints are pre-bound, and for every
    (pattern node, delta node) pair with a compatible label the node is
    pre-bound; each seed runs the plan compiled for that pre-binding.
    A matching reachable from several seeds is yielded once (first seed
    wins), and the seed order is deterministic (pattern items in
    pattern order, delta items sorted), so the overall enumeration
    order is deterministic.

    The per-seed path is deliberately lean — a fixpoint executes it
    once per delta item per round, and its constant factor is what
    decides whether semi-naive beats full rematching on shallow
    workloads.  Delta items come from the delta's memoized sorted
    views, bucketed by label once (edges liveness-checked with an O(1)
    store probe); each pattern edge plans **once** through the plan
    cache and gets a :func:`repro.plan.executor.seeded_runner` — a
    compiled nested-loop generator instantiated once, invoked per seed
    — instead of re-hashing the pattern signature and rebuilding an
    interpreter frame stack for every delta edge.  Seed-binding
    validation is memoized per (pattern node, instance node), since
    delta edges share endpoints heavily.

    Callers are responsible for guard/counter charging, exactly like
    :func:`find_matchings`.
    """
    if delta.is_empty:
        return
    pattern_nodes = sorted(pattern.nodes())
    if not pattern_nodes:
        # the empty pattern's single empty matching maps nothing into
        # the delta, so semi-naive correctly yields nothing
        return
    store = instance.store
    seen: Set[Tuple[int, ...]] = set()

    delta_edges_by_label: Dict[str, List[Tuple[int, int]]] = {}
    for source, label, target in delta.sorted_edges():
        if store.has_edge(source, label, target):
            delta_edges_by_label.setdefault(label, []).append((source, target))
    delta_nodes_by_label: Dict[str, List[int]] = {}
    for node in delta.sorted_nodes():
        if instance.has_node(node):
            delta_nodes_by_label.setdefault(instance.label_of(node), []).append(node)

    ok_cache: Dict[Tuple[int, int], bool] = {}

    def binding_ok(pattern_node: int, instance_node: int) -> bool:
        key = (pattern_node, instance_node)
        ok = ok_cache.get(key)
        if ok is None:
            ok = ok_cache[key] = _binding_ok(pattern, instance, pattern_node, instance_node)
        return ok

    def runner_for(fixed_keys: Tuple[int, ...]):
        plan, _ = plan_for(pattern, instance, fixed_keys)
        return seeded_runner(plan, pattern, instance)

    def emit(found: Iterator[Matching]) -> Iterator[Matching]:
        for matching in found:
            key = tuple(matching[node] for node in pattern_nodes)
            if key not in seen:
                seen.add(key)
                yield matching

    for p_source, p_label, p_target in _pattern_edges(pattern):
        pairs = delta_edges_by_label.get(p_label)
        if not pairs:
            continue
        if p_source == p_target:
            run = runner_for((p_source,))
            for source, target in pairs:
                if source == target and binding_ok(p_source, source):
                    yield from emit(run({p_source: source}))
        else:
            run = runner_for((p_source, p_target))
            for source, target in pairs:
                if binding_ok(p_source, source) and binding_ok(p_target, target):
                    yield from emit(run({p_source: source, p_target: target}))
    for p_node in pattern_nodes:
        record = pattern.node_record(p_node)
        nodes = delta_nodes_by_label.get(record.label)
        if not nodes:
            continue
        run = runner_for((p_node,))
        for node in nodes:
            if binding_ok(p_node, node):
                yield from emit(run({p_node: node}))


def find_matchings_naive(pattern: Pattern, instance: Instance) -> Iterator[Matching]:
    """Reference matcher: fixed node order, per-node label/print filter,
    full edge verification at the leaves.  Exponentially slower on
    large patterns; used as a differential-testing oracle."""
    nodes = list(pattern.nodes())
    edges = _pattern_edges(pattern)

    def extend(index: int, assignment: Matching) -> Iterator[Matching]:
        if index == len(nodes):
            for source, label, target in edges:
                if not instance.has_edge(assignment[source], label, assignment[target]):
                    return
            yield dict(assignment)
            return
        node = nodes[index]
        for candidate in sorted(_base_candidates(pattern, instance, node)):
            assignment[node] = candidate
            yield from extend(index + 1, assignment)
            del assignment[node]

    yield from extend(0, {})


def find_negated(negated: NegatedPattern, instance: Instance) -> Iterator[Matching]:
    """Matchings of a crossed pattern (Fig. 26 semantics).

    Yields the matchings of the positive part that cannot be enlarged
    to a matching of any crossed extension.  Pure — no constants are
    materialised here; callers that need the system-given-printables
    behaviour go through an operation or ``macros.match_negated``.
    """
    shared = list(negated.positive.nodes())
    for matching in find_matchings(negated.positive, instance):
        fixed = {node: matching[node] for node in shared}
        blocked = any(
            match_exists(extension, instance, fixed=fixed) for extension in negated.extensions
        )
        if not blocked:
            yield matching


def find_any(pattern, instance: Instance) -> Iterator[Matching]:
    """Dispatch on plain vs crossed patterns."""
    if isinstance(pattern, NegatedPattern):
        return find_negated(pattern, instance)
    return find_matchings(pattern, instance)


def match_exists(pattern: Pattern, instance: Instance, fixed: Optional[Matching] = None) -> bool:
    """Whether at least one matching (extending ``fixed``) exists."""
    for _ in find_matchings(pattern, instance, fixed):
        return True
    return False


def count_matchings(pattern: Pattern, instance: Instance) -> int:
    """Number of matchings of ``pattern`` in ``instance``."""
    return sum(1 for _ in find_matchings(pattern, instance))


def _binding_ok(pattern: Pattern, instance: Instance, pattern_node: int, instance_node: int) -> bool:
    if not instance.has_node(instance_node):
        return False
    p_record = pattern.node_record(pattern_node)
    i_record = instance.node_record(instance_node)
    if p_record.label != i_record.label:
        return False
    if p_record.has_print and (not i_record.has_print or p_record.print_value != i_record.print_value):
        return False
    predicate = pattern.predicate_of(pattern_node)
    if predicate is not None:
        if not i_record.has_print or not predicate(i_record.print_value):
            return False
    return True
