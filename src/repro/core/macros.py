"""Macros (Section 4.1): negation, printable predicates, recursion.

The paper shows that several convenient constructs do not increase the
expressive power of the basic language; they are *macros*:

* **Negation** (Figs. 26–27): patterns with crossed nodes/edges match
  where the crossed part is *absent*.  :class:`NegatedPattern` gives
  the direct semantics; :func:`compile_negation` produces the paper's
  simulation — tag every matching of the non-crossed part with an
  intermediate node, delete the tags whose matching can be enlarged to
  the full pattern, and leave the survivors for follow-up operations.
  The test suite proves the two agree.

* **Printable predicates**: provided by
  :meth:`repro.core.pattern.Pattern.constrain`; this module adds the
  common condition-box constructors (ranges, membership, date ranges).

* **Recursive (starred) additions** (Fig. 28): repeat an addition
  until no new edges/nodes appear.  Recursive *edge* addition always
  terminates (the edge universe is finite once the instance's nodes
  are fixed); recursive *node* addition "can result in an infinite
  sequence" — exactly as the paper warns — so it takes a round bound
  and raises when exceeded.  Both starred macros evaluate
  **semi-naively**: repetitions after the first match only against the
  previous repetition's delta (see :mod:`repro.rules.engine` for the
  general discipline).  Fig. 29's method-based simulation of the
  starred macro lives in :mod:`repro.hypermedia.figures` and is tested
  equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core import counters as _counters
from repro.core.errors import OperationError
from repro.core.instance import Instance
from repro.core.labels import date_ordinal
from repro.core.matching import Matching, find_matchings_delta, find_negated
from repro.core.operations import (
    EdgeAddition,
    NodeAddition,
    NodeDeletion,
    Operation,
    OperationReport,
)
from repro.core.pattern import NegatedPattern, Pattern, PrintPredicate
from repro.txn import guards as _guards

# ----------------------------------------------------------------------
# negation
# ----------------------------------------------------------------------


def match_negated(negated: NegatedPattern, instance: Instance) -> Iterator[Matching]:
    """Direct semantics: positive matchings with no crossed enlargement.

    Constants mentioned by the positive pattern or the extensions are
    materialised first (printable classes are system-given; see
    ``Operation.materialize_constants``) so the direct evaluator agrees
    with the compiled Fig. 27 simulation.
    """
    for pattern in [negated.positive] + negated.extensions:
        for node_id in pattern.nodes():
            record = pattern.node_record(node_id)
            if record.has_print and instance.scheme.is_printable_label(record.label):
                instance.printable(record.label, record.print_value)
    return find_negated(negated, instance)


@dataclass
class NegationCompilation:
    """The Fig. 27 simulation of a negated pattern.

    Run ``tag_op`` then every op in ``prune_ops``; afterwards each
    surviving ``tag_label`` node encodes exactly one matching of the
    negated pattern, reachable through the functional edges named in
    ``edge_for_node`` (tag node → positive pattern node's image).
    ``survivor_pattern()`` builds a pattern for the surviving tags.
    """

    tag_label: str
    tag_op: NodeAddition
    prune_ops: Tuple[NodeDeletion, ...]
    edge_for_node: Dict[int, str]

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All operations, in execution order."""
        return (self.tag_op,) + self.prune_ops

    def survivor_pattern(self, base: Pattern) -> Tuple[Pattern, int, Dict[int, int]]:
        """A copy of ``base`` (the positive pattern) with the tag node.

        Returns (pattern, tag node id, map positive node -> same id),
        ready to be used as the source pattern of a follow-up
        operation over the tagged matchings.
        """
        pattern = base.copy()
        tag_node = pattern.add_node(self.tag_label)
        for node_id, edge_label in self.edge_for_node.items():
            pattern.add_edge(tag_node, edge_label, node_id)
        return pattern, tag_node, {node: node for node in base.nodes()}


def compile_negation(negated: NegatedPattern, tag_label: str) -> NegationCompilation:
    """Compile a negated pattern to basic operations (Fig. 27).

    Step 1 tags every matching of the positive part with a fresh
    ``tag_label`` node, attached by distinct functional edges to every
    positive node (so distinct matchings get distinct tags).  Step 2
    deletes, for every crossed extension, the tags whose matching
    enlarges to the extension.  The caller's scheme must not already
    use ``tag_label``.
    """
    positive = negated.positive
    edge_for_node = {
        node_id: f"{tag_label}:{index}" for index, node_id in enumerate(sorted(positive.nodes()))
    }
    # the tag class and its edges are introduced at run time by the tag
    # node addition; declare them on the pattern's scheme up front so
    # the prune patterns (which mention the tag node) can be built
    scheme = positive.scheme
    if not scheme.is_object_label(tag_label):
        scheme.add_object_label(tag_label)
    for node_id, edge_label in edge_for_node.items():
        if edge_label not in scheme.functional_edge_labels:
            scheme.add_functional_edge_label(edge_label)
        scheme.add_property(tag_label, edge_label, positive.label_of(node_id))
    tag_op = NodeAddition(
        positive,
        tag_label,
        [(edge_for_node[node_id], node_id) for node_id in sorted(positive.nodes())],
    )
    prune_ops: List[NodeDeletion] = []
    for extension in negated.extensions:
        prune_pattern = extension.copy()
        tag_node = prune_pattern.add_node(tag_label)
        for node_id, edge_label in edge_for_node.items():
            prune_pattern.add_edge(tag_node, edge_label, node_id)
        prune_ops.append(NodeDeletion(prune_pattern, tag_node))
    return NegationCompilation(tag_label, tag_op, tuple(prune_ops), edge_for_node)


# ----------------------------------------------------------------------
# printable predicates (QBE-style condition boxes)
# ----------------------------------------------------------------------


def value_between(low: Any, high: Any) -> PrintPredicate:
    """Inclusive range condition on a print value."""
    return PrintPredicate(f"between {low!r} and {high!r}", lambda value: low <= value <= high)


def value_in(values: Sequence[Any]) -> PrintPredicate:
    """Membership condition on a print value."""
    allowed = frozenset(values)
    return PrintPredicate(f"in {sorted(map(repr, allowed))}", lambda value: value in allowed)


def value_not_equal(other: Any) -> PrintPredicate:
    """Inequality condition on a print value."""
    return PrintPredicate(f"!= {other!r}", lambda value: value != other)


def date_between(low: str, high: str) -> PrintPredicate:
    """Inclusive Date range, e.g. the Section 4.1 "created between
    January 1, 1990 and January 31, 1990" request."""
    low_ord = date_ordinal(low)
    high_ord = date_ordinal(high)
    return PrintPredicate(
        f"date between {low!r} and {high!r}",
        lambda value: low_ord <= date_ordinal(value) <= high_ord,
    )


# ----------------------------------------------------------------------
# recursive (starred) additions — Fig. 28
# ----------------------------------------------------------------------


def _delta_round(
    operation: Operation,
    instance: Instance,
    delta,
    context: Optional[object],
) -> OperationReport:
    """One semi-naive round: apply over the delta-constrained matchings.

    The caller guarantees a plain (non-crossed) source pattern and that
    ``delta`` records the previous round's additions.
    """
    operation.extend_scheme(instance.scheme)
    operation.materialize_constants(instance)
    found = list(find_matchings_delta(operation.source_pattern, instance, delta))
    _guards.charge_matchings(len(found), delta=True)
    _counters.charge(delta_matchings=len(found))
    return operation.apply(instance, context, matchings=found)


class RecursiveEdgeAddition(Operation):
    """A starred edge addition: repeat until no new edges appear.

    Terminates because the node set is fixed and the edge universe is
    finite; the round count is still reported for the benchmarks.

    Evaluation is semi-naive: round 1 matches the whole instance, every
    later round only the matchings touching the previous round's delta
    (a matching inside older structure already fired in an earlier
    round).  Crossed source patterns fall back to full rematching —
    a crossed part's *absence* can validate matchings the delta never
    touches.
    """

    kind = "EA*"

    def __init__(self, edge_addition: EdgeAddition) -> None:
        super().__init__(edge_addition.source_pattern)
        self.edge_addition = edge_addition

    def replace_pattern(self, pattern: Pattern) -> "RecursiveEdgeAddition":
        return RecursiveEdgeAddition(self.edge_addition.replace_pattern(pattern))

    def apply(self, instance: Instance, context: Optional[object] = None) -> OperationReport:
        seminaive = not isinstance(self.source_pattern, NegatedPattern)
        sub_reports: List[OperationReport] = []
        edges_added: List = []
        delta = None
        while True:
            if seminaive and delta is not None:
                with instance.track_changes() as new_delta:
                    report = _delta_round(self.edge_addition, instance, delta, context)
            else:
                with instance.track_changes() as new_delta:
                    report = self.edge_addition.apply(instance, context)
            _counters.charge(rounds=1)
            sub_reports.append(report)
            delta = new_delta
            if not report.edges_added:
                break
            edges_added.extend(report.edges_added)
        return OperationReport(
            operation=f"EA*[{self.edge_addition.describe()} x{len(sub_reports)}]",
            matching_count=sub_reports[0].matching_count,
            edges_added=tuple(edges_added),
            sub_reports=tuple(sub_reports),
        )


class RecursiveNodeAddition(Operation):
    """A starred node addition, with the paper's divergence caveat.

    "Note however that this can result in an infinite sequence of node
    additions" — hence ``max_rounds``; exceeding it raises
    :class:`OperationError`.
    """

    kind = "NA*"

    def __init__(self, node_addition: NodeAddition, max_rounds: int = 1000) -> None:
        super().__init__(node_addition.source_pattern)
        self.node_addition = node_addition
        self.max_rounds = max_rounds

    def replace_pattern(self, pattern: Pattern) -> "RecursiveNodeAddition":
        return RecursiveNodeAddition(self.node_addition.replace_pattern(pattern), self.max_rounds)

    def apply(self, instance: Instance, context: Optional[object] = None) -> OperationReport:
        seminaive = not isinstance(self.source_pattern, NegatedPattern)
        sub_reports: List[OperationReport] = []
        nodes_added: List[int] = []
        edges_added: List = []
        delta = None
        for _ in range(self.max_rounds):
            if seminaive and delta is not None:
                with instance.track_changes() as new_delta:
                    report = _delta_round(self.node_addition, instance, delta, context)
            else:
                with instance.track_changes() as new_delta:
                    report = self.node_addition.apply(instance, context)
            _counters.charge(rounds=1)
            sub_reports.append(report)
            delta = new_delta
            if not report.nodes_added:
                return OperationReport(
                    operation=f"NA*[{self.node_addition.describe()} x{len(sub_reports)}]",
                    matching_count=sub_reports[0].matching_count,
                    nodes_added=tuple(nodes_added),
                    edges_added=tuple(edges_added),
                    sub_reports=tuple(sub_reports),
                )
            nodes_added.extend(report.nodes_added)
            edges_added.extend(report.edges_added)
        raise OperationError(
            f"recursive node addition exceeded {self.max_rounds} rounds — "
            "the paper warns this macro can diverge"
        )
