"""Object base instances (Section 2).

An object base instance over a scheme ``S`` is a labeled graph
``I = (N, E)`` subject to the paper's constraints:

1. every node label is in ``OL ∪ POL``; nodes labeled in ``POL`` may
   additionally carry a *print* label, which must be a constant of the
   printable class's domain;
2. every edge ``(m, α, n)`` satisfies ``(λ(m), α, λ(n)) ∈ P``;
3. all ``α``-successors of a node carry the same label, and if ``α`` is
   functional there is at most one such successor;
4. two printable nodes with equal label and equal print value are the
   same node (value uniqueness).

:class:`Instance` wraps a :class:`~repro.graph.store.GraphStore` and
enforces these constraints on every mutation, so an instance can never
silently drift out of conformance.  Patterns are syntactically
instances and therefore reuse this class (see
:mod:`repro.core.pattern`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, FrozenSet, Iterator, Optional, Set, Tuple

from repro.core.errors import InstanceError
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT, Delta, Edge, GraphStore, NodeRecord


class Instance:
    """A scheme-conformant object base instance."""

    def __init__(self, scheme: Scheme, _store: Optional[GraphStore] = None) -> None:
        self._scheme = scheme
        self._store = _store if _store is not None else GraphStore()
        # attached undo journals (repro.txn.journal), notified when the
        # scheme *binding* changes (restrict_to); store-level mutations
        # reach them through the store's own journal hooks
        self._journals: list = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_object(self, label: str, _node_id: Optional[int] = None) -> int:
        """Create a node of an object class; return its id.

        ``_node_id`` is internal (crossed-pattern id alignment).
        """
        if not self._scheme.is_object_label(label):
            raise InstanceError(f"{label!r} is not an object label of the scheme")
        return self._store.add_node(label, node_id=_node_id)

    def add_printable(self, label: str, value: Any = NO_PRINT, _node_id: Optional[int] = None) -> int:
        """Create a printable node, optionally valued; return its id.

        Raises :class:`InstanceError` if a node with this label and
        value already exists (constraint 4).  Use :meth:`printable` to
        get-or-create instead.  ``_node_id`` is internal (id-preserving
        reconstruction from storage backends).
        """
        if not self._scheme.is_printable_label(label):
            raise InstanceError(f"{label!r} is not a printable label of the scheme")
        if value is not NO_PRINT:
            value = self._scheme.domain_of(label).check(value)
            if self._store.nodes_with_print(label, value):
                raise InstanceError(f"a {label!r} node with print value {value!r} already exists")
        return self._store.add_node(label, value, node_id=_node_id)

    def printable(self, label: str, value: Any) -> int:
        """Get-or-create the unique printable node (label, value)."""
        if not self._scheme.is_printable_label(label):
            raise InstanceError(f"{label!r} is not a printable label of the scheme")
        value = self._scheme.domain_of(label).check(value)
        existing = self._store.nodes_with_print(label, value)
        if existing:
            return min(existing)
        return self._store.add_node(label, value)

    def add_node(self, label: str, value: Any = NO_PRINT) -> int:
        """Create a node of either kind (dispatching on the label)."""
        if self._scheme.is_printable_label(label):
            return self.add_printable(label, value)
        if value is not NO_PRINT:
            raise InstanceError(f"object node {label!r} cannot carry a print value")
        return self.add_object(label)

    def add_edge(self, source: int, edge_label: str, target: int) -> bool:
        """Insert an edge, enforcing constraints 2 and 3.

        Returns ``False`` when the edge already exists.
        """
        violation = self.edge_violation(source, edge_label, target)
        if violation is not None:
            raise InstanceError(violation)
        return self._store.add_edge(source, edge_label, target)

    def edge_violation(self, source: int, edge_label: str, target: int) -> Optional[str]:
        """Explain why the edge may not be added, or ``None`` if it may.

        An already-present edge is not a violation (adding it again is
        a no-op).  This check is the paper's "limited run-time check"
        for edge additions, shared with :class:`EdgeAddition`.
        """
        source_label = self._store.label_of(source)
        target_label = self._store.label_of(target)
        if not self._scheme.allows_edge(source_label, edge_label, target_label):
            return (
                f"edge ({source_label!r}, {edge_label!r}, {target_label!r}) "
                "is not permitted by the scheme"
            )
        current = self._store.out_neighbours(source, edge_label)
        if target in current:
            return None
        if current:
            existing_label = self._store.label_of(next(iter(current)))
            if self._scheme.is_functional(edge_label):
                return (
                    f"functional edge {edge_label!r} already leaves node {source} "
                    f"(towards a {existing_label!r} node)"
                )
            if existing_label != target_label:
                return (
                    f"α-successors of node {source} under {edge_label!r} would mix labels "
                    f"{existing_label!r} and {target_label!r}"
                )
        return None

    def set_print(self, node_id: int, value: Any) -> None:
        """Attach or replace a printable node's print value."""
        label = self._store.label_of(node_id)
        if not self._scheme.is_printable_label(label):
            raise InstanceError(f"node {node_id} is not printable")
        if value is not NO_PRINT:
            value = self._scheme.domain_of(label).check(value)
            clash = self._store.nodes_with_print(label, value) - {node_id}
            if clash:
                raise InstanceError(f"a {label!r} node with print value {value!r} already exists")
        self._store.set_print(node_id, value)

    def remove_node(self, node_id: int) -> None:
        """Delete a node and all incident edges."""
        self._store.remove_node(node_id)

    def remove_edge(self, source: int, edge_label: str, target: int) -> bool:
        """Delete an edge; returns ``False`` if absent."""
        return self._store.remove_edge(source, edge_label, target)

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def scheme(self) -> Scheme:
        """The scheme this instance conforms to."""
        return self._scheme

    @property
    def store(self) -> GraphStore:
        """The underlying graph store (treat as read-only)."""
        return self._store

    def nodes(self) -> Iterator[int]:
        """Node ids in ascending order."""
        return self._store.nodes()

    def edges(self) -> Iterator[Edge]:
        """All edges, deterministically ordered."""
        return self._store.edges()

    def node_record(self, node_id: int) -> NodeRecord:
        """The :class:`NodeRecord` of ``node_id``."""
        return self._store.node(node_id)

    def label_of(self, node_id: int) -> str:
        """The label of ``node_id``."""
        return self._store.label_of(node_id)

    def print_of(self, node_id: int) -> Any:
        """The print value of ``node_id`` (or ``NO_PRINT``)."""
        return self._store.print_of(node_id)

    def is_printable_node(self, node_id: int) -> bool:
        """Whether ``node_id`` belongs to a printable class."""
        return self._scheme.is_printable_label(self._store.label_of(node_id))

    def has_node(self, node_id: int) -> bool:
        """Whether ``node_id`` exists."""
        return self._store.has_node(node_id)

    def has_edge(self, source: int, edge_label: str, target: int) -> bool:
        """Whether the edge exists."""
        return self._store.has_edge(source, edge_label, target)

    def nodes_with_label(self, label: str) -> FrozenSet[int]:
        """All nodes of class ``label``."""
        return self._store.nodes_with_label(label)

    def find_printable(self, label: str, value: Any) -> Optional[int]:
        """The unique printable node (label, value), or ``None``."""
        found = self._store.nodes_with_print(label, value)
        return min(found) if found else None

    def out_neighbours(self, node_id: int, edge_label: str) -> FrozenSet[int]:
        """Targets of ``edge_label`` edges from ``node_id``."""
        return self._store.out_neighbours(node_id, edge_label)

    def in_neighbours(self, node_id: int, edge_label: str) -> FrozenSet[int]:
        """Sources of ``edge_label`` edges into ``node_id``."""
        return self._store.in_neighbours(node_id, edge_label)

    def edges_with_label(self, edge_label: str) -> FrozenSet[Tuple[int, int]]:
        """All ``(source, target)`` pairs carrying ``edge_label``."""
        return self._store.edges_with_label(edge_label)

    def functional_target(self, node_id: int, edge_label: str) -> Optional[int]:
        """The unique α-successor for a functional label, or ``None``."""
        targets = self._store.out_neighbours(node_id, edge_label)
        if not targets:
            return None
        return next(iter(targets))

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return self._store.node_count

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._store.edge_count

    @property
    def generation(self) -> int:
        """The store's monotone mutation counter."""
        return self._store.generation

    # ------------------------------------------------------------------
    # change tracking (semi-naive evaluation support)
    # ------------------------------------------------------------------
    @contextmanager
    def track_changes(self) -> Iterator[Delta]:
        """Record all additions inside the ``with`` block into a delta.

        ::

            with instance.track_changes() as delta:
                operation.apply(instance)
            # delta.nodes / delta.edges now hold what was added

        The delta is the seed set for
        :func:`repro.core.matching.find_matchings_delta` — the matcher
        behind the semi-naive rule engine.  Tracking attaches to the
        *current* store, so the block must not swap the store out (a
        transaction rollback mid-block detaches the recorder safely:
        the delta simply stops receiving changes).
        """
        store = self._store
        delta = store.start_tracking()
        try:
            yield delta
        finally:
            # detach from the store tracking started on, even if a
            # rollback swapped ``self._store`` out mid-block
            store.stop_tracking(delta)

    # ------------------------------------------------------------------
    # whole-instance operations
    # ------------------------------------------------------------------
    def copy(self, scheme: Optional[Scheme] = None) -> "Instance":
        """Copy the instance (optionally rebinding to a scheme copy)."""
        return Instance(scheme if scheme is not None else self._scheme, self._store.copy())

    # ------------------------------------------------------------------
    # transactional target protocol (repro.txn.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Tuple[Scheme, Scheme, "OneShotState"]:
        """Opaque full-state snapshot for the transaction layer.

        Keeps a reference to the *current scheme object* alongside its
        copy so :meth:`restore_state` can restore that object in place
        — patterns and sessions holding it then see the rollback.
        """
        from repro.txn.snapshot import OneShotState

        return (self._scheme, self._scheme.copy(), OneShotState(self._store.copy()))

    def restore_state(self, state: Tuple[Scheme, Scheme, "OneShotState"]) -> None:
        """Reinstall a :meth:`capture_state` snapshot (consuming it).

        The captured store is installed *directly* — no second copy —
        so a single rollback pays one copy total (at capture).  The
        snapshot is thereby consumed; restoring it again raises (the
        transaction layer re-captures when a savepoint is reused).
        """
        scheme_object, scheme_copy, store_state = state
        store = store_state.take()
        scheme_object.restore_from(scheme_copy)
        self._scheme = scheme_object
        self._store = store

    def state_summary(self) -> Tuple[int, int]:
        """``(node_count, edge_count)`` — cheap census for reports."""
        return (self._store.node_count, self._store.edge_count)

    def check_invariants(self) -> None:
        """Re-validate every Section 2 constraint (alias of validate)."""
        self.validate()

    def begin_journal(self) -> "InstanceJournal":
        """Attach an O(changes) undo journal (:mod:`repro.txn.journal`).

        O(1): no store copy, no scheme copy.  The returned journal
        records inverse operations for every subsequent mutation until
        closed; :class:`~repro.txn.transaction.Transaction` prefers
        this over :meth:`capture_state` whenever available.
        """
        from repro.txn.journal import InstanceJournal

        return InstanceJournal(self)

    def rollback_journal(self, journal: "InstanceJournal", mark) -> None:
        """Reverse-replay ``journal`` back to ``mark`` (O(changes))."""
        journal.rollback_to(mark)

    def restrict_to(self, scheme: Scheme) -> None:
        """Drop all nodes and edges not conformant with ``scheme``.

        This implements the paper's "Ik+1 restricted to S'" step of the
        method-call semantics (footnote 4: the largest subinstance that
        is an instance over S').  The instance is rebound to ``scheme``.
        """
        for node_id in list(self._store.nodes()):
            if not scheme.has_node_label(self._store.label_of(node_id)):
                self._store.remove_node(node_id)
        for edge in list(self._store.edges()):
            triple = (
                self._store.label_of(edge.source),
                edge.label,
                self._store.label_of(edge.target),
            )
            if triple[1] not in scheme.functional_edge_labels and triple[1] not in scheme.multivalued_edge_labels:
                self._store.remove_edge(*edge.as_tuple())
            elif not scheme.allows_edge(*triple):
                self._store.remove_edge(*edge.as_tuple())
        if self._journals:
            for journal in list(self._journals):
                journal.note_rebind(self._scheme, scheme)
        self._scheme = scheme

    def validate(self) -> None:
        """Re-check every instance constraint from scratch."""
        seen_prints: Set[Tuple[str, Any]] = set()
        for node_id in self._store.nodes():
            record = self._store.node(node_id)
            if not self._scheme.has_node_label(record.label):
                raise InstanceError(f"node {node_id} has undeclared label {record.label!r}")
            if record.has_print:
                if not self._scheme.is_printable_label(record.label):
                    raise InstanceError(f"object node {node_id} carries a print value")
                self._scheme.domain_of(record.label).check(record.print_value)
                key = (record.label, record.print_value)
                if key in seen_prints:
                    raise InstanceError(f"duplicate printable node for {key!r}")
                seen_prints.add(key)
        for node_id in self._store.nodes():
            for edge_label in self._store.out_labels(node_id):
                targets = self._store.out_neighbours(node_id, edge_label)
                target_labels = {self._store.label_of(t) for t in targets}
                if len(target_labels) > 1:
                    raise InstanceError(
                        f"node {node_id} has {edge_label!r}-successors with mixed labels "
                        f"{sorted(target_labels)!r}"
                    )
                if self._scheme.is_functional(edge_label) and len(targets) > 1:
                    raise InstanceError(
                        f"functional edge {edge_label!r} leaves node {node_id} "
                        f"{len(targets)} times"
                    )
                source_label = self._store.label_of(node_id)
                for target_label in target_labels:
                    if not self._scheme.allows_edge(source_label, edge_label, target_label):
                        raise InstanceError(
                            f"edge triple ({source_label!r}, {edge_label!r}, {target_label!r}) "
                            "is not permitted by the scheme"
                        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance(nodes={self.node_count}, edges={self.edge_count})"
