"""GOOD programs: sequences of operations plus a method registry.

"Given an arbitrary GOOD program, i.e. a sequence of GOOD operations"
(Section 3.2) — :class:`Program` is that sequence, together with the
methods its calls may reference.  Running a program applies each
operation in order ("basic operations are applied in a predetermined
order ... and work on every matching of the pattern, in parallel",
Section 5), producing a new instance (a transformation of the database
graph) and a trace of per-operation reports.

Whether the resulting instance replaces the original (update) or is a
temporary entity (query) is the caller's choice: pass ``in_place=True``
to mutate, or keep the default copy-on-run semantics.

In-place runs are **atomic by default**: Section 3.2 makes edge
addition fail at run time, and a mid-program failure must not leave the
database partially transformed.  A failure rolls the instance (and its
scheme) back to the exact pre-run state via :mod:`repro.txn` and
re-raises with a :class:`~repro.txn.transaction.FailureReport` attached
to the exception; ``atomic=False`` is the escape hatch preserving the
historical partial-mutation-on-error behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.instance import Instance
from repro.core.methods import ExecutionContext, Method, MethodCall, MethodRegistry
from repro.core.operations import Operation, OperationReport
from repro.txn import faults as _faults
from repro.txn.transaction import atomic_run


@dataclass
class ProgramResult:
    """The outcome of running a program."""

    instance: Instance
    reports: Tuple[OperationReport, ...]

    def summary(self) -> str:
        """Multi-line, one report summary per executed operation."""
        return "\n".join(report.summary() for report in self.reports)


class Program:
    """An executable sequence of GOOD operations."""

    def __init__(
        self,
        operations: Sequence[Union[Operation, MethodCall]] = (),
        methods: Optional[Union[MethodRegistry, Sequence[Method]]] = None,
    ) -> None:
        self.operations: List[Union[Operation, MethodCall]] = list(operations)
        if isinstance(methods, MethodRegistry):
            self.methods = methods
        else:
            self.methods = MethodRegistry(methods or ())

    def add(self, operation: Union[Operation, MethodCall]) -> "Program":
        """Append one operation; returns ``self`` for chaining."""
        self.operations.append(operation)
        return self

    def register(self, method: Method) -> "Program":
        """Register a method; returns ``self`` for chaining."""
        self.methods.register(method)
        return self

    def run(
        self,
        instance: Instance,
        in_place: bool = False,
        context: Optional[ExecutionContext] = None,
        max_depth: int = 200,
        atomic: bool = True,
    ) -> ProgramResult:
        """Execute all operations in order.

        By default both the instance and its scheme are copied first,
        so the caller's database is untouched (query mode); with
        ``in_place=True`` the transformation is applied destructively
        (update mode).  ``context`` may carry a pre-built registry; the
        program's own methods are layered on top of it.

        With ``atomic=True`` (the default) a mid-program failure rolls
        the working instance back to its exact pre-run state — scheme
        included — before re-raising, with a
        :class:`~repro.txn.transaction.FailureReport` attached to the
        exception.  In copy mode this simply discards the copy; in
        in-place mode it protects the caller's database from partial
        transformation.  ``atomic=False`` preserves the historical
        leave-partial-state-on-error behavior.
        """
        if context is None:
            context = ExecutionContext(self.methods, max_depth=max_depth)
        else:
            for name in self.methods.names():
                context.methods.register(self.methods.get(name))
        if in_place:
            working = instance
        else:
            working = instance.copy(scheme=instance.scheme.copy())
        if atomic:
            reports = atomic_run(
                working,
                self.operations,
                lambda operation: operation.apply(working, context),
            )
            return ProgramResult(working, tuple(reports))
        reports: List[OperationReport] = []
        for index, operation in enumerate(self.operations):
            _faults.before_operation(operation, index)
            reports.append(operation.apply(working, context))
            _faults.after_operation(operation, index)
        return ProgramResult(working, tuple(reports))

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(op.kind for op in self.operations)
        return f"Program([{kinds}])"


def run_operation(
    operation: Union[Operation, MethodCall],
    instance: Instance,
    methods: Optional[MethodRegistry] = None,
    in_place: bool = False,
    atomic: bool = True,
) -> ProgramResult:
    """Run a single operation as a one-step program."""
    return Program([operation], methods).run(
        instance, in_place=in_place, atomic=atomic
    )
