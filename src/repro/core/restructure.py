"""Scheme manipulation and restructuring (Section 3 intro).

"The GOOD transformation language has indeed been designed in such a
way that it can as well be used for querying, updating, **scheme
manipulations, restructuring**, browsing and visualizing ..." — this
module provides the scheme-and-instance co-transformations that
sentence promises, each expressed through (sequences of) the basic
operations wherever an instance-level effect is involved:

* :func:`rename_class` / :func:`rename_edge_label` — pure renamings
  (bijective re-labelings of scheme and instance);
* :func:`merge_classes` — fold one object class into another (their
  properties must be compatible); instance nodes are relabeled;
* :func:`copy_property_along_isa` — materialise one inherited property
  on a subclass (a single edge addition per isa pair — the Section 4.2
  "number of consecutive edge additions" made available piecemeal);
* :func:`reify_edge` — restructure a multivalued edge into a class of
  link objects (edge → node with ``src``/``dst``), the classic
  many-to-many refactoring; implemented with a node addition followed
  by an edge deletion.

All functions operate on a copy by default and validate the result.
"""

from __future__ import annotations

from repro.core.errors import SchemeError
from repro.core.instance import Instance
from repro.core.operations import EdgeAddition, EdgeDeletion, NodeAddition
from repro.core.pattern import Pattern
from repro.core.scheme import Scheme


def _working_copy(instance: Instance, in_place: bool) -> Instance:
    if in_place:
        return instance
    return instance.copy(scheme=instance.scheme.copy())


def _rebuild(instance: Instance, scheme: Scheme, node_label_map, edge_label_map) -> Instance:
    """Rebuild an instance under label renamings, preserving ids."""
    rebuilt = Instance(scheme)
    for node_id in instance.nodes():
        record = instance.node_record(node_id)
        label = node_label_map.get(record.label, record.label)
        if scheme.is_printable_label(label):
            rebuilt.add_printable(label, record.print_value, _node_id=node_id)
        else:
            rebuilt.add_object(label, _node_id=node_id)
    for edge in instance.edges():
        rebuilt.add_edge(
            edge.source, edge_label_map.get(edge.label, edge.label), edge.target
        )
    return rebuilt


def rename_class(instance: Instance, old: str, new: str) -> Instance:
    """Rename an object class in scheme and instance.

    ``new`` must be unused.  Returns a rebuilt instance over a fresh
    scheme; node ids are preserved, the argument is untouched.
    """
    scheme = instance.scheme
    if not scheme.is_object_label(old):
        raise SchemeError(f"{old!r} is not an object class")
    if scheme.has_node_label(new) or new in scheme.functional_edge_labels or new in scheme.multivalued_edge_labels:
        raise SchemeError(f"label {new!r} is already in use")
    new_scheme = Scheme(
        object_labels=sorted((scheme.object_labels - {old}) | {new}),
        printable_labels=sorted(scheme.printable_labels),
        functional_edge_labels=sorted(scheme.functional_edge_labels),
        multivalued_edge_labels=sorted(scheme.multivalued_edge_labels),
        properties=[
            (new if s == old else s, e, new if t == old else t)
            for (s, e, t) in sorted(scheme.properties)
        ],
        allow_reserved=True,
    )
    for isa in scheme.isa_labels:
        new_scheme.mark_isa(isa)
    rebuilt = _rebuild(instance, new_scheme, {old: new}, {})
    rebuilt.validate()
    return rebuilt


def rename_edge_label(instance: Instance, old: str, new: str) -> Instance:
    """Rename a (functional or multivalued) edge label everywhere."""
    scheme = instance.scheme
    functional = old in scheme.functional_edge_labels
    if not functional and old not in scheme.multivalued_edge_labels:
        raise SchemeError(f"{old!r} is not a declared edge label")
    if scheme.has_node_label(new) or new in scheme.functional_edge_labels or new in scheme.multivalued_edge_labels:
        raise SchemeError(f"label {new!r} is already in use")
    new_scheme = Scheme(
        object_labels=sorted(scheme.object_labels),
        printable_labels=sorted(scheme.printable_labels),
        functional_edge_labels=sorted(
            (scheme.functional_edge_labels - {old}) | ({new} if functional else set())
        ),
        multivalued_edge_labels=sorted(
            (scheme.multivalued_edge_labels - {old}) | (set() if functional else {new})
        ),
        properties=[
            (s, new if e == old else e, t) for (s, e, t) in sorted(scheme.properties)
        ],
        allow_reserved=True,
    )
    for isa in scheme.isa_labels:
        new_scheme.mark_isa(new if isa == old else isa)
    rebuilt = _rebuild(instance, new_scheme, {}, {old: new})
    rebuilt.validate()
    return rebuilt


def merge_classes(instance: Instance, source: str, target: str) -> Instance:
    """Fold object class ``source`` into ``target``.

    Every ``source`` object becomes a ``target`` object; ``source``'s
    properties are transferred to ``target``.  Refused when the merge
    would break an instance constraint (e.g. a functional label of
    ``source`` whose target class differs from ``target``'s).
    """
    scheme = instance.scheme
    for label in (source, target):
        if not scheme.is_object_label(label):
            raise SchemeError(f"{label!r} is not an object class")
    if source == target:
        raise SchemeError("cannot merge a class with itself")
    new_scheme = Scheme(
        object_labels=sorted(scheme.object_labels - {source}),
        printable_labels=sorted(scheme.printable_labels),
        functional_edge_labels=sorted(scheme.functional_edge_labels),
        multivalued_edge_labels=sorted(scheme.multivalued_edge_labels),
        properties=sorted(
            {
                (target if s == source else s, e, target if t == source else t)
                for (s, e, t) in scheme.properties
            }
        ),
        allow_reserved=True,
    )
    for isa in scheme.isa_labels:
        new_scheme.mark_isa(isa)
    rebuilt = _rebuild(instance, new_scheme, {source: target}, {})
    rebuilt.validate()
    return rebuilt


def copy_property_along_isa(
    instance: Instance, subclass: str, isa_label: str, edge_label: str, in_place: bool = False
) -> Instance:
    """Materialise one inherited property on ``subclass`` objects.

    For every instance pair ``x --isa--> y`` with ``x`` in
    ``subclass``, copies ``y``'s ``edge_label`` edges onto ``x`` — one
    Section 4.2 edge addition.  The scheme gains the corresponding
    property triples.
    """
    working = _working_copy(instance, in_place)
    scheme = working.scheme
    if not scheme.is_object_label(subclass):
        raise SchemeError(f"{subclass!r} is not an object class")
    targets = set()
    for (s, e, t) in scheme.properties:
        if e == edge_label:
            targets.add(t)
    if not targets:
        raise SchemeError(f"{edge_label!r} is not used by any property")
    functional = scheme.is_functional(edge_label)
    for target_label in sorted(targets):
        # the superclass node: any class reachable via isa that has the property
        supers = sorted(
            s for (s, e, t) in scheme.properties if e == edge_label and t == target_label
        )
        for super_label in supers:
            if not scheme.allows_edge(subclass, isa_label, super_label):
                continue
            clone = Pattern(scheme)
            sub_node = clone.add_node(subclass)
            super_node = clone.add_node(super_label)
            value_node = clone.add_node(target_label)
            clone.add_edge(sub_node, isa_label, super_node)
            clone.add_edge(super_node, edge_label, value_node)
            kind = "functional" if functional else "multivalued"
            addition = EdgeAddition(
                clone, [(sub_node, edge_label, value_node)], new_label_kinds={edge_label: kind}
            )
            addition.apply(working)
    working.validate()
    return working


def reify_edge(
    instance: Instance,
    source_label: str,
    edge_label: str,
    link_class: str,
    src_edge: str = "src",
    dst_edge: str = "dst",
    in_place: bool = False,
) -> Instance:
    """Turn a multivalued edge into a class of link objects.

    Every instance edge ``x --edge_label--> y`` (with ``x`` in
    ``source_label``) becomes a fresh ``link_class`` object with
    functional ``src``/``dst`` edges; the original edges are deleted.
    Expressed as one node addition followed by one edge deletion —
    pure basic operations.
    """
    working = _working_copy(instance, in_place)
    scheme = working.scheme
    if scheme.is_functional(edge_label):
        raise SchemeError(f"{edge_label!r} is functional; reify multivalued edges")
    target_labels = sorted(
        t for (s, e, t) in scheme.properties if s == source_label and e == edge_label
    )
    if not target_labels:
        raise SchemeError(f"({source_label!r}, {edge_label!r}, _) is not in the scheme")
    for target_label in target_labels:
        clone = Pattern(scheme)
        src_node = clone.add_node(source_label)
        dst_node = clone.add_node(target_label)
        clone.add_edge(src_node, edge_label, dst_node)
        NodeAddition(
            clone, link_class, [(src_edge, src_node), (dst_edge, dst_node)]
        ).apply(working)
        erase = Pattern(working.scheme)
        e_src = erase.add_node(source_label)
        e_dst = erase.add_node(target_label)
        e_link = erase.add_node(link_class)
        erase.add_edge(e_src, edge_label, e_dst)
        erase.add_edge(e_link, src_edge, e_src)
        erase.add_edge(e_link, dst_edge, e_dst)
        EdgeDeletion(erase, [(e_src, edge_label, e_dst)]).apply(working)
    working.validate()
    return working
