"""The GOOD method mechanism (Section 3.6).

A method is a named procedure with four parts:

* a **specification** (:class:`MethodSignature`): the method name, the
  receiver's node label ``R_M``, and a finite map ``s_M`` from
  functional parameter edge labels to node labels;
* a **body** (:class:`BodyOp` list): a sequence of parameterized
  operations — ordinary operations whose source pattern may carry one
  diamond-shaped *M-head node* binding pattern nodes to the formal
  receiver and parameters (we represent the diamond by a
  :class:`HeadBindings` annotation instead of a literal node);
* an **interface** (a :class:`~repro.core.scheme.Scheme`): the scheme-
  level effect visible to callers — temporary nodes and edges whose
  labels are in neither the original scheme nor the interface are
  filtered out of the result;
* **calls** (:class:`MethodCall`): an operation invoking the body for
  every matching of a source pattern, binding actual receiver and
  parameters.

The call semantics follows the paper exactly: a node addition
introduces one fresh ``K``-labeled *call-context* node per matching,
wired to the actual receiver (via a reserved ``@self`` edge) and to the
actual parameters (via the parameter edge labels); each body operation
runs with the call-context node spliced into its source pattern (as an
isolated node when the body operation does not mention the head); a
node deletion then removes all call-context nodes; finally the result
is restricted to ``S ∪ C_M``.

Recursive calls are supported (Fig. 22, Fig. 29); a call whose source
pattern has no matchings creates no context nodes and skips the body,
which both matches the formal semantics and lets shrinking recursions
terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import MethodError
from repro.core.instance import Instance
from repro.core.operations import (
    NodeAddition,
    NodeDeletion,
    Operation,
    OperationReport,
    fresh_tag,
)
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.scheme import Scheme
from repro.txn import guards as _guards

#: Reserved functional edge label realising the paper's "unlabeled"
#: receiver edge from the method/diamond node.
RECEIVER_EDGE = "@self"


@dataclass(frozen=True)
class MethodSignature:
    """The method specification: name, receiver label, parameter types."""

    name: str
    receiver_label: str
    parameters: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise MethodError("method name must be non-empty")
        object.__setattr__(self, "parameters", dict(self.parameters))

    def parameter_labels(self) -> Tuple[str, ...]:
        """The parameter edge labels L_M, sorted."""
        return tuple(sorted(self.parameters))


@dataclass(frozen=True)
class HeadBindings:
    """How a body operation's pattern refers to the M-head node.

    ``receiver`` is the pattern node the diamond's unlabeled edge
    points at; ``parameters`` maps parameter edge labels to pattern
    nodes.  Per the paper, at most one edge per parameter label leaves
    the head and no other edges may leave it — the dataclass shape
    enforces this by construction.
    """

    receiver: Optional[int] = None
    parameters: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", dict(self.parameters))


@dataclass(frozen=True)
class BodyOp:
    """One parameterized operation of a method body."""

    operation: "Union[Operation, MethodCall]"
    head: Optional[HeadBindings] = None


class Method:
    """A complete GOOD method: specification + body + interface."""

    def __init__(
        self,
        signature: MethodSignature,
        body: Sequence[BodyOp],
        interface: Optional[Scheme] = None,
    ) -> None:
        self.signature = signature
        self.body = list(body)
        self.interface = interface if interface is not None else Scheme()
        self._validate()

    def _validate(self) -> None:
        for index, body_op in enumerate(self.body):
            head = body_op.head
            if head is None:
                continue
            pattern = body_op.operation.source_pattern
            if head.receiver is not None:
                if not pattern.has_node(head.receiver):
                    raise MethodError(
                        f"body op {index}: head receiver node {head.receiver} not in pattern"
                    )
                found = pattern.label_of(head.receiver)
                if found != self.signature.receiver_label:
                    raise MethodError(
                        f"body op {index}: head receiver must point at a "
                        f"{self.signature.receiver_label!r} node, found {found!r}"
                    )
            for param_label, target in head.parameters.items():
                expected = self.signature.parameters.get(param_label)
                if expected is None:
                    raise MethodError(
                        f"body op {index}: {param_label!r} is not a parameter of "
                        f"{self.signature.name!r}"
                    )
                if not pattern.has_node(target):
                    raise MethodError(f"body op {index}: head target node {target} not in pattern")
                if pattern.label_of(target) != expected:
                    raise MethodError(
                        f"body op {index}: parameter {param_label!r} must point at a "
                        f"{expected!r} node, found {pattern.label_of(target)!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Method({self.signature.name!r}, body={len(self.body)} ops)"


class MethodRegistry:
    """Name → :class:`Method` lookup used during execution."""

    def __init__(self, methods: Sequence[Method] = ()) -> None:
        self._methods: Dict[str, Method] = {}
        for method in methods:
            self.register(method)

    def register(self, method: Method) -> "MethodRegistry":
        """Register (or replace) a method under its own name."""
        self._methods[method.signature.name] = method
        return self

    def get(self, name: str) -> Method:
        """Look a method up; raise :class:`MethodError` when unknown."""
        try:
            return self._methods[name]
        except KeyError:
            raise MethodError(f"unknown method {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._methods

    def names(self) -> Tuple[str, ...]:
        """All registered method names, sorted."""
        return tuple(sorted(self._methods))


class ExecutionContext:
    """Carries the method registry and recursion bookkeeping."""

    def __init__(self, methods: Optional[MethodRegistry] = None, max_depth: int = 200) -> None:
        self.methods = methods if methods is not None else MethodRegistry()
        self.max_depth = max_depth
        self.depth = 0

    def enter(self, method_name: str) -> None:
        """Track one level of method-call nesting.

        Checks the caller-set recursion budget of any armed resource
        guard (:mod:`repro.txn.guards`) before the hard ``max_depth``
        backstop.
        """
        self.depth += 1
        try:
            _guards.check_call_depth(self.depth)
        except Exception:
            self.depth -= 1
            raise
        if self.depth > self.max_depth:
            self.depth -= 1
            raise MethodError(
                f"method recursion exceeded max_depth={self.max_depth} while calling "
                f"{method_name!r} (a non-terminating recursive method?)"
            )

    def leave(self) -> None:
        """Pop one level of method-call nesting."""
        self.depth -= 1


class MethodCall(Operation):
    """MC[J, S, I, M, g, n] — invoke a method for every matching."""

    kind = "MC"

    def __init__(
        self,
        source_pattern: Pattern,
        method_name: str,
        receiver: int,
        arguments: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(source_pattern)
        self.method_name = method_name
        self.receiver = receiver
        self.arguments = dict(arguments or {})
        self._require_pattern_node(receiver)
        for target in self.arguments.values():
            self._require_pattern_node(target)

    def replace_pattern(self, pattern: Pattern) -> "MethodCall":
        clone = MethodCall.__new__(MethodCall)
        Operation.__init__(clone, pattern)
        clone.method_name = self.method_name
        clone.receiver = self.receiver
        clone.arguments = dict(self.arguments)
        return clone

    def describe(self) -> str:
        """Short textual form, e.g. ``MC[Update]``."""
        return f"MC[{self.method_name}]"

    def apply(self, instance: Instance, context: Optional[ExecutionContext] = None) -> OperationReport:
        if context is None:
            raise MethodError(
                f"method call {self.method_name!r} needs an ExecutionContext with a registry "
                "(run it through Program.run or pass context=)"
            )
        method = context.methods.get(self.method_name)
        call = self.dispatch_via_isa(method, instance.scheme)
        call._check_against(method)
        context.enter(self.method_name)
        try:
            return call._execute(instance, method, context)
        finally:
            context.leave()

    def dispatch_via_isa(self, method: Method, scheme: Scheme) -> "MethodCall":
        """Subclass dispatch (Section 4.2).

        "A method can be called on objects belonging to subclasses of
        the method's specified receiver and parameter classes."  When
        a bound node's class is a (transitive) isa-subclass of the
        formal class, the call pattern is rewritten like Fig. 31: the
        superclass node is inserted, reached through the instance-level
        isa edges, and the binding moves to it.  Exact-label calls are
        returned unchanged.
        """
        signature = method.signature
        rewires = []
        if self.source_pattern.label_of(self.receiver) != signature.receiver_label:
            rewires.append(("@receiver", self.receiver, signature.receiver_label))
        for param_label, target in sorted(self.arguments.items()):
            expected = signature.parameters.get(param_label)
            if expected is not None and self.source_pattern.label_of(target) != expected:
                rewires.append((param_label, target, expected))
        if not rewires or not scheme.isa_labels:
            return self
        from repro.core.inheritance import _isa_edge_between, superclass_paths

        pattern = self.source_pattern.copy()
        new_receiver = self.receiver
        new_arguments = dict(self.arguments)
        for slot, node, wanted_label in rewires:
            current_label = pattern.label_of(node)
            chosen = None
            for path in superclass_paths(scheme, current_label):
                if path and path[-1] == wanted_label:
                    chosen = path
                    break
            if chosen is None:
                # leave it: _check_against will report the mismatch
                continue
            anchor = node
            walking = current_label
            for superclass in chosen:
                isa_label = _isa_edge_between(scheme, walking, superclass)
                if isinstance(pattern, NegatedPattern):
                    upper = pattern.add_shared_object(superclass)
                    pattern.add_shared_edge(anchor, isa_label, upper)
                else:
                    upper = pattern.add_object(superclass)
                    pattern.add_edge(anchor, isa_label, upper)
                anchor = upper
                walking = superclass
            if slot == "@receiver":
                new_receiver = anchor
            else:
                new_arguments[slot] = anchor
        adjusted = self.replace_pattern(pattern)
        adjusted.receiver = new_receiver
        adjusted.arguments = new_arguments
        return adjusted

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_against(self, method: Method) -> None:
        signature = method.signature
        receiver_found = self.source_pattern.label_of(self.receiver)
        if receiver_found != signature.receiver_label:
            raise MethodError(
                f"call to {signature.name!r}: receiver must be a "
                f"{signature.receiver_label!r} node, found {receiver_found!r}"
            )
        missing = set(signature.parameters) - set(self.arguments)
        if missing:
            raise MethodError(f"call to {signature.name!r}: missing arguments {sorted(missing)!r}")
        extra = set(self.arguments) - set(signature.parameters)
        if extra:
            raise MethodError(f"call to {signature.name!r}: unknown arguments {sorted(extra)!r}")
        for param_label, target in self.arguments.items():
            expected = signature.parameters[param_label]
            found = self.source_pattern.label_of(target)
            if found != expected:
                raise MethodError(
                    f"call to {signature.name!r}: argument {param_label!r} must be a "
                    f"{expected!r} node, found {found!r}"
                )

    def _execute(
        self, instance: Instance, method: Method, context: ExecutionContext
    ) -> OperationReport:
        original_scheme = instance.scheme.copy()
        tag = fresh_tag()
        context_label = f"@call:{self.method_name}#{tag}"
        receiver_edge = f"{RECEIVER_EDGE}#{tag}"

        binding_edges: List[Tuple[str, int]] = [(receiver_edge, self.receiver)]
        for param_label in sorted(self.arguments):
            binding_edges.append((param_label, self.arguments[param_label]))
        context_na = NodeAddition(
            self.source_pattern, context_label, binding_edges, _internal=True
        )
        na_report = context_na.apply(instance)
        sub_reports: List[OperationReport] = [na_report]

        try:
            if na_report.nodes_added:
                for index, body_op in enumerate(method.body):
                    transformed = self._transform_body_op(
                        body_op, context_label, receiver_edge, instance.scheme
                    )
                    sub_reports.append(transformed.apply(instance, context))
                cleanup_pattern = Pattern(instance.scheme)
                context_node = cleanup_pattern.add_object(context_label)
                cleanup = NodeDeletion(cleanup_pattern, context_node)
                sub_reports.append(cleanup.apply(instance))
        finally:
            # a raising body op must not leak @call:/@self scaffolding
            # into the scheme — the interface restriction always runs
            final_scheme = original_scheme.union(method.interface)
            instance.restrict_to(final_scheme)
        return OperationReport(
            operation=self.describe(),
            matching_count=na_report.matching_count,
            sub_reports=tuple(sub_reports),
        )

    def _transform_body_op(
        self,
        body_op: BodyOp,
        context_label: str,
        receiver_edge: str,
        scheme: Scheme,
    ) -> "Union[Operation, MethodCall]":
        return transform_body_op(body_op, context_label, receiver_edge, scheme)


def transform_body_op(
    body_op: BodyOp,
    context_label: str,
    receiver_edge: str,
    scheme: Scheme,
) -> "Union[Operation, MethodCall]":
    """Splice the call-context node into a body op's source pattern.

    * head-less operation → isolated context node is added;
    * operation with an M-head → the diamond becomes a context-labeled
      node with the head's receiver/parameter edges.

    Crossed source patterns get the context node under the same id in
    the positive part and in every extension, so the extensions stay
    superpatterns.
    """
    source = body_op.operation.source_pattern
    pattern = source.copy(scheme=scheme)
    is_negated = isinstance(pattern, NegatedPattern)
    with scheme.allowing_reserved():
        if not scheme.is_object_label(context_label):
            scheme.add_object_label(context_label)
        if is_negated:
            context_node = pattern.add_shared_object(context_label)
        else:
            context_node = pattern.add_object(context_label)
        head = body_op.head
        if head is not None:
            if head.receiver is not None:
                if receiver_edge not in scheme.functional_edge_labels:
                    scheme.add_functional_edge_label(receiver_edge)
                scheme.add_property(
                    context_label, receiver_edge, pattern.label_of(head.receiver)
                )
                if is_negated:
                    pattern.add_shared_edge(context_node, receiver_edge, head.receiver)
                else:
                    pattern.add_edge(context_node, receiver_edge, head.receiver)
            for param_label in sorted(head.parameters):
                target = head.parameters[param_label]
                scheme.add_property(context_label, param_label, pattern.label_of(target))
                if is_negated:
                    pattern.add_shared_edge(context_node, param_label, target)
                else:
                    pattern.add_edge(context_node, param_label, target)
    return body_op.operation.replace_pattern(pattern)
