"""The five basic GOOD operations (Sections 3.1–3.5).

Each operation carries a *source pattern* and a description of the
bold/double-outlined part of its figure:

* :class:`NodeAddition` — per matching, ensure a fresh ``K``-labeled
  node with given functional edges into the matched nodes (Fig. 6/8;
  procedural semantics of Fig. 9, including its reuse check, which
  makes node addition idempotent and collapses matchings that agree on
  the target nodes);
* :class:`EdgeAddition` — per matching, add the specified edges between
  matched nodes (Fig. 10/13), with the paper's run-time consistency
  check (Section 3.2) raising :class:`EdgeConflictError`;
* :class:`NodeDeletion` — delete the image of one pattern node for
  every matching, with incident edges (Fig. 14);
* :class:`EdgeDeletion` — delete the images of selected pattern edges
  for every matching (Fig. 16);
* :class:`Abstraction` — group the images of one pattern node by the
  equality of their ``α``-successor sets and attach a fresh ``K`` set
  node to every group via ``β`` edges (Fig. 18).

Semantics notes (also in DESIGN.md):

* Every operation uses **snapshot semantics**: the set of all matchings
  of the source pattern is computed once on the current instance, then
  the transformation is applied for all of them in parallel.  This is
  the reading Section 5 pins down ("the set of all matchings of the
  pattern of a GOOD operation is expressed as an SQL query; the actual
  transformation is performed using SQL's update capabilities"), and it
  is what makes transitive closure inexpressible without the
  Section 4.1 starred macro or Section 3.6 methods, exactly as the
  paper claims.  Node addition keeps the Fig. 9 reuse check, which
  makes it idempotent and collapses matchings agreeing on the targets.
* All operations extend the scheme to "the minimal scheme of which S
  is a subscheme and over which J' is a pattern" before touching the
  instance, so they are well defined even with zero matchings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core import counters as _counters
from repro.core.errors import EdgeConflictError, OperationError
from repro.core.instance import Instance
from repro.core.matching import Matching, find_any
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.scheme import Scheme
from repro.graph.store import Delta, Edge
from repro.core.labels import is_reserved
from repro.txn import guards as _guards


@dataclass
class OperationReport:
    """What one operation application did to the instance."""

    operation: str
    matching_count: int = 0
    nodes_added: Tuple[int, ...] = ()
    nodes_removed: Tuple[int, ...] = ()
    edges_added: Tuple[Edge, ...] = ()
    edges_removed: Tuple[Edge, ...] = ()
    reused_count: int = 0
    sub_reports: Tuple["OperationReport", ...] = ()

    def summary(self) -> str:
        """One-line human readable account of the effect."""
        return (
            f"{self.operation}: {self.matching_count} matchings, "
            f"+{len(self.nodes_added)}/-{len(self.nodes_removed)} nodes, "
            f"+{len(self.edges_added)}/-{len(self.edges_removed)} edges"
        )

    def to_delta(self) -> Delta:
        """This report's additions as a :class:`~repro.graph.store.Delta`.

        Makes any operation report usable as a semi-naive seed set —
        e.g. to delta-match a follow-up pattern against only what one
        operation just created.  Sub-reports are folded in recursively.
        """
        delta = Delta(
            nodes=set(self.nodes_added),
            edges={edge.as_tuple() for edge in self.edges_added},
        )
        for sub in self.sub_reports:
            delta.merge(sub.to_delta())
        return delta


class Operation:
    """Base class of all GOOD operations (including method calls)."""

    #: short operation mnemonic used in reports (NA, EA, ND, ED, AB, MC)
    kind: str = "OP"

    def __init__(self, source_pattern: "Union[Pattern, NegatedPattern]") -> None:
        self.source_pattern = source_pattern

    @property
    def positive_pattern(self) -> Pattern:
        """The positive part of the source pattern (itself, if plain)."""
        if isinstance(self.source_pattern, NegatedPattern):
            return self.source_pattern.positive
        return self.source_pattern

    def apply(self, instance: Instance, context: Optional[object] = None) -> OperationReport:
        """Apply the operation to ``instance`` in place; return a report."""
        raise NotImplementedError

    def replace_pattern(self, pattern: Pattern) -> "Operation":
        """A copy of this operation with a different source pattern.

        Node-id references into the pattern are preserved, so the new
        pattern must contain (a superset of) the original's nodes under
        the same ids.  The method machinery relies on this to add the
        call-context node to body operation patterns.
        """
        raise NotImplementedError

    def matchings(self, instance: Instance) -> List[Matching]:
        """The matchings of the source pattern in ``instance``.

        Crossed source patterns get the Fig. 26 negation semantics.
        Charges the enumeration against any armed resource guard
        (:mod:`repro.txn.guards`) and tallies it as a full enumeration
        on any armed match counters (:mod:`repro.core.counters`).
        """
        found = list(find_any(self.source_pattern, instance))
        _guards.charge_matchings(len(found))
        _counters.charge(full_matchings=len(found))
        return found

    def materialize_constants(self, instance: Instance) -> None:
        """Ensure the pattern's constants exist as printable nodes.

        The paper treats printable classes as system-given: every
        constant of every printable class conceptually exists in every
        instance (which is why node additions never introduce printable
        nodes, and why Fig. 21 can update a date to a value not yet in
        the database).  Stores only materialise the constants actually
        referenced, so each operation first materialises the constants
        its source pattern mentions.
        """
        patterns = [self.positive_pattern]
        if isinstance(self.source_pattern, NegatedPattern):
            patterns.extend(self.source_pattern.extensions)
        for pattern in patterns:
            for node_id in pattern.nodes():
                record = pattern.node_record(node_id)
                if record.has_print and instance.scheme.is_printable_label(record.label):
                    instance.printable(record.label, record.print_value)

    def _require_pattern_node(self, node_id: int) -> None:
        if not self.source_pattern.has_node(node_id):
            raise OperationError(f"node {node_id} is not in the source pattern")


class NodeAddition(Operation):
    """NA[J, S, I, K, {(α1, m1), ..., (αn, mn)}] — Section 3.1."""

    kind = "NA"

    def __init__(
        self,
        source_pattern: Pattern,
        node_label: str,
        edges: Sequence[Tuple[str, int]] = (),
        _internal: bool = False,
    ) -> None:
        super().__init__(source_pattern)
        self.node_label = node_label
        self.edges = tuple(edges)
        labels = [label for label, _ in self.edges]
        if len(set(labels)) != len(labels):
            raise OperationError("node addition requires pairwise different functional edge labels")
        for _, target in self.edges:
            self._require_pattern_node(target)
        if is_reserved(node_label) and not _internal:
            raise OperationError(f"node label {node_label!r} uses the reserved '@' namespace")
        for label, _ in self.edges:
            if is_reserved(label) and not _internal:
                raise OperationError(f"edge label {label!r} uses the reserved '@' namespace")

    def replace_pattern(self, pattern: Pattern) -> "NodeAddition":
        clone = NodeAddition.__new__(NodeAddition)
        Operation.__init__(clone, pattern)
        clone.node_label = self.node_label
        clone.edges = self.edges
        return clone

    def extend_scheme(self, scheme: Scheme) -> None:
        """Minimal scheme extension: K ∈ OL, αℓ ∈ FEL, triples in P."""
        with scheme.allowing_reserved():
            if not scheme.is_object_label(self.node_label):
                if scheme.has_node_label(self.node_label):
                    raise OperationError(
                        f"node addition label {self.node_label!r} is a printable label"
                    )
                scheme.add_object_label(self.node_label)
            for edge_label, target in self.edges:
                if edge_label in scheme.multivalued_edge_labels:
                    raise OperationError(
                        f"node addition edge label {edge_label!r} is multivalued"
                    )
                if edge_label not in scheme.functional_edge_labels:
                    scheme.add_functional_edge_label(edge_label)
                target_label = self.source_pattern.label_of(target)
                scheme.add_property(self.node_label, edge_label, target_label)

    def apply(
        self,
        instance: Instance,
        context: Optional[object] = None,
        *,
        matchings: Optional[List[Matching]] = None,
    ) -> OperationReport:
        """Apply the addition; ``matchings`` overrides the enumeration.

        The ``matchings`` hook is the semi-naive engine's entry point:
        it passes the delta-constrained matchings so only new work is
        performed.  Callers providing it are responsible for guard and
        counter charging.
        """
        self.extend_scheme(instance.scheme)
        self.materialize_constants(instance)
        nodes_added: List[int] = []
        edges_added: List[Edge] = []
        reused = 0
        if matchings is None:
            matchings = self.matchings(instance)
        for matching in matchings:
            targets = tuple(matching[m] for _, m in self.edges)
            if self._existing_node(instance, targets) is not None:
                reused += 1
                continue
            new_node = instance.add_object(self.node_label)
            nodes_added.append(new_node)
            for (edge_label, _), target in zip(self.edges, targets):
                instance.add_edge(new_node, edge_label, target)
                edges_added.append(Edge(new_node, edge_label, target))
        matching_count = len(matchings)
        return OperationReport(
            operation=self.describe(),
            matching_count=matching_count,
            nodes_added=tuple(nodes_added),
            edges_added=tuple(edges_added),
            reused_count=reused,
        )

    def _existing_node(self, instance: Instance, targets: Tuple[int, ...]) -> Optional[int]:
        """Fig. 9 reuse check: a K node with all the required edges."""
        if not self.edges:
            candidates = instance.nodes_with_label(self.node_label)
            return min(candidates) if candidates else None
        first_label = self.edges[0][0]
        candidates = {
            node_id
            for node_id in instance.in_neighbours(targets[0], first_label)
            if instance.label_of(node_id) == self.node_label
        }
        for (edge_label, _), target in list(zip(self.edges, targets))[1:]:
            candidates = {c for c in candidates if instance.has_edge(c, edge_label, target)}
            if not candidates:
                return None
        return min(candidates) if candidates else None

    def describe(self) -> str:
        """Short textual form, e.g. ``NA[Pair; parent, child]``."""
        labels = ", ".join(label for label, _ in self.edges)
        return f"NA[{self.node_label}; {labels}]"


class EdgeAddition(Operation):
    """EA[J, S, I, {(m1, λ1, m1'), ...}] — Section 3.2."""

    kind = "EA"

    def __init__(
        self,
        source_pattern: Pattern,
        edges: Sequence[Tuple[int, str, int]],
        new_label_kinds: Optional[Mapping[str, str]] = None,
        _internal: bool = False,
    ) -> None:
        super().__init__(source_pattern)
        if not edges:
            raise OperationError("edge addition requires at least one edge")
        self.edges = tuple(edges)
        self.new_label_kinds = dict(new_label_kinds or {})
        for source, edge_label, target in self.edges:
            self._require_pattern_node(source)
            self._require_pattern_node(target)
            if is_reserved(edge_label) and not _internal:
                raise OperationError(f"edge label {edge_label!r} uses the reserved '@' namespace")
        for kind in self.new_label_kinds.values():
            if kind not in ("functional", "multivalued"):
                raise OperationError(f"unknown edge-label kind {kind!r}")

    def replace_pattern(self, pattern: Pattern) -> "EdgeAddition":
        clone = EdgeAddition.__new__(EdgeAddition)
        Operation.__init__(clone, pattern)
        clone.edges = self.edges
        clone.new_label_kinds = dict(self.new_label_kinds)
        return clone

    def extend_scheme(self, scheme: Scheme) -> None:
        """Declare fresh edge labels and add the new property triples."""
        with scheme.allowing_reserved():
            for source, edge_label, target in self.edges:
                if (
                    edge_label not in scheme.functional_edge_labels
                    and edge_label not in scheme.multivalued_edge_labels
                ):
                    kind = self.new_label_kinds.get(edge_label)
                    if kind is None:
                        raise OperationError(
                            f"edge label {edge_label!r} is undeclared; pass new_label_kinds="
                            f"{{{edge_label!r}: 'functional'|'multivalued'}}"
                        )
                    if kind == "functional":
                        scheme.add_functional_edge_label(edge_label)
                    else:
                        scheme.add_multivalued_edge_label(edge_label)
                source_label = self.source_pattern.label_of(source)
                target_label = self.source_pattern.label_of(target)
                if not scheme.is_object_label(source_label):
                    raise OperationError(
                        f"edges may only leave object classes, not {source_label!r}"
                    )
                scheme.add_property(source_label, edge_label, target_label)

    def apply(
        self,
        instance: Instance,
        context: Optional[object] = None,
        *,
        matchings: Optional[List[Matching]] = None,
    ) -> OperationReport:
        """Apply the addition; ``matchings`` overrides the enumeration
        (the semi-naive engine's hook — see :class:`NodeAddition`)."""
        self.extend_scheme(instance.scheme)
        self.materialize_constants(instance)
        if matchings is None:
            matchings = self.matchings(instance)
        planned: List[Tuple[int, str, int]] = []
        seen: Set[Tuple[int, str, int]] = set()
        for matching in matchings:
            for source, edge_label, target in self.edges:
                concrete = (matching[source], edge_label, matching[target])
                if concrete not in seen:
                    seen.add(concrete)
                    planned.append(concrete)
        self._check_consistency(instance, planned)
        edges_added: List[Edge] = []
        for source, edge_label, target in planned:
            if instance.add_edge(source, edge_label, target):
                edges_added.append(Edge(source, edge_label, target))
        return OperationReport(
            operation=self.describe(),
            matching_count=len(matchings),
            edges_added=tuple(edges_added),
        )

    def _check_consistency(self, instance: Instance, planned: Sequence[Tuple[int, str, int]]) -> None:
        """The Section 3.2 run-time check, over instance ∪ planned edges.

        Raises :class:`EdgeConflictError` when the combined edge set
        would contain two different edges with the same label leaving
        the same node that (i) are functional, or (ii) arrive at nodes
        with different labels.
        """
        scheme = instance.scheme
        combined: Dict[Tuple[int, str], Set[int]] = {}
        for source, edge_label, target in planned:
            combined.setdefault((source, edge_label), set()).add(target)
        for (source, edge_label), targets in sorted(combined.items()):
            existing = instance.out_neighbours(source, edge_label)
            all_targets = set(existing) | targets
            if scheme.is_functional(edge_label) and len(all_targets) > 1:
                raise EdgeConflictError(
                    f"edge addition would give node {source} {len(all_targets)} different "
                    f"{edge_label!r} (functional) edges"
                )
            labels = {instance.label_of(t) for t in all_targets}
            if len(labels) > 1:
                raise EdgeConflictError(
                    f"edge addition would give node {source} {edge_label!r}-successors "
                    f"with mixed labels {sorted(labels)!r}"
                )

    def describe(self) -> str:
        """Short textual form, e.g. ``EA[data-creation]``."""
        labels = ", ".join(sorted({edge_label for _, edge_label, _ in self.edges}))
        return f"EA[{labels}]"


class NodeDeletion(Operation):
    """ND[J, S, I, m] — Section 3.3."""

    kind = "ND"

    def __init__(self, source_pattern: Pattern, node: int) -> None:
        super().__init__(source_pattern)
        self.node = node
        self._require_pattern_node(node)

    def replace_pattern(self, pattern: Pattern) -> "NodeDeletion":
        clone = NodeDeletion.__new__(NodeDeletion)
        Operation.__init__(clone, pattern)
        clone.node = self.node
        return clone

    def apply(self, instance: Instance, context: Optional[object] = None) -> OperationReport:
        self.materialize_constants(instance)
        matchings = self.matchings(instance)
        victims = sorted({matching[self.node] for matching in matchings})
        edges_removed: List[Edge] = []
        for victim in victims:
            if instance.has_node(victim):
                edges_removed.extend(instance.store.edges_of(victim))
                instance.remove_node(victim)
        return OperationReport(
            operation=self.describe(),
            matching_count=len(matchings),
            nodes_removed=tuple(victims),
            edges_removed=tuple(sorted(set(edges_removed))),
        )

    def describe(self) -> str:
        """Short textual form, e.g. ``ND[Info]``."""
        return f"ND[{self.source_pattern.label_of(self.node)}]"


class EdgeDeletion(Operation):
    """ED[J, S, I, {(m1, λ1, m1'), ...}] — Section 3.4."""

    kind = "ED"

    def __init__(self, source_pattern: Pattern, edges: Sequence[Tuple[int, str, int]]) -> None:
        super().__init__(source_pattern)
        if not edges:
            raise OperationError("edge deletion requires at least one edge")
        self.edges = tuple(edges)
        for source, edge_label, target in self.edges:
            self._require_pattern_node(source)
            self._require_pattern_node(target)
            if not source_pattern.has_edge(source, edge_label, target):
                raise OperationError(
                    f"edge ({source}, {edge_label!r}, {target}) to delete must be part of the "
                    "source pattern"
                )

    def replace_pattern(self, pattern: Pattern) -> "EdgeDeletion":
        clone = EdgeDeletion.__new__(EdgeDeletion)
        Operation.__init__(clone, pattern)
        clone.edges = self.edges
        return clone

    def apply(self, instance: Instance, context: Optional[object] = None) -> OperationReport:
        self.materialize_constants(instance)
        matchings = self.matchings(instance)
        victims: Set[Tuple[int, str, int]] = set()
        for matching in matchings:
            for source, edge_label, target in self.edges:
                victims.add((matching[source], edge_label, matching[target]))
        edges_removed: List[Edge] = []
        for source, edge_label, target in sorted(victims):
            if instance.remove_edge(source, edge_label, target):
                edges_removed.append(Edge(source, edge_label, target))
        return OperationReport(
            operation=self.describe(),
            matching_count=len(matchings),
            edges_removed=tuple(edges_removed),
        )

    def describe(self) -> str:
        """Short textual form, e.g. ``ED[modified]``."""
        labels = ", ".join(sorted({edge_label for _, edge_label, _ in self.edges}))
        return f"ED[{labels}]"


class Abstraction(Operation):
    """AB[J, S, I, n, K, α, β] — Section 3.5.

    Groups the images of pattern node ``n`` into equivalence classes of
    equal ``α``-successor sets and creates one ``K`` node per class,
    linked to every class member by a ``β`` edge.  Both ``α`` and ``β``
    are multivalued edge labels; ``β`` may be fresh.

    ``include_unmatched`` selects between the worked-example semantics
    (default: only matched nodes join groups) and the literal reading
    of the formal definition (every same-label node with an equal
    ``α``-set joins) — see DESIGN.md "Interpretation decisions".
    """

    kind = "AB"

    def __init__(
        self,
        source_pattern: Pattern,
        node: int,
        set_label: str,
        alpha: str,
        beta: str,
        include_unmatched: bool = False,
        _internal: bool = False,
    ) -> None:
        super().__init__(source_pattern)
        self.node = node
        self.set_label = set_label
        self.alpha = alpha
        self.beta = beta
        self.include_unmatched = include_unmatched
        self._require_pattern_node(node)
        if is_reserved(set_label) and not _internal:
            raise OperationError(f"set label {set_label!r} uses the reserved '@' namespace")

    def replace_pattern(self, pattern: Pattern) -> "Abstraction":
        clone = Abstraction.__new__(Abstraction)
        Operation.__init__(clone, pattern)
        clone.node = self.node
        clone.set_label = self.set_label
        clone.alpha = self.alpha
        clone.beta = self.beta
        clone.include_unmatched = self.include_unmatched
        return clone

    def extend_scheme(self, scheme: Scheme) -> None:
        """Declare K and β; add the (K, β, λ(n)) property."""
        if self.alpha not in scheme.multivalued_edge_labels:
            raise OperationError(f"abstraction grouping label {self.alpha!r} must be multivalued")
        with scheme.allowing_reserved():
            if not scheme.is_object_label(self.set_label):
                if scheme.has_node_label(self.set_label):
                    raise OperationError(f"set label {self.set_label!r} is a printable label")
                scheme.add_object_label(self.set_label)
            if self.beta not in scheme.multivalued_edge_labels:
                if self.beta in scheme.functional_edge_labels:
                    raise OperationError(f"abstraction edge label {self.beta!r} is functional")
                scheme.add_multivalued_edge_label(self.beta)
            scheme.add_property(self.set_label, self.beta, self.source_pattern.label_of(self.node))

    def apply(self, instance: Instance, context: Optional[object] = None) -> OperationReport:
        self.extend_scheme(instance.scheme)
        self.materialize_constants(instance)
        matchings = self.matchings(instance)
        matched = sorted({matching[self.node] for matching in matchings})
        alpha_set = {x: frozenset(instance.out_neighbours(x, self.alpha)) for x in matched}
        groups: Dict[FrozenSet[int], Set[int]] = {}
        for member in matched:
            groups.setdefault(alpha_set[member], set()).add(member)
        if self.include_unmatched:
            member_label = self.source_pattern.label_of(self.node)
            for node_id in sorted(instance.nodes_with_label(member_label)):
                key = frozenset(instance.out_neighbours(node_id, self.alpha))
                if key in groups:
                    groups[key].add(node_id)
        nodes_added: List[int] = []
        edges_added: List[Edge] = []
        reused = 0
        for key in sorted(groups, key=lambda k: tuple(sorted(k))):
            members = groups[key]
            existing = self._existing_group_node(instance, members)
            if existing is not None:
                reused += 1
                continue
            set_node = instance.add_object(self.set_label)
            nodes_added.append(set_node)
            for member in sorted(members):
                instance.add_edge(set_node, self.beta, member)
                edges_added.append(Edge(set_node, self.beta, member))
        return OperationReport(
            operation=self.describe(),
            matching_count=len(matchings),
            nodes_added=tuple(nodes_added),
            edges_added=tuple(edges_added),
            reused_count=reused,
        )

    def _existing_group_node(self, instance: Instance, members: Set[int]) -> Optional[int]:
        """A pre-existing K node whose β-set is exactly ``members``."""
        some = min(members) if members else None
        if some is None:
            candidates: Iterable[int] = instance.nodes_with_label(self.set_label)
        else:
            candidates = (
                node_id
                for node_id in instance.in_neighbours(some, self.beta)
                if instance.label_of(node_id) == self.set_label
            )
        for candidate in sorted(candidates):
            if set(instance.out_neighbours(candidate, self.beta)) == members:
                return candidate
        return None

    def describe(self) -> str:
        """Short textual form, e.g. ``AB[Same-Info; links-to/contains]``."""
        return f"AB[{self.set_label}; {self.alpha}/{self.beta}]"


_op_counter = itertools.count()


def fresh_tag() -> int:
    """A process-unique integer for generated label names."""
    return next(_op_counter)
