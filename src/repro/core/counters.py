"""Matcher/fixpoint work counters — the observability side of semi-naive.

The semi-naive rule engine's whole point is doing *less* matching work;
this module is how that win is observed.  A :class:`MatchCounters`
collector tallies, for everything executed while it is armed,

* ``full_matchings`` — matchings enumerated by full pattern matching
  (every ``Operation.matchings`` call, and the engine's full-rematch
  rounds);
* ``delta_matchings`` — matchings enumerated by delta-constrained
  matching (:func:`repro.core.matching.find_matchings_delta`);
* ``rounds`` — fixpoint rounds executed (rule strata, starred macros,
  inheritance materialisation passes);
* ``fixpoint_runs`` — completed fixpoint evaluations;
* ``plan_cache_hits`` / ``plan_cache_misses`` — pattern-plan cache
  outcomes (:mod:`repro.plan.cache`; a miss is a compilation);
* ``index_probes`` — adjacency/edge-index reads the plan executor
  performed (:mod:`repro.plan.executor`);
* ``index_builds`` — sorted-adjacency (CSR) indexes built lazily by
  :meth:`repro.graph.store.GraphStore.sorted_adjacency`;
* ``leapfrog_seeks`` — galloping seeks performed by the multiway
  sorted-intersection operator (:mod:`repro.plan.leapfrog`);
* ``intersections`` — k-way sorted intersections the executor ran
  (multiway steps and array-backed ``Extend`` steps);
* ``txn_journal_entries`` — inverse operations recorded by undo
  journals (:mod:`repro.txn.journal`) in completed transactions;
* ``txn_snapshot_captures`` — full-state snapshots taken
  (:func:`repro.txn.snapshot.capture`; zero on the journal fast path);
* ``txn_rollbacks`` — transaction / savepoint rollbacks performed;
* ``txn_bytes_avoided`` — estimated bytes of state a full-copy
  snapshot protocol would have copied where the journal copied only
  its entries (a rough census-based estimate, not a measurement).

Arming mirrors :mod:`repro.txn.guards`: a thread-local stack of
collectors, so one server session's work never tallies into another's.
Unlike guards, counters never raise — they only observe.

::

    with counters.collect() as tally:
        program.run(db, in_place=True)
    print(tally.rounds, tally.delta_matchings, tally.full_matchings)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List


@dataclass
class MatchCounters:
    """One armed collector's tallies."""

    full_matchings: int = 0
    delta_matchings: int = 0
    rounds: int = 0
    fixpoint_runs: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    index_probes: int = 0
    index_builds: int = 0
    leapfrog_seeks: int = 0
    intersections: int = 0
    txn_journal_entries: int = 0
    txn_snapshot_captures: int = 0
    txn_rollbacks: int = 0
    txn_bytes_avoided: int = 0

    @property
    def matchings(self) -> int:
        """Total matchings enumerated, both disciplines combined."""
        return self.full_matchings + self.delta_matchings

    def to_json(self) -> Dict[str, Any]:
        """The counters as a plain dict (server ``STATS`` payloads)."""
        return {
            "full_matchings": self.full_matchings,
            "delta_matchings": self.delta_matchings,
            "rounds": self.rounds,
            "fixpoint_runs": self.fixpoint_runs,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "index_probes": self.index_probes,
            "index_builds": self.index_builds,
            "leapfrog_seeks": self.leapfrog_seeks,
            "intersections": self.intersections,
            "txn_journal_entries": self.txn_journal_entries,
            "txn_snapshot_captures": self.txn_snapshot_captures,
            "txn_rollbacks": self.txn_rollbacks,
            "txn_bytes_avoided": self.txn_bytes_avoided,
        }


#: Per-thread armed-collector stacks (innermost last).
_LOCAL = threading.local()


def _stack() -> List[MatchCounters]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


@contextmanager
def collect() -> Iterator[MatchCounters]:
    """Arm a collector for the duration of the ``with`` block.

    Collectors nest (each armed collector tallies independently) and
    are armed only in the calling thread.
    """
    tally = MatchCounters()
    stack = _stack()
    stack.append(tally)
    try:
        yield tally
    finally:
        stack.remove(tally)


def charge(
    full_matchings: int = 0,
    delta_matchings: int = 0,
    rounds: int = 0,
    fixpoint_runs: int = 0,
    plan_cache_hits: int = 0,
    plan_cache_misses: int = 0,
    index_probes: int = 0,
    index_builds: int = 0,
    leapfrog_seeks: int = 0,
    intersections: int = 0,
    txn_journal_entries: int = 0,
    txn_snapshot_captures: int = 0,
    txn_rollbacks: int = 0,
    txn_bytes_avoided: int = 0,
) -> None:
    """Tally work against every collector armed in this thread."""
    stack = _stack()
    if not stack:
        return
    for tally in stack:
        tally.full_matchings += full_matchings
        tally.delta_matchings += delta_matchings
        tally.rounds += rounds
        tally.fixpoint_runs += fixpoint_runs
        tally.plan_cache_hits += plan_cache_hits
        tally.plan_cache_misses += plan_cache_misses
        tally.index_probes += index_probes
        tally.index_builds += index_builds
        tally.leapfrog_seeks += leapfrog_seeks
        tally.intersections += intersections
        tally.txn_journal_entries += txn_journal_entries
        tally.txn_snapshot_captures += txn_snapshot_captures
        tally.txn_rollbacks += txn_rollbacks
        tally.txn_bytes_avoided += txn_bytes_avoided
