"""Exception hierarchy for the GOOD reproduction.

Every error raised by the library derives from :class:`GoodError`, so
callers can catch the whole family with one clause.  The split mirrors
the paper's structure: scheme-level violations, instance-constraint
violations, ill-formed patterns, operation failures (including the
Section 3.2 "result of an edge addition is not defined" case) and
method-mechanism failures.
"""

from __future__ import annotations


class GoodError(Exception):
    """Root of the library's exception hierarchy."""


class SchemeError(GoodError):
    """Violation of the object base scheme definition (Section 2).

    Examples: overlapping label namespaces, a property triple whose
    source is a printable class, or referencing an undeclared label.
    """


class InstanceError(GoodError):
    """Violation of an object base instance constraint (Section 2).

    Examples: an edge not allowed by the scheme, two targets for a
    functional edge, α-successors with different labels, or two
    distinct printable nodes sharing label and print value.
    """


class PatternError(GoodError):
    """An ill-formed pattern (patterns are syntactically instances)."""


class OperationError(GoodError):
    """A GOOD operation could not be applied."""


class EdgeConflictError(OperationError):
    """The Section 3.2 undefined case of edge addition.

    Raised when applying an edge addition would create two different
    edges with the same label leaving the same node that either are
    functional or arrive at nodes with different labels.  The paper
    notes that statically checking this is undecidable and prescribes
    limited run-time checks — this exception is that check firing.
    """


class MethodError(GoodError):
    """Ill-formed method specification/body/call, or recursion overflow."""


class DomainError(GoodError):
    """A print value outside its printable class's constant domain."""


class BackendError(GoodError):
    """Failure inside a storage backend (relational/Tarski engines)."""


class TransactionError(GoodError):
    """Misuse of the transaction layer (:mod:`repro.txn`).

    Examples: committing a transaction twice, rolling back to a
    savepoint that was already released, or opening a transaction on a
    target that exposes no snapshot hooks.
    """


class ResourceLimitError(GoodError):
    """A resource guard budget was exceeded (:mod:`repro.txn.guards`).

    Raised when a guarded execution region performs more pattern
    matchings or deeper method recursion than the configured
    :class:`~repro.txn.guards.ResourceLimits` allow.  Distinct from
    :class:`MethodError`'s hard recursion ceiling: this is a caller-set
    budget, not a safety backstop.
    """
