"""Inheritance (Section 4.2) — the ``isa`` macro.

Functional edge labels marked as subclass edges (``Scheme.mark_isa``)
organise object classes in an acyclic hierarchy.  "The effect to the
user is the same as if all properties of info objects were also
attached to the corresponding reference objects" — realised two ways,
both provided and tested equivalent:

* **Query rewriting** (Figs. 30–31): a pattern written against the
  *virtual scheme* (the scheme closed under inherited properties) is
  translated into one or more base-scheme patterns by inserting the
  superclass node and the instance-level ``isa`` edge.  Several
  rewritings arise when a property is inherited along several paths;
  their matchings are unioned.

* **Materialisation**: explicitly adding the properties of the target
  of every instance-level ``isa`` edge to its source as well ("this
  transformation can be computed by a number of consecutive edge
  additions"), producing the *virtual instance* the paper describes,
  against which virtual-scheme patterns match directly.

Only *outgoing* properties are inherited, matching the paper's
discussion; a subclass object that already has its own (functional)
property keeps it — materialisation never overwrites.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core import counters as _counters
from repro.core.errors import SchemeError
from repro.core.instance import Instance
from repro.core.matching import Matching, find_matchings
from repro.core.pattern import Pattern
from repro.core.scheme import Scheme


def direct_superclasses(scheme: Scheme, class_label: str) -> FrozenSet[str]:
    """Object classes reachable from ``class_label`` by one isa edge."""
    found = set()
    for source, edge, target in scheme.properties:
        if source == class_label and edge in scheme.isa_labels and scheme.is_object_label(target):
            found.add(target)
    return frozenset(found)


def superclass_paths(scheme: Scheme, class_label: str) -> Iterator[Tuple[str, ...]]:
    """All isa paths from ``class_label`` upward, shortest first.

    A path is a tuple of class labels starting *after* ``class_label``;
    the empty path (the class itself) comes first.  Acyclicity is
    guaranteed by :meth:`Scheme.mark_isa`.
    """
    frontier: List[Tuple[str, ...]] = [()]
    while frontier:
        path = frontier.pop(0)
        yield path
        tail = path[-1] if path else class_label
        for superclass in sorted(direct_superclasses(scheme, tail)):
            frontier.append(path + (superclass,))


def virtual_scheme(scheme: Scheme) -> Scheme:
    """The scheme closed under inheritance.

    For every class C with C isa* B and every property (B, p, T), the
    virtual scheme also permits (C, p, T).  Users write patterns over
    this scheme; :func:`rewrite_pattern` maps them back.
    """
    closed = scheme.copy()
    changed = True
    while changed:
        changed = False
        for class_label in sorted(closed.object_labels):
            for superclass in sorted(direct_superclasses(closed, class_label)):
                for source, edge, target in sorted(closed.properties):
                    if source != superclass:
                        continue
                    if edge in closed.isa_labels:
                        continue
                    if not closed.allows_edge(class_label, edge, target):
                        closed.add_property(class_label, edge, target)
                        changed = True
    return closed


def _isa_edge_between(scheme: Scheme, subclass: str, superclass: str) -> str:
    for source, edge, target in sorted(scheme.properties):
        if source == subclass and target == superclass and edge in scheme.isa_labels:
            return edge
    raise SchemeError(f"no isa property from {subclass!r} to {superclass!r}")


def rewrite_pattern(pattern: Pattern, base_scheme: Scheme) -> List[Pattern]:
    """Fig. 31: translate a virtual-scheme pattern to base patterns.

    Every pattern edge not permitted by the base scheme is re-rooted at
    the nearest superclass that owns the property, inserting the
    superclass node and the instance-level ``isa`` edges of the path.
    One inserted superclass node per (pattern node, isa path) is shared
    by all properties resolved through that path.  The cross product of
    per-edge path choices yields the returned pattern list; matchings
    of the original are the union over the list (restricted to the
    original nodes).
    """
    offending: List[Tuple[int, str, int]] = []
    for edge in pattern.edges():
        source_label = pattern.label_of(edge.source)
        target_label = pattern.label_of(edge.target)
        if not base_scheme.allows_edge(source_label, edge.label, target_label):
            offending.append(edge.as_tuple())
    if not offending:
        return [pattern.copy(scheme=base_scheme)]

    # per offending edge: the isa paths that resolve it
    choices: List[List[Tuple[str, ...]]] = []
    for source, edge_label, target in offending:
        source_label = pattern.label_of(source)
        target_label = pattern.label_of(target)
        paths = [
            path
            for path in superclass_paths(base_scheme, source_label)
            if path and base_scheme.allows_edge(path[-1], edge_label, target_label)
        ]
        if not paths:
            raise SchemeError(
                f"pattern edge ({source_label!r}, {edge_label!r}, {target_label!r}) is neither "
                "a base property nor inherited through isa"
            )
        choices.append(paths)

    rewritten: List[Pattern] = []
    for combo in _cartesian(choices):
        clone = pattern.copy(scheme=base_scheme)
        # chain cache: (pattern node, isa path prefix) -> inserted node
        chain_nodes: Dict[Tuple[int, Tuple[str, ...]], int] = {}
        for (source, edge_label, target), path in zip(offending, combo):
            clone.remove_edge(source, edge_label, target)
            anchor = source
            walked: Tuple[str, ...] = ()
            current_label = pattern.label_of(source)
            for superclass in path:
                walked = walked + (superclass,)
                key = (source, walked)
                if key not in chain_nodes:
                    isa_label = _isa_edge_between(base_scheme, current_label, superclass)
                    upper = clone.add_node(superclass)
                    clone.add_edge(anchor, isa_label, upper)
                    chain_nodes[key] = upper
                anchor = chain_nodes[key]
                current_label = superclass
            clone.add_edge(anchor, edge_label, target)
        rewritten.append(clone)
    return rewritten


def find_matchings_with_inheritance(
    pattern: Pattern, instance: Instance, base_scheme: Optional[Scheme] = None
) -> Iterator[Matching]:
    """Matchings of a virtual-scheme pattern via rewriting.

    Results are restricted to the original pattern's nodes and
    deduplicated across rewritings.
    """
    scheme = base_scheme if base_scheme is not None else instance.scheme
    original_nodes = sorted(pattern.nodes())
    seen: Set[Tuple[int, ...]] = set()
    for clone in rewrite_pattern(pattern, scheme):
        for matching in find_matchings(clone, instance):
            key = tuple(matching[node] for node in original_nodes)
            if key not in seen:
                seen.add(key)
                yield {node: matching[node] for node in original_nodes}


def materialize_inheritance(instance: Instance) -> int:
    """Build the virtual instance in place; return #edges added.

    Copies each outgoing non-isa property of the target of an
    instance-level isa edge onto the source, skipping functional
    properties the source already has, until a fixpoint.  The
    instance's scheme is replaced by its :func:`virtual_scheme`.

    Evaluation is delta-driven: the first pass visits every node, and
    each later pass revisits only the isa-children of nodes that gained
    edges in the previous pass (copied edges can cascade down isa
    chains — nothing else changes between passes).  Passes charge the
    :mod:`repro.core.counters` round tally.
    """
    scheme = virtual_scheme(instance.scheme)
    instance.restrict_to(scheme)  # rebinds; removes nothing (superset scheme)
    isa_labels = scheme.isa_labels
    added = 0

    def copy_from_parents(node_id: int) -> int:
        node_label = instance.label_of(node_id)
        if not scheme.is_object_label(node_label):
            return 0
        copied = 0
        for isa_label in sorted(isa_labels):
            for parent in sorted(instance.out_neighbours(node_id, isa_label)):
                for edge in list(instance.store.out_edges(parent)):
                    if edge.label in isa_labels:
                        continue
                    if instance.has_edge(node_id, edge.label, edge.target):
                        continue
                    if scheme.is_functional(edge.label) and instance.out_neighbours(
                        node_id, edge.label
                    ):
                        continue
                    if not scheme.allows_edge(
                        node_label, edge.label, instance.label_of(edge.target)
                    ):
                        continue
                    instance.add_edge(node_id, edge.label, edge.target)
                    copied += 1
        return copied

    frontier = sorted(instance.nodes())
    while frontier:
        with instance.track_changes() as delta:
            for node_id in frontier:
                added += copy_from_parents(node_id)
        _counters.charge(rounds=1)
        # only the isa-children of nodes that just gained edges can
        # still have something new to copy
        dirty: Set[int] = set()
        for source, _, _ in delta.sorted_edges():
            for isa_label in isa_labels:
                dirty.update(instance.in_neighbours(source, isa_label))
        frontier = sorted(dirty)
    return added


def _cartesian(choices: List[List[Tuple[str, ...]]]) -> Iterator[Tuple[Tuple[str, ...], ...]]:
    if not choices:
        yield ()
        return
    head, *rest = choices
    for option in head:
        for tail in _cartesian(rest):
            yield (option,) + tail
