"""Label universes and printable-class constant domains.

Section 2 of the paper assumes four pairwise disjoint, infinitely
enumerable sets of labels — object labels, printable object labels,
functional edge labels and multivalued edge labels — together with a
function (often written π) associating to each printable label its set
of constants ("characters, strings, numbers, booleans, but also
drawings, graphics, sound, etc.").

In this reproduction labels are plain strings; disjointness is enforced
per scheme (a scheme rejects a string used in two roles).  Domains are
:class:`Domain` objects with a membership test; :data:`BUILTIN_DOMAINS`
provides the domains the hyper-media example needs (Date, String,
Number, Longstring, Bitmap, Bitstream, Bool, Symbol, State).

Labels beginning with ``"@"`` are *reserved* for the method-call
machinery (call-context classes and the unlabeled receiver edge) and
are rejected in user schemes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.errors import DomainError

#: Prefix reserved for internally generated labels (method call
#: contexts, receiver edges, macro tags).
RESERVED_PREFIX = "@"


def is_reserved(label: str) -> bool:
    """Whether ``label`` belongs to the reserved internal namespace."""
    return label.startswith(RESERVED_PREFIX)


@dataclass(frozen=True)
class Domain:
    """The constant domain of a printable object class.

    ``contains`` decides membership; ``normalize`` canonicalises a
    value before storage (so e.g. ``1`` and ``1.0`` can be identified
    if a domain chooses to).  Domains are compared by name.
    """

    name: str
    contains: Callable[[Any], bool]
    normalize: Callable[[Any], Any] = staticmethod(lambda value: value)

    def check(self, value: Any) -> Any:
        """Validate and canonicalise ``value``; raise :class:`DomainError`."""
        if not self.contains(value):
            raise DomainError(f"value {value!r} is not in domain {self.name!r}")
        return self.normalize(value)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Domain({self.name!r})"


def _is_string(value: Any) -> bool:
    return isinstance(value, str)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_bool(value: Any) -> bool:
    return isinstance(value, bool)


_DATE_PATTERN = re.compile(r"^[A-Z][a-z]{2} \d{1,2}, \d{4}$")


def _is_date(value: Any) -> bool:
    """Dates in the paper's display format, e.g. ``"Jan 12, 1990"``."""
    return isinstance(value, str) and bool(_DATE_PATTERN.match(value))


def _is_bitvector(value: Any) -> bool:
    return isinstance(value, str) and all(ch in "01" for ch in value)


STRING_DOMAIN = Domain("String", _is_string)
NUMBER_DOMAIN = Domain("Number", _is_number)
BOOL_DOMAIN = Domain("Bool", _is_bool)
DATE_DOMAIN = Domain("Date", _is_date)
LONGSTRING_DOMAIN = Domain("Longstring", _is_string)
BITMAP_DOMAIN = Domain("Bitmap", _is_bitvector)
BITSTREAM_DOMAIN = Domain("Bitstream", _is_bitvector)
#: Single tape symbols / machine states for the Turing encoding.
SYMBOL_DOMAIN = Domain("Symbol", _is_string)
STATE_DOMAIN = Domain("State", _is_string)
#: Catch-all domain accepting any hashable value.
ANY_DOMAIN = Domain("Any", lambda value: True)

#: The built-in π function: printable label -> constant domain.
BUILTIN_DOMAINS: Dict[str, Domain] = {
    "String": STRING_DOMAIN,
    "Number": NUMBER_DOMAIN,
    "Bool": BOOL_DOMAIN,
    "Date": DATE_DOMAIN,
    "Longstring": LONGSTRING_DOMAIN,
    "Bitmap": BITMAP_DOMAIN,
    "Bitstream": BITSTREAM_DOMAIN,
    "Symbol": SYMBOL_DOMAIN,
    "State": STATE_DOMAIN,
}


def domain_for(printable_label: str, override: Optional[Domain] = None) -> Domain:
    """Resolve the domain of ``printable_label``.

    An explicit ``override`` wins; otherwise a built-in domain of the
    same name; otherwise :data:`ANY_DOMAIN` (the paper treats the
    printable classes as system-given, so unknown ones are permissive).
    """
    if override is not None:
        return override
    return BUILTIN_DOMAINS.get(printable_label, ANY_DOMAIN)


def date_ordinal(date_value: str) -> int:
    """Map a paper-format date to a day ordinal (for the D method).

    The method of Fig. 23 computes "the number of days elapsed between
    two dates"; this helper provides the arithmetic its body needs.
    """
    months = ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
    if not _is_date(date_value):
        raise DomainError(f"{date_value!r} is not a Date constant")
    month_name, rest = date_value.split(" ", 1)
    day_text, year_text = rest.split(", ")
    month = months.index(month_name) + 1
    day = int(day_text)
    year = int(year_text)
    # days since year 0 in a simplified proleptic calendar (30.6-day
    # months are enough: the method only needs differences of nearby
    # dates and any strictly monotone encoding works for testing)
    cumulative = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334]
    return year * 365 + (year // 4) + cumulative[month - 1] + day
