"""Patterns (Section 3).

"A pattern is a graph used to describe subgraphs in an object base
instance over a given scheme.  As such, a pattern is syntactically
itself an instance over that scheme."  :class:`Pattern` therefore
subclasses :class:`~repro.core.instance.Instance` and inherits all its
constraints; what it adds is

* convenience builders used throughout the figure reproductions;
* optional *print predicates* on printable nodes — the Section 4.1
  "additional predicates on printable objects" macro (QBE-style
  condition boxes), e.g. a Date node constrained to a range.

A pattern node with a print value matches only the unique instance node
carrying that value; a node with a predicate matches any same-label
node whose value satisfies the predicate; a bare printable node matches
any node of its class, valued or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.errors import PatternError
from repro.core.instance import Instance
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT


@dataclass(frozen=True)
class PrintPredicate:
    """A named boolean condition on a print value."""

    name: str
    test: Callable[[Any], bool]

    def __call__(self, value: Any) -> bool:
        return bool(self.test(value))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PrintPredicate({self.name!r})"


class Pattern(Instance):
    """A pattern over a scheme; syntactically an instance."""

    def __init__(self, scheme: Scheme, _store=None) -> None:
        super().__init__(scheme, _store)
        self._predicates: Dict[int, PrintPredicate] = {}

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def node(self, label: str, value: Any = NO_PRINT) -> int:
        """Add a pattern node of either kind (see ``Instance.add_node``)."""
        return self.add_node(label, value)

    def edge(self, source: int, edge_label: str, target: int) -> "Pattern":
        """Add a pattern edge; returns ``self`` for chaining."""
        self.add_edge(source, edge_label, target)
        return self

    def constrain(self, node_id: int, predicate: PrintPredicate) -> "Pattern":
        """Attach a print predicate to a printable pattern node.

        The node must be printable and must not already carry a fixed
        print value (a fixed value subsumes any predicate).
        """
        if not self.is_printable_node(node_id):
            raise PatternError(f"predicates apply to printable nodes, not node {node_id}")
        if self.print_of(node_id) is not NO_PRINT:
            raise PatternError(f"node {node_id} already has a fixed print value")
        self._predicates[node_id] = predicate
        return self

    def predicate_of(self, node_id: int) -> Optional[PrintPredicate]:
        """The predicate attached to ``node_id``, if any."""
        return self._predicates.get(node_id)

    @property
    def predicates(self) -> Dict[int, PrintPredicate]:
        """All node predicates (read-only view by convention)."""
        return dict(self._predicates)

    # ------------------------------------------------------------------
    # whole-pattern operations
    # ------------------------------------------------------------------
    def copy(self, scheme: Optional[Scheme] = None) -> "Pattern":
        """Copy the pattern, keeping node ids and predicates."""
        clone = Pattern(scheme if scheme is not None else self.scheme, self.store.copy())
        clone._predicates = dict(self._predicates)
        return clone

    def remove_node(self, node_id: int) -> None:
        super().remove_node(node_id)
        self._predicates.pop(node_id, None)

    @property
    def is_empty(self) -> bool:
        """Whether this is the empty pattern (Fig. 12 uses one).

        The empty pattern has exactly one matching in any instance —
        the empty mapping — so operations over it fire exactly once.
        """
        return self.node_count == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern(nodes={self.node_count}, edges={self.edge_count})"


def empty_pattern(scheme: Scheme) -> Pattern:
    """The empty pattern over ``scheme``."""
    return Pattern(scheme)


class NegatedPattern:
    """A pattern with crossed (forbidden) parts — the negation macro.

    ``positive`` is the ordinary pattern; each *negative extension* is
    a pattern that contains the positive one (same node ids, same
    labels, superset of edges) plus extra crossed nodes/edges.  A
    matching of the negated pattern is a matching of ``positive`` that
    cannot be enlarged to a matching of any extension (Fig. 26).

    A :class:`NegatedPattern` can be used directly as the source
    pattern of any operation (crossed parts are the recursion stopping
    condition of Fig. 29's method bodies); the Fig. 27 compilation to
    basic operations lives in :mod:`repro.core.macros` and is tested
    equivalent.
    """

    def __init__(self, positive: Pattern) -> None:
        self.positive = positive
        self.extensions: list = []

    def forbid(self, extension: Pattern) -> "NegatedPattern":
        """Add a crossed extension (must be a superpattern)."""
        for node_id in self.positive.nodes():
            if not extension.has_node(node_id):
                raise PatternError(f"extension lacks positive pattern node {node_id}")
            if extension.node_record(node_id) != self.positive.node_record(node_id):
                raise PatternError(f"extension changes positive pattern node {node_id}")
        for edge in self.positive.edges():
            if not extension.has_edge(*edge.as_tuple()):
                raise PatternError(f"extension lacks positive pattern edge {edge}")
        self.extensions.append(extension)
        return self

    def forbid_edge(self, source: int, edge_label: str, target: int) -> "NegatedPattern":
        """Cross out a single edge between positive pattern nodes
        (Fig. 26's crossed ``modified`` edge)."""
        extension = self.positive.copy()
        extension.add_edge(source, edge_label, target)
        return self.forbid(extension)

    def forbid_node(self, label: str, edges=()) -> int:
        """Cross out "a node of class ``label`` related like this".

        ``edges`` are ``(positive node, edge label, None)`` triples for
        an edge from the positive node into the crossed node, or
        ``(None, edge label, positive node)`` for an edge leaving it.
        Returns the crossed node's id inside the registered extension.
        """
        extension = self.positive.copy()
        crossed = extension.add_node(label)
        for source, edge_label, target in edges:
            if target is None:
                extension.add_edge(source, edge_label, crossed)
            elif source is None:
                extension.add_edge(crossed, edge_label, target)
            else:
                raise PatternError("exactly one endpoint must be None (the crossed node)")
        self.forbid(extension)
        return crossed

    def copy(self, scheme: Optional[Scheme] = None) -> "NegatedPattern":
        """Deep copy; node ids are preserved across positive/extensions."""
        clone = NegatedPattern(self.positive.copy(scheme=scheme))
        clone.extensions = [extension.copy(scheme=scheme) for extension in self.extensions]
        return clone

    # ------------------------------------------------------------------
    # shared augmentation (used by the method-call machinery)
    # ------------------------------------------------------------------
    def add_shared_object(self, label: str) -> int:
        """Add an object node, under the *same* id, to the positive
        pattern and every extension.

        Extensions carry crossed nodes beyond the positive ids, so the
        shared id is taken past every pattern's counter.
        """
        node_id = max(
            [self.positive.store.next_id]
            + [extension.store.next_id for extension in self.extensions]
        )
        self.positive.add_object(label, _node_id=node_id)
        for extension in self.extensions:
            extension.add_object(label, _node_id=node_id)
        return node_id

    def add_shared_edge(self, source: int, edge_label: str, target: int) -> None:
        """Add an edge to the positive pattern and every extension."""
        self.positive.add_edge(source, edge_label, target)
        for extension in self.extensions:
            extension.add_edge(source, edge_label, target)

    # convenience delegation so operations can treat both pattern kinds
    # uniformly where only the positive part matters
    @property
    def scheme(self) -> Scheme:
        """The positive pattern's scheme."""
        return self.positive.scheme

    def has_node(self, node_id: int) -> bool:
        """Whether the positive pattern has ``node_id``."""
        return self.positive.has_node(node_id)

    def has_edge(self, source: int, edge_label: str, target: int) -> bool:
        """Whether the positive pattern has the edge."""
        return self.positive.has_edge(source, edge_label, target)

    def label_of(self, node_id: int) -> str:
        """The label of a positive pattern node."""
        return self.positive.label_of(node_id)

    def nodes(self):
        """Positive pattern node ids."""
        return self.positive.nodes()

    def node_record(self, node_id: int):
        """The positive pattern's record for ``node_id``."""
        return self.positive.node_record(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NegatedPattern(positive={self.positive.node_count} nodes, "
            f"{len(self.extensions)} crossed parts)"
        )
