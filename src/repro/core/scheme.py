"""Object base schemes (Section 2).

An object base scheme is a five-tuple ``S = (OL, POL, FEL, MEL, P)``:

* ``OL`` — finite set of object labels (user-defined, rectangular);
* ``POL`` — finite set of printable object labels (system, oval);
* ``FEL`` — finite set of functional edge labels (single arrow);
* ``MEL`` — finite set of multivalued edge labels (double arrow);
* ``P ⊆ OL × (MEL ∪ FEL) × (OL ∪ POL)`` — the permitted properties.

Note that property edges always *leave* an object class (never a
printable class), and the four label sets are pairwise disjoint.

:class:`Scheme` enforces these conditions, supports the sub-scheme test
and scheme union the formal operation definitions rely on ("the minimal
scheme of which S is a subscheme and over which J' is a pattern"), and
carries two extensions used later in the paper:

* per-printable-label constant domains (the π function of Section 2);
* an ``isa`` marking on functional edge labels for the Section 4.2
  inheritance macro, with the paper's acyclicity requirement.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.core.errors import SchemeError
from repro.core.labels import Domain, domain_for, is_reserved

#: A property triple (source object label, edge label, target label).
PropertyTriple = Tuple[str, str, str]

FUNCTIONAL = "functional"
MULTIVALUED = "multivalued"


class Scheme:
    """An object base scheme with validation and composition helpers."""

    def __init__(
        self,
        object_labels: Iterable[str] = (),
        printable_labels: Iterable[str] = (),
        functional_edge_labels: Iterable[str] = (),
        multivalued_edge_labels: Iterable[str] = (),
        properties: Iterable[PropertyTriple] = (),
        domains: Optional[Dict[str, Domain]] = None,
        allow_reserved: bool = False,
    ) -> None:
        self._object_labels: Set[str] = set()
        self._printable_labels: Set[str] = set()
        self._functional: Set[str] = set()
        self._multivalued: Set[str] = set()
        self._properties: Set[PropertyTriple] = set()
        self._domains: Dict[str, Domain] = {}
        self._isa_labels: Set[str] = set()
        self._allow_reserved = allow_reserved
        # change listeners (repro.txn.journal scheme recorders); never
        # copied with the scheme — each object records independently
        self._listeners: list = []

        for label in object_labels:
            self.add_object_label(label)
        for label in printable_labels:
            self.add_printable_label(label, (domains or {}).get(label))
        for label in functional_edge_labels:
            self.add_functional_edge_label(label)
        for label in multivalued_edge_labels:
            self.add_multivalued_edge_label(label)
        for source, edge, target in properties:
            self.add_property(source, edge, target)

    # ------------------------------------------------------------------
    # change notification (undo-journal support)
    # ------------------------------------------------------------------
    def _changed(self) -> None:
        """Tell listeners the scheme is *about* to mutate.

        Fired before any content change so an attached undo-journal
        recorder (:mod:`repro.txn.journal`) can snapshot the
        pre-mutation state lazily.  A notification with no subsequent
        mutation (e.g. a declaration that then fails validation) is
        harmless — it only makes the recorder's snapshot redundant.
        """
        if self._listeners:
            for listener in self._listeners:
                listener.scheme_changed(self)

    # ------------------------------------------------------------------
    # label declarations
    # ------------------------------------------------------------------
    def add_object_label(self, label: str) -> "Scheme":
        """Declare an object (rectangular) class label."""
        self._check_fresh(label, allow=self._object_labels)
        self._changed()
        self._object_labels.add(label)
        return self

    def add_printable_label(self, label: str, domain: Optional[Domain] = None) -> "Scheme":
        """Declare a printable (oval) class label with its domain."""
        self._check_fresh(label, allow=self._printable_labels)
        self._changed()
        self._printable_labels.add(label)
        self._domains[label] = domain_for(label, domain)
        return self

    def add_functional_edge_label(self, label: str) -> "Scheme":
        """Declare a functional (single-arrow) edge label."""
        self._check_fresh(label, allow=self._functional)
        self._changed()
        self._functional.add(label)
        return self

    def add_multivalued_edge_label(self, label: str) -> "Scheme":
        """Declare a multivalued (double-arrow) edge label."""
        self._check_fresh(label, allow=self._multivalued)
        self._changed()
        self._multivalued.add(label)
        return self

    def add_property(self, source: str, edge: str, target: str) -> "Scheme":
        """Add a triple to P, verifying all labels were declared."""
        if source not in self._object_labels:
            raise SchemeError(f"property source {source!r} is not a declared object label")
        if edge not in self._functional and edge not in self._multivalued:
            raise SchemeError(f"property edge {edge!r} is not a declared edge label")
        if target not in self._object_labels and target not in self._printable_labels:
            raise SchemeError(f"property target {target!r} is not a declared node label")
        self._changed()
        self._properties.add((source, edge, target))
        return self

    def declare(self, source: str, edge: str, target: str, functional: bool = True) -> "Scheme":
        """Convenience: declare missing labels and add the property.

        ``source`` becomes an object label, ``target`` an object label
        unless already known as printable; ``edge`` is functional or
        multivalued per the flag.  Printable targets must be declared
        beforehand with :meth:`add_printable_label` (the paper treats
        printable classes as system-given).
        """
        if source not in self._object_labels:
            self.add_object_label(source)
        if target not in self._object_labels and target not in self._printable_labels:
            self.add_object_label(target)
        wanted = self._functional if functional else self._multivalued
        if edge not in wanted:
            if functional:
                self.add_functional_edge_label(edge)
            else:
                self.add_multivalued_edge_label(edge)
        return self.add_property(source, edge, target)

    @contextmanager
    def allowing_reserved(self):
        """Temporarily permit '@'-prefixed labels (engine internal).

        The method-call machinery of Section 3.6 introduces per-call
        classes and a receiver edge; those live in the reserved
        namespace so they can never collide with user labels, and this
        context manager is the only door through which they enter a
        scheme.
        """
        previous = self._allow_reserved
        self._allow_reserved = True
        try:
            yield self
        finally:
            self._allow_reserved = previous

    def mark_isa(self, edge_label: str) -> "Scheme":
        """Mark a functional edge label as a subclass (isa) edge.

        Section 4.2: subclass edges must be functional and must not
        form a cycle among object classes; the cycle check runs on
        every marking.
        """
        if edge_label not in self._functional:
            raise SchemeError(f"isa label {edge_label!r} must be a functional edge label")
        self._changed()
        self._isa_labels.add(edge_label)
        cycle = self._find_isa_cycle()
        if cycle is not None:
            self._isa_labels.discard(edge_label)
            raise SchemeError(f"isa edges form a cycle through classes {cycle!r}")
        return self

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def object_labels(self) -> FrozenSet[str]:
        """OL — the declared object labels."""
        return frozenset(self._object_labels)

    @property
    def printable_labels(self) -> FrozenSet[str]:
        """POL — the declared printable labels."""
        return frozenset(self._printable_labels)

    @property
    def functional_edge_labels(self) -> FrozenSet[str]:
        """FEL — the declared functional edge labels."""
        return frozenset(self._functional)

    @property
    def multivalued_edge_labels(self) -> FrozenSet[str]:
        """MEL — the declared multivalued edge labels."""
        return frozenset(self._multivalued)

    @property
    def properties(self) -> FrozenSet[PropertyTriple]:
        """P — the permitted property triples."""
        return frozenset(self._properties)

    @property
    def isa_labels(self) -> FrozenSet[str]:
        """The functional edge labels marked as subclass edges."""
        return frozenset(self._isa_labels)

    def has_node_label(self, label: str) -> bool:
        """Whether ``label`` is in OL ∪ POL."""
        return label in self._object_labels or label in self._printable_labels

    def is_object_label(self, label: str) -> bool:
        """Whether ``label`` is in OL."""
        return label in self._object_labels

    def is_printable_label(self, label: str) -> bool:
        """Whether ``label`` is in POL."""
        return label in self._printable_labels

    def edge_kind(self, edge_label: str) -> str:
        """``"functional"`` or ``"multivalued"`` for a declared label."""
        if edge_label in self._functional:
            return FUNCTIONAL
        if edge_label in self._multivalued:
            return MULTIVALUED
        raise SchemeError(f"{edge_label!r} is not a declared edge label")

    def is_functional(self, edge_label: str) -> bool:
        """Whether ``edge_label`` is functional."""
        return edge_label in self._functional

    def allows_edge(self, source_label: str, edge_label: str, target_label: str) -> bool:
        """Whether the triple is in P."""
        return (source_label, edge_label, target_label) in self._properties

    def targets_of(self, source_label: str, edge_label: str) -> FrozenSet[str]:
        """Target labels permitted for (source_label, edge_label)."""
        return frozenset(t for (s, e, t) in self._properties if s == source_label and e == edge_label)

    def edges_from(self, source_label: str) -> Iterator[PropertyTriple]:
        """Iterate property triples whose source is ``source_label``."""
        for triple in sorted(self._properties):
            if triple[0] == source_label:
                yield triple

    def domain_of(self, printable_label: str) -> Domain:
        """The constant domain π(printable_label)."""
        if printable_label not in self._printable_labels:
            raise SchemeError(f"{printable_label!r} is not a declared printable label")
        return self._domains[printable_label]

    # ------------------------------------------------------------------
    # composition (used by the operation semantics)
    # ------------------------------------------------------------------
    def is_subscheme_of(self, other: "Scheme") -> bool:
        """Sub-scheme with respect to set inclusion (paper footnote 2)."""
        return (
            self._object_labels <= other._object_labels
            and self._printable_labels <= other._printable_labels
            and self._functional <= other._functional
            and self._multivalued <= other._multivalued
            and self._properties <= other._properties
        )

    def union(self, other: "Scheme") -> "Scheme":
        """The smallest scheme of which both operands are subschemes."""
        merged = Scheme(allow_reserved=self._allow_reserved or other._allow_reserved)
        for label in sorted(self._object_labels | other._object_labels):
            merged._object_labels.add(label)
        for label in sorted(self._printable_labels | other._printable_labels):
            merged._printable_labels.add(label)
            merged._domains[label] = self._domains.get(label) or other._domains[label]
        merged._functional = set(self._functional | other._functional)
        merged._multivalued = set(self._multivalued | other._multivalued)
        merged._properties = set(self._properties | other._properties)
        merged._isa_labels = set(self._isa_labels | other._isa_labels)
        merged.validate()
        return merged

    def copy(self) -> "Scheme":
        """An independent copy of this scheme."""
        clone = Scheme(allow_reserved=self._allow_reserved)
        clone._object_labels = set(self._object_labels)
        clone._printable_labels = set(self._printable_labels)
        clone._functional = set(self._functional)
        clone._multivalued = set(self._multivalued)
        clone._properties = set(self._properties)
        clone._domains = dict(self._domains)
        clone._isa_labels = set(self._isa_labels)
        return clone

    def restore_from(self, other: "Scheme") -> "Scheme":
        """Overwrite this scheme's contents with ``other``'s, in place.

        Identity-preserving restore for the transaction layer
        (:mod:`repro.txn`): patterns, instances and sessions holding a
        reference to this scheme object see the rollback.  ``other`` is
        left untouched (fresh containers are installed here).  Change
        listeners stay attached (and are notified first, like any other
        mutation) — a restore performed by an inner transaction is a
        scheme change from an outer journal's point of view.
        """
        self._changed()
        self._object_labels = set(other._object_labels)
        self._printable_labels = set(other._printable_labels)
        self._functional = set(other._functional)
        self._multivalued = set(other._multivalued)
        self._properties = set(other._properties)
        self._domains = dict(other._domains)
        self._isa_labels = set(other._isa_labels)
        self._allow_reserved = other._allow_reserved
        return self

    def validate(self) -> None:
        """Re-check all scheme invariants; raise :class:`SchemeError`."""
        families = [self._object_labels, self._printable_labels, self._functional, self._multivalued]
        names = ["OL", "POL", "FEL", "MEL"]
        for i, left in enumerate(families):
            for j in range(i + 1, len(families)):
                overlap = left & families[j]
                if overlap:
                    raise SchemeError(
                        f"label sets {names[i]} and {names[j]} overlap on {sorted(overlap)!r}"
                    )
        for source, edge, target in self._properties:
            if source not in self._object_labels:
                raise SchemeError(f"property source {source!r} not in OL")
            if edge not in self._functional and edge not in self._multivalued:
                raise SchemeError(f"property edge {edge!r} not in FEL ∪ MEL")
            if target not in self._object_labels and target not in self._printable_labels:
                raise SchemeError(f"property target {target!r} not in OL ∪ POL")
        cycle = self._find_isa_cycle()
        if cycle is not None:
            raise SchemeError(f"isa edges form a cycle through classes {cycle!r}")

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Scheme):
            return NotImplemented
        return (
            self._object_labels == other._object_labels
            and self._printable_labels == other._printable_labels
            and self._functional == other._functional
            and self._multivalued == other._multivalued
            and self._properties == other._properties
        )

    def __hash__(self) -> int:  # schemes are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheme(|OL|={len(self._object_labels)}, |POL|={len(self._printable_labels)}, "
            f"|FEL|={len(self._functional)}, |MEL|={len(self._multivalued)}, "
            f"|P|={len(self._properties)})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_fresh(self, label: str, allow: Set[str]) -> None:
        if not isinstance(label, str) or not label:
            raise SchemeError(f"labels must be non-empty strings, got {label!r}")
        if is_reserved(label) and not self._allow_reserved:
            raise SchemeError(f"label {label!r} uses the reserved '@' namespace")
        if label in allow:
            return
        for family, name in (
            (self._object_labels, "OL"),
            (self._printable_labels, "POL"),
            (self._functional, "FEL"),
            (self._multivalued, "MEL"),
        ):
            if label in family:
                raise SchemeError(f"label {label!r} is already declared in {name}")

    def _find_isa_cycle(self) -> Optional[Tuple[str, ...]]:
        """Return a class-label cycle through isa properties, if any."""
        successors: Dict[str, Set[str]] = {}
        for source, edge, target in self._properties:
            if edge in self._isa_labels and target in self._object_labels:
                successors.setdefault(source, set()).add(target)
        visiting: Set[str] = set()
        done: Set[str] = set()
        stack: list = []

        def visit(label: str) -> Optional[Tuple[str, ...]]:
            if label in done:
                return None
            if label in visiting:
                idx = stack.index(label)
                return tuple(stack[idx:])
            visiting.add(label)
            stack.append(label)
            for nxt in sorted(successors.get(label, ())):
                found = visit(nxt)
                if found is not None:
                    return found
            stack.pop()
            visiting.discard(label)
            done.add(label)
            return None

        for label in sorted(successors):
            found = visit(label)
            if found is not None:
                return found
        return None
