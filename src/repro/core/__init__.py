"""The GOOD model core: schemes, instances, patterns, operations.

This package implements the paper's primary contribution — Sections 2
(object base schemes and instances), 3 (the transformation language:
pattern matching, the five basic operations, methods) and 4.1/4.2 (the
macros and the inheritance view).
"""

from repro.core.errors import (
    BackendError,
    DomainError,
    EdgeConflictError,
    GoodError,
    InstanceError,
    MethodError,
    OperationError,
    PatternError,
    ResourceLimitError,
    SchemeError,
    TransactionError,
)
from repro.core.instance import Instance
from repro.core.labels import BUILTIN_DOMAINS, Domain, date_ordinal
from repro.core.macros import (
    NegatedPattern,
    NegationCompilation,
    RecursiveEdgeAddition,
    RecursiveNodeAddition,
    compile_negation,
    date_between,
    match_negated,
    value_between,
    value_in,
    value_not_equal,
)
from repro.core.matching import (
    Matching,
    count_matchings,
    find_matchings,
    find_matchings_backtracking,
    find_matchings_naive,
    match_exists,
)
from repro.core.methods import (
    BodyOp,
    ExecutionContext,
    HeadBindings,
    Method,
    MethodCall,
    MethodRegistry,
    MethodSignature,
)
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
    OperationReport,
)
from repro.core.pattern import Pattern, PrintPredicate, empty_pattern
from repro.core.program import Program, ProgramResult, run_operation
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT

__all__ = [
    "Abstraction",
    "BUILTIN_DOMAINS",
    "BackendError",
    "BodyOp",
    "compile_negation",
    "count_matchings",
    "date_between",
    "date_ordinal",
    "Domain",
    "DomainError",
    "EdgeAddition",
    "EdgeConflictError",
    "EdgeDeletion",
    "empty_pattern",
    "ExecutionContext",
    "find_matchings",
    "find_matchings_backtracking",
    "find_matchings_naive",
    "GoodError",
    "HeadBindings",
    "Instance",
    "InstanceError",
    "match_exists",
    "match_negated",
    "Matching",
    "Method",
    "MethodCall",
    "MethodError",
    "MethodRegistry",
    "MethodSignature",
    "NegatedPattern",
    "NegationCompilation",
    "NO_PRINT",
    "NodeAddition",
    "NodeDeletion",
    "Operation",
    "OperationError",
    "OperationReport",
    "Pattern",
    "PatternError",
    "PrintPredicate",
    "Program",
    "ProgramResult",
    "RecursiveEdgeAddition",
    "RecursiveNodeAddition",
    "ResourceLimitError",
    "run_operation",
    "Scheme",
    "SchemeError",
    "TransactionError",
    "value_between",
    "value_in",
    "value_not_equal",
]
