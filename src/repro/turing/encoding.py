"""Turing machines as GOOD instances and programs (experiment C3).

Encoding of a configuration:

* one ``Cell`` object per materialised tape cell, doubly linked by the
  functional edges ``right`` and ``left``, each carrying a functional
  ``symbol`` edge into the printable ``Symbol`` class;
* one ``Head`` object with a functional ``at`` edge to the current
  cell and a functional ``state`` edge into the printable ``State``
  class.

Each transition rule δ(q, a) = (q', b, M) becomes one fixed GOOD
program built from the basic operations:

1. *tape growth* (only for M ∈ {L, R}): a node addition over a crossed
   pattern — "the head reads a in state q and the current cell has no
   right (left) neighbour" — creating a blank neighbour cell, followed
   by an edge addition linking it into the chain (the crossed pattern
   is the Section 4.1 negation macro);
2. *firing*: a node addition tagging the unique (head, cell) matching
   with a transition-specific Fire object (so the subsequent deletions
   and additions can refer to the matched nodes after mutating them);
3. *write / state change / head move*: edge deletions and additions
   anchored at the Fire object;
4. *cleanup*: a node deletion removing the Fire object.

A step applies the program of the transition enabled by the current
configuration; which transition is enabled is read off the instance by
the host driver — the same host-program orchestration the paper's own
implementation uses ("GOOD programs are interpreted by C programs with
embedded SQL statements").  The recursion needed to iterate steps
*inside* GOOD is demonstrated separately by the Fig. 22/29 methods.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.instance import Instance
from repro.core.operations import EdgeAddition, EdgeDeletion, NodeAddition, NodeDeletion, Operation
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.program import Program
from repro.core.scheme import Scheme
from repro.turing.machine import LEFT, RIGHT, Transition, TuringMachine, TuringError


def _fire_label(state: str, symbol: str) -> str:
    return f"Fire:{state}:{symbol}"


class GoodTuringMachine:
    """A Turing machine compiled to GOOD transition programs."""

    def __init__(self, tm: TuringMachine) -> None:
        self.tm = tm
        self.scheme = self._build_scheme()
        self.programs: Dict[Tuple[str, str], Program] = {
            key: Program(self._transition_ops(key, transition))
            for key, transition in sorted(tm.transitions.items())
        }

    # ------------------------------------------------------------------
    # scheme and instance encoding
    # ------------------------------------------------------------------
    def _build_scheme(self) -> Scheme:
        scheme = Scheme(printable_labels=["Symbol", "State"])
        scheme.declare("Cell", "right", "Cell")
        scheme.declare("Cell", "left", "Cell")
        scheme.declare("Cell", "symbol", "Symbol")
        scheme.declare("Head", "at", "Cell")
        scheme.declare("Head", "state", "State")
        for (state, symbol) in self.tm.transitions:
            label = _fire_label(state, symbol)
            scheme.add_object_label(label)
        if self.tm.transitions:
            scheme.add_functional_edge_label("f-head")
            scheme.add_functional_edge_label("f-cell")
            for (state, symbol) in self.tm.transitions:
                label = _fire_label(state, symbol)
                scheme.add_property(label, "f-head", "Head")
                scheme.add_property(label, "f-cell", "Cell")
        return scheme

    def encode(self, input_word: str) -> Instance:
        """The start configuration as a GOOD instance."""
        instance = Instance(self.scheme)
        symbols = list(input_word) if input_word else [self.tm.blank]
        cells: List[int] = []
        for symbol in symbols:
            cell = instance.add_object("Cell")
            instance.add_edge(cell, "symbol", instance.printable("Symbol", symbol))
            cells.append(cell)
        for left_cell, right_cell in zip(cells, cells[1:]):
            instance.add_edge(left_cell, "right", right_cell)
            instance.add_edge(right_cell, "left", left_cell)
        head = instance.add_object("Head")
        instance.add_edge(head, "at", cells[0])
        instance.add_edge(head, "state", instance.printable("State", self.tm.start_state))
        return instance

    # ------------------------------------------------------------------
    # per-transition GOOD programs
    # ------------------------------------------------------------------
    def _firing_pattern(self, state: str, symbol: str) -> Tuple[Pattern, int, int]:
        """head-at-cell-reading-symbol-in-state pattern; (head, cell)."""
        pattern = Pattern(self.scheme)
        head = pattern.add_node("Head")
        cell = pattern.add_node("Cell")
        pattern.add_edge(head, "at", cell)
        pattern.add_edge(head, "state", pattern.add_node("State", state))
        pattern.add_edge(cell, "symbol", pattern.add_node("Symbol", symbol))
        return pattern, head, cell

    def _transition_ops(self, key: Tuple[str, str], transition: Transition) -> List[Operation]:
        state, symbol = key
        fire = _fire_label(state, symbol)
        ops: List[Operation] = []

        if transition.move in (LEFT, RIGHT):
            ahead, behind = ("right", "left") if transition.move == RIGHT else ("left", "right")
            # 1a. grow a blank cell when there is no neighbour ahead
            grow_positive, _, cell = self._firing_pattern(state, symbol)
            # get-or-create: when the read symbol *is* the blank, the
            # pattern already contains the blank Symbol node
            blank_node = grow_positive.printable("Symbol", self.tm.blank)
            grow = NegatedPattern(grow_positive)
            grow.forbid_node("Cell", [(cell, ahead, None)])
            ops.append(NodeAddition(grow, "Cell", [(behind, cell), ("symbol", blank_node)]))
            # 1b. link the grown cell into the chain (any yet-unlinked pair)
            link_positive = Pattern(self.scheme)
            new_cell = link_positive.add_node("Cell")
            old_cell = link_positive.add_node("Cell")
            link_positive.add_edge(new_cell, behind, old_cell)
            link = NegatedPattern(link_positive)
            link.forbid_node("Cell", [(old_cell, ahead, None)])
            ops.append(EdgeAddition(link, [(old_cell, ahead, new_cell)]))

        # 2. fire: tag the unique matching
        tag_pattern, head, cell = self._firing_pattern(state, symbol)
        ops.append(NodeAddition(tag_pattern, fire, [("f-head", head), ("f-cell", cell)]))

        # 3a. write: replace the symbol edge
        erase = Pattern(self.scheme)
        fire_node = erase.add_node(fire)
        cell_node = erase.add_node("Cell")
        old_symbol = erase.add_node("Symbol", symbol)
        erase.add_edge(fire_node, "f-cell", cell_node)
        erase.add_edge(cell_node, "symbol", old_symbol)
        ops.append(EdgeDeletion(erase, [(cell_node, "symbol", old_symbol)]))

        write = Pattern(self.scheme)
        fire_node = write.add_node(fire)
        cell_node = write.add_node("Cell")
        new_symbol = write.add_node("Symbol", transition.write)
        write.add_edge(fire_node, "f-cell", cell_node)
        ops.append(EdgeAddition(write, [(cell_node, "symbol", new_symbol)]))

        # 3b. state change
        leave = Pattern(self.scheme)
        fire_node = leave.add_node(fire)
        head_node = leave.add_node("Head")
        old_state = leave.add_node("State", state)
        leave.add_edge(fire_node, "f-head", head_node)
        leave.add_edge(head_node, "state", old_state)
        ops.append(EdgeDeletion(leave, [(head_node, "state", old_state)]))

        enter = Pattern(self.scheme)
        fire_node = enter.add_node(fire)
        head_node = enter.add_node("Head")
        new_state = enter.add_node("State", transition.next_state)
        enter.add_edge(fire_node, "f-head", head_node)
        ops.append(EdgeAddition(enter, [(head_node, "state", new_state)]))

        # 3c. head move
        if transition.move in (LEFT, RIGHT):
            ahead = "right" if transition.move == RIGHT else "left"
            depart = Pattern(self.scheme)
            fire_node = depart.add_node(fire)
            head_node = depart.add_node("Head")
            cell_node = depart.add_node("Cell")
            depart.add_edge(fire_node, "f-head", head_node)
            depart.add_edge(fire_node, "f-cell", cell_node)
            depart.add_edge(head_node, "at", cell_node)
            ops.append(EdgeDeletion(depart, [(head_node, "at", cell_node)]))

            arrive = Pattern(self.scheme)
            fire_node = arrive.add_node(fire)
            head_node = arrive.add_node("Head")
            cell_node = arrive.add_node("Cell")
            next_node = arrive.add_node("Cell")
            arrive.add_edge(fire_node, "f-head", head_node)
            arrive.add_edge(fire_node, "f-cell", cell_node)
            arrive.add_edge(cell_node, ahead, next_node)
            ops.append(EdgeAddition(arrive, [(head_node, "at", next_node)]))

        # 4. cleanup
        cleanup = Pattern(self.scheme)
        fire_node = cleanup.add_node(fire)
        ops.append(NodeDeletion(cleanup, fire_node))
        return ops

    # ------------------------------------------------------------------
    # the host driver
    # ------------------------------------------------------------------
    def current(self, instance: Instance) -> Tuple[str, str]:
        """Read (state, symbol under the head) off the instance."""
        heads = sorted(instance.nodes_with_label("Head"))
        if len(heads) != 1:
            raise TuringError(f"expected exactly one Head, found {len(heads)}")
        head = heads[0]
        state_node = instance.functional_target(head, "state")
        cell = instance.functional_target(head, "at")
        if state_node is None or cell is None:
            raise TuringError("the Head lost its state or position")
        symbol_node = instance.functional_target(cell, "symbol")
        if symbol_node is None:
            raise TuringError("the current cell lost its symbol")
        return instance.print_of(state_node), instance.print_of(symbol_node)

    def is_halted(self, instance: Instance) -> bool:
        """Whether no transition is enabled."""
        state, symbol = self.current(instance)
        if state in self.tm.halt_states:
            return True
        return (state, symbol) not in self.programs

    def step(self, instance: Instance) -> bool:
        """Apply the enabled transition's program in place.

        Returns ``False`` when the machine has halted instead.
        """
        state, symbol = self.current(instance)
        if state in self.tm.halt_states:
            return False
        program = self.programs.get((state, symbol))
        if program is None:
            return False
        program.run(instance, in_place=True)
        return True

    def run(self, input_word: str, max_steps: int = 10_000) -> Instance:
        """Run to halt; raises :class:`TuringError` on fuel exhaustion."""
        instance = self.encode(input_word)
        for _ in range(max_steps):
            if not self.step(instance):
                return instance
        raise TuringError(
            f"GOOD machine {self.tm.name!r} did not halt within {max_steps} steps"
        )

    def decode(self, instance: Instance) -> Tuple[str, int, List[str]]:
        """(state, head offset from leftmost cell, chain symbols)."""
        heads = sorted(instance.nodes_with_label("Head"))
        head = heads[0]
        state = instance.print_of(instance.functional_target(head, "state"))
        at = instance.functional_target(head, "at")
        # walk to the leftmost cell
        leftmost = at
        seen = set()
        while True:
            if leftmost in seen:
                raise TuringError("the tape chain contains a cycle")
            seen.add(leftmost)
            previous = instance.functional_target(leftmost, "left")
            if previous is None:
                break
            leftmost = previous
        symbols: List[str] = []
        offset = 0
        cell: Optional[int] = leftmost
        index = 0
        while cell is not None:
            if cell == at:
                offset = index
            symbol_node = instance.functional_target(cell, "symbol")
            symbols.append(instance.print_of(symbol_node))
            cell = instance.functional_target(cell, "right")
            index += 1
            if index > instance.node_count:
                raise TuringError("the tape chain contains a cycle")
        return state, offset, symbols

    def output_word(self, instance: Instance) -> str:
        """Chain symbols trimmed of leading/trailing blanks."""
        _, _, symbols = self.decode(instance)
        word = "".join(symbols).strip(self.tm.blank)
        return word
