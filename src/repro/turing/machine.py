"""A direct deterministic single-tape Turing machine simulator.

This is the oracle against which the GOOD encoding of
:mod:`repro.turing.encoding` is checked step by step.  The tape is
unbounded in both directions (a dict position → symbol with a blank
default); a configuration is (state, head position, tape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.core.errors import GoodError

LEFT = "L"
RIGHT = "R"
STAY = "N"


class TuringError(GoodError):
    """Ill-formed machine or a run that exceeded its fuel."""


@dataclass(frozen=True)
class Transition:
    """δ(state, read) = (next state, write, move)."""

    next_state: str
    write: str
    move: str

    def __post_init__(self) -> None:
        if self.move not in (LEFT, RIGHT, STAY):
            raise TuringError(f"move must be L, R or N, got {self.move!r}")


@dataclass
class Configuration:
    """A full machine configuration."""

    state: str
    position: int
    tape: Dict[int, str]
    blank: str

    def read(self) -> str:
        """The symbol under the head."""
        return self.tape.get(self.position, self.blank)

    def tape_snapshot(self) -> Tuple[Tuple[int, str], ...]:
        """Non-blank cells as sorted (position, symbol) pairs."""
        return tuple(
            (position, symbol)
            for position, symbol in sorted(self.tape.items())
            if symbol != self.blank
        )


@dataclass
class TuringMachine:
    """A deterministic single-tape Turing machine."""

    states: FrozenSet[str]
    alphabet: FrozenSet[str]
    blank: str
    transitions: Mapping[Tuple[str, str], Transition]
    start_state: str
    halt_states: FrozenSet[str]
    name: str = "tm"

    def __post_init__(self) -> None:
        if self.blank not in self.alphabet:
            raise TuringError("the blank symbol must be in the alphabet")
        if self.start_state not in self.states:
            raise TuringError("the start state must be a state")
        for (state, symbol), transition in self.transitions.items():
            if state not in self.states or transition.next_state not in self.states:
                raise TuringError(f"transition {state, symbol} references unknown states")
            if symbol not in self.alphabet or transition.write not in self.alphabet:
                raise TuringError(f"transition {state, symbol} references unknown symbols")
            if state in self.halt_states:
                raise TuringError(f"halt state {state!r} has an outgoing transition")

    def initial(self, input_word: str) -> Configuration:
        """The start configuration on ``input_word`` (head at cell 0)."""
        for symbol in input_word:
            if symbol not in self.alphabet:
                raise TuringError(f"input symbol {symbol!r} not in the alphabet")
        tape = {index: symbol for index, symbol in enumerate(input_word)}
        return Configuration(self.start_state, 0, tape, self.blank)

    def is_halted(self, config: Configuration) -> bool:
        """Whether the configuration is terminal."""
        if config.state in self.halt_states:
            return True
        return (config.state, config.read()) not in self.transitions

    def step(self, config: Configuration) -> Configuration:
        """One move; raises on a halted configuration."""
        key = (config.state, config.read())
        if config.state in self.halt_states or key not in self.transitions:
            raise TuringError(f"no transition from {key!r}")
        transition = self.transitions[key]
        tape = dict(config.tape)
        tape[config.position] = transition.write
        position = config.position
        if transition.move == LEFT:
            position -= 1
        elif transition.move == RIGHT:
            position += 1
        return Configuration(transition.next_state, position, tape, self.blank)

    def run(self, input_word: str, max_steps: int = 10_000) -> Configuration:
        """Run to halt (or raise after ``max_steps``)."""
        config = self.initial(input_word)
        for _ in range(max_steps):
            if self.is_halted(config):
                return config
            config = self.step(config)
        raise TuringError(f"machine {self.name!r} did not halt within {max_steps} steps")

    def output_word(self, config: Configuration) -> str:
        """The tape contents from the leftmost to rightmost non-blank."""
        snapshot = config.tape_snapshot()
        if not snapshot:
            return ""
        low = snapshot[0][0]
        high = snapshot[-1][0]
        return "".join(config.tape.get(i, self.blank) for i in range(low, high + 1))


# ----------------------------------------------------------------------
# example machines
# ----------------------------------------------------------------------


def bit_flipper_machine() -> TuringMachine:
    """Flip every bit of a binary word, halt at its right end."""
    transitions = {
        ("scan", "0"): Transition("scan", "1", RIGHT),
        ("scan", "1"): Transition("scan", "0", RIGHT),
        ("scan", "_"): Transition("done", "_", STAY),
    }
    return TuringMachine(
        states=frozenset(["scan", "done"]),
        alphabet=frozenset(["0", "1", "_"]),
        blank="_",
        transitions=transitions,
        start_state="scan",
        halt_states=frozenset(["done"]),
        name="bit-flipper",
    )


def binary_increment_machine() -> TuringMachine:
    """Add one to a binary number (most significant bit first)."""
    transitions = {
        # go to the rightmost digit
        ("right", "0"): Transition("right", "0", RIGHT),
        ("right", "1"): Transition("right", "1", RIGHT),
        ("right", "_"): Transition("carry", "_", LEFT),
        # add with carry, moving left
        ("carry", "1"): Transition("carry", "0", LEFT),
        ("carry", "0"): Transition("done", "1", STAY),
        ("carry", "_"): Transition("done", "1", STAY),
    }
    return TuringMachine(
        states=frozenset(["right", "carry", "done"]),
        alphabet=frozenset(["0", "1", "_"]),
        blank="_",
        transitions=transitions,
        start_state="right",
        halt_states=frozenset(["done"]),
        name="binary-increment",
    )


def parity_machine() -> TuringMachine:
    """Erase a binary word and leave E/O for even/odd number of 1s."""
    transitions = {
        ("even", "0"): Transition("even", "_", RIGHT),
        ("even", "1"): Transition("odd", "_", RIGHT),
        ("odd", "0"): Transition("odd", "_", RIGHT),
        ("odd", "1"): Transition("even", "_", RIGHT),
        ("even", "_"): Transition("halt", "E", STAY),
        ("odd", "_"): Transition("halt", "O", STAY),
    }
    return TuringMachine(
        states=frozenset(["even", "odd", "halt"]),
        alphabet=frozenset(["0", "1", "E", "O", "_"]),
        blank="_",
        transitions=transitions,
        start_state="even",
        halt_states=frozenset(["halt"]),
        name="parity",
    )
