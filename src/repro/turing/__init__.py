"""Section 4.3 — computational completeness via Turing machines.

"The full language with methods is sufficiently strong to simulate
arbitrary Turing Machines; this can be shown using well-known
techniques."

* :mod:`repro.turing.machine` — a direct single-tape deterministic
  Turing machine simulator (the oracle) plus a few example machines;
* :mod:`repro.turing.encoding` — the GOOD encoding: tape cells as a
  doubly-linked chain of Cell objects with a ``symbol`` edge, the head
  as a Head object with ``at`` and ``state`` edges, and one GOOD
  program (pure additions/deletions, negation macro for tape growth)
  per transition rule.

Experiment C3 steps both simulations in lockstep and checks the full
configuration (state, head position, tape content) after every step.
"""

from repro.turing.encoding import GoodTuringMachine
from repro.turing.machine import (
    Transition,
    TuringMachine,
    binary_increment_machine,
    bit_flipper_machine,
    parity_machine,
)

__all__ = [
    "GoodTuringMachine",
    "Transition",
    "TuringMachine",
    "binary_increment_machine",
    "bit_flipper_machine",
    "parity_machine",
]
