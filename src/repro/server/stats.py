"""Live server statistics: counters and a latency ring buffer.

The ``STATS`` verb must be cheap enough to call while the server is
under load, so everything here is O(1) per recorded request except the
percentile computation, which sorts the (bounded) ring on demand.

All mutation happens on the event-loop thread — request timing is
recorded after the executor hands the result back — so no locking is
needed.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class LatencyRing:
    """The last ``capacity`` request latencies, with percentiles."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: List[float] = []
        self._next = 0

    def record(self, seconds: float) -> None:
        """Add one observation, evicting the oldest when full."""
        if len(self._ring) < self.capacity:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._ring)

    def percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile in seconds; ``None`` when empty."""
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, Any]:
        """``{samples, p50_ms, p95_ms, max_ms}`` over the window."""
        p50 = self.percentile(0.50)
        p95 = self.percentile(0.95)
        return {
            "samples": len(self._ring),
            "p50_ms": None if p50 is None else round(p50 * 1000, 3),
            "p95_ms": None if p95 is None else round(p95 * 1000, 3),
            "max_ms": None if not self._ring else round(max(self._ring) * 1000, 3),
        }

    def raw_ms(self) -> List[float]:
        """The window's samples in milliseconds, unordered.

        The cluster router merges per-worker windows from these raw
        samples and recomputes percentiles over the union — averaging
        two p95s is statistically meaningless, merging the rings is not.
        """
        return [round(seconds * 1000, 3) for seconds in self._ring]


def percentiles_from_samples(samples_ms: List[float]) -> Dict[str, Any]:
    """Nearest-rank p50/p95/max over raw millisecond samples.

    The merge half of :meth:`LatencyRing.raw_ms`: concatenate the rings
    of several processes, then compute the percentiles once over the
    union.
    """
    if not samples_ms:
        return {"samples": 0, "p50_ms": None, "p95_ms": None, "max_ms": None}
    ordered = sorted(samples_ms)
    last = len(ordered) - 1

    def rank(fraction: float) -> float:
        return ordered[min(last, max(0, round(fraction * last)))]

    return {
        "samples": len(ordered),
        "p50_ms": round(rank(0.50), 3),
        "p95_ms": round(rank(0.95), 3),
        "max_ms": round(ordered[-1], 3),
    }


class DatabaseStats:
    """Per-database counters plus a latency window."""

    def __init__(self, ring_capacity: int = 1024) -> None:
        self.requests = 0
        self.errors = 0
        self.runs = 0
        self.queries = 0
        self.matchings_enumerated = 0
        self.operations_applied = 0
        self.rollbacks = 0
        # matcher/fixpoint work split (repro.core.counters tallies):
        # how much matching was full vs delta-constrained, and how many
        # fixpoint rounds/evaluations ran on behalf of this database
        self.full_matchings = 0
        self.delta_matchings = 0
        self.fixpoint_rounds = 0
        self.fixpoint_runs = 0
        # planner work (repro.plan tallies): cache effectiveness, how
        # many index probes the executor issued, and the multiway-join
        # machinery — sorted-adjacency (CSR) indexes built, galloping
        # seeks performed, k-way intersections executed
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.index_probes = 0
        self.index_builds = 0
        self.leapfrog_seeks = 0
        self.intersections = 0
        # transaction work (repro.txn tallies): undo-journal entries
        # recorded, full snapshots captured (fallback protocol only),
        # rollbacks replayed and the estimated snapshot bytes the
        # journal protocol avoided copying
        self.txn_journal_entries = 0
        self.txn_snapshot_captures = 0
        self.txn_rollbacks = 0
        self.txn_bytes_avoided = 0
        # durability work (repro.wal tallies): WAL records appended,
        # fsyncs issued (group commit makes this < wal_appends), bytes
        # logged, checkpoints taken, boot-time recoveries performed and
        # torn tail records dropped by those recoveries
        self.wal_appends = 0
        self.wal_fsyncs = 0
        self.wal_bytes = 0
        self.checkpoints = 0
        self.recoveries = 0
        self.wal_torn = 0
        self.latency = LatencyRing(ring_capacity)
        # how long requests waited to *enter* the database's lock; under
        # MVCC reads record a literal 0.0 (they never take a lock), so
        # this window directly shows what the writer-only mutex costs
        self.lock_waits = LatencyRing(ring_capacity)

    def record_request(self, seconds: float, error: bool = False) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.record(seconds)

    def record_lock_wait(self, seconds: float) -> None:
        self.lock_waits.record(seconds)

    def snapshot(self, raw: bool = False) -> Dict[str, Any]:
        payload = self._snapshot()
        if raw:
            payload["latency_raw_ms"] = self.latency.raw_ms()
            payload["lock_wait_raw_ms"] = self.lock_waits.raw_ms()
        return payload

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "runs": self.runs,
            "queries": self.queries,
            "matchings_enumerated": self.matchings_enumerated,
            "operations_applied": self.operations_applied,
            "rollbacks": self.rollbacks,
            "full_matchings": self.full_matchings,
            "delta_matchings": self.delta_matchings,
            "fixpoint_rounds": self.fixpoint_rounds,
            "fixpoint_runs": self.fixpoint_runs,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "index_probes": self.index_probes,
            "index_builds": self.index_builds,
            "leapfrog_seeks": self.leapfrog_seeks,
            "intersections": self.intersections,
            "txn_journal_entries": self.txn_journal_entries,
            "txn_snapshot_captures": self.txn_snapshot_captures,
            "txn_rollbacks": self.txn_rollbacks,
            "txn_bytes_avoided": self.txn_bytes_avoided,
            "wal_appends": self.wal_appends,
            "wal_fsyncs": self.wal_fsyncs,
            "wal_bytes": self.wal_bytes,
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
            "wal_torn": self.wal_torn,
            "latency": self.latency.snapshot(),
            "lock_wait": self.lock_waits.snapshot(),
        }


class ServerStats:
    """Whole-server view: totals plus one bucket per database."""

    def __init__(self, ring_capacity: int = 1024) -> None:
        self.started_at = time.time()
        self._ring_capacity = ring_capacity
        self.total = DatabaseStats(ring_capacity)
        self.per_database: Dict[str, DatabaseStats] = {}
        self.connections_open = 0
        self.connections_total = 0

    def database(self, name: str) -> DatabaseStats:
        """The (lazily created) bucket for one database."""
        bucket = self.per_database.get(name)
        if bucket is None:
            bucket = self.per_database[name] = DatabaseStats(self._ring_capacity)
        return bucket

    def forget_database(self, name: str) -> None:
        """Drop a bucket (after ``DROP``); totals keep the history."""
        self.per_database.pop(name, None)

    def record(self, database: Optional[str], seconds: float, error: bool = False) -> None:
        """Record one completed request against the totals and, when the
        request addressed a database, against that database's bucket."""
        self.total.record_request(seconds, error=error)
        if database is not None:
            self.database(database).record_request(seconds, error=error)

    def record_lock_wait(self, database: Optional[str], seconds: float) -> None:
        """Record how long one request waited for its database lock."""
        self.total.record_lock_wait(seconds)
        if database is not None:
            self.database(database).record_lock_wait(seconds)

    def charge(self, database: Optional[str], **charges: int) -> None:
        """Add verb-specific counters (runs, matchings_enumerated, ...)
        to the totals and to the addressed database's bucket."""
        buckets = [self.total]
        if database is not None:
            buckets.append(self.database(database))
        for bucket in buckets:
            for key, value in charges.items():
                setattr(bucket, key, getattr(bucket, key) + value)

    def snapshot(self, queue_depth: int = 0, running: int = 0, raw: bool = False) -> Dict[str, Any]:
        """The full ``STATS`` payload.

        With ``raw=True`` every latency window also carries its raw
        millisecond samples (``latency_raw_ms`` / ``lock_wait_raw_ms``)
        so a cluster router can merge rings across workers instead of
        averaging percentiles.
        """
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "queue_depth": queue_depth,
            "running": running,
            "total": self.total.snapshot(raw=raw),
            "databases": {
                name: bucket.snapshot(raw=raw)
                for name, bucket in sorted(self.per_database.items())
            },
        }
