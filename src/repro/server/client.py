"""A blocking socket client for the GOOD server.

Usable from tests, scripts and the ``repro connect`` REPL without any
asyncio on the caller's side::

    with GoodClient("127.0.0.1", 2590) as client:
        client.use("library")
        client.run("addnode Person() {}")
        for matching in client.match("{ p: Person }")["matchings"]:
            print(matching["p"])

Every call sends one request frame and blocks for its response.  A
failure response raises :class:`RemoteError`, which carries the
structured payload (``code``, ``error_type``, ``details``) so callers
can dispatch on stable codes rather than message text.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Any, Dict, Optional

from repro.core.errors import GoodError
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_response,
    encode_frame,
)

#: RemoteError codes worth retrying: the failure is in the transport or
#: a crashed cluster member, not in the request itself.
TRANSIENT_ERROR_CODES = frozenset({"WORKER_UNAVAILABLE"})


class RemoteError(GoodError):
    """A structured error response from the server."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.code = payload.get("code", "INTERNAL")
        self.error_type = payload.get("type", "")
        self.details = payload.get("details", {})
        message = payload.get("message", "")
        super().__init__(f"[{self.code}] {message}")
        self.remote_message = message


class GoodClient:
    """One blocking connection to a :class:`~repro.server.GoodServer`.

    ``retries`` (default 0 — off) enables bounded reconnect-and-resend
    on *transient* failures: connection refused/reset/broken-pipe, an
    EOF mid-response, or a structured ``WORKER_UNAVAILABLE`` error from
    a cluster router whose shard worker died mid-request.  Each attempt
    sleeps ``backoff * 2^attempt``, jittered ±50%, before reconnecting
    — the jitter keeps a thundering herd of clients from re-arriving in
    lockstep while a crashed worker restarts.

    Caveat worth knowing: a retried ``RUN`` whose first attempt died
    *after* the server committed re-applies the program.  The server's
    runs are atomic either way; callers for whom duplicate application
    matters should keep retries off for writes (the default).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 60.0,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: transient failures survived (observable in tests)
        self.retries_used = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> "GoodClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent; best-effort ``BYE``)."""
        if self._sock is None:
            return
        try:
            self._sock.sendall(encode_frame(self._frame("BYE", {})))
        except OSError:
            pass
        try:
            self._file.close()
            self._sock.close()
        finally:
            self._sock = None
            self._file = None

    def __enter__(self) -> "GoodClient":
        return self.connect()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------
    def _frame(self, verb: str, args: Dict[str, Any]) -> Dict[str, Any]:
        return {"good": PROTOCOL_VERSION, "id": next(self._ids), "verb": verb, "args": args}

    def call(self, verb: str, **args: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the ``result``.

        With ``retries > 0``, transient transport failures tear the
        connection down, back off with jitter, reconnect and resend —
        up to ``retries`` times before the error propagates.
        """
        attempt = 0
        while True:
            try:
                return self._call_once(verb, args)
            except Exception as error:
                if attempt >= self.retries or not self._is_transient(error):
                    raise
                attempt += 1
                self.retries_used += 1
                self._teardown()
                delay = self.backoff * (2 ** (attempt - 1))
                time.sleep(delay * (0.5 + random.random()))

    def _call_once(self, verb: str, args: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        frame = self._frame(verb, args)
        self._sock.sendall(encode_frame(frame))
        line = self._file.readline()
        if not line:
            # surface EOF as a reset so the retry machinery and callers
            # treat a died-mid-response server like a refused connect
            raise ConnectionResetError("connection closed by the server")
        response = decode_response(line)
        if response.get("id") != frame["id"]:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request id {frame['id']!r}"
            )
        if not response["ok"]:
            raise RemoteError(response.get("error", {}))
        return response.get("result", {})

    @staticmethod
    def _is_transient(error: BaseException) -> bool:
        if isinstance(
            error,
            (
                ConnectionRefusedError,
                ConnectionResetError,
                ConnectionAbortedError,
                BrokenPipeError,
            ),
        ):
            return True
        return isinstance(error, RemoteError) and error.code in TRANSIENT_ERROR_CODES

    def _teardown(self) -> None:
        """Drop the connection without the BYE courtesy (it is dead)."""
        if self._sock is None:
            return
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        finally:
            self._sock = None
            self._file = None

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        return self.call("HELLO")

    def ping(self) -> bool:
        return bool(self.call("PING").get("pong"))

    def list(self) -> Dict[str, Any]:
        return self.call("LIST")

    def use(self, name: str) -> Dict[str, Any]:
        return self.call("USE", name=name)

    def create(
        self,
        name: str,
        backend: str = "native",
        scheme: Optional[Dict[str, Any]] = None,
        instance: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        args: Dict[str, Any] = {"name": name, "backend": backend}
        if scheme is not None:
            args["scheme"] = scheme
        if instance is not None:
            args["instance"] = instance
        return self.call("CREATE", **args)

    def drop(self, name: str) -> Dict[str, Any]:
        return self.call("DROP", name=name)

    def load(self, name: str, path: str, backend: str = "native") -> Dict[str, Any]:
        return self.call("LOAD", name=name, path=path, backend=backend)

    def run(self, program: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("RUN", program=program, **({"db": db} if db else {}))

    def query(self, program: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("QUERY", program=program, **({"db": db} if db else {}))

    def match(
        self, pattern: str, limit: Optional[int] = None, db: Optional[str] = None
    ) -> Dict[str, Any]:
        args: Dict[str, Any] = {"pattern": pattern}
        if limit is not None:
            args["limit"] = limit
        if db:
            args["db"] = db
        return self.call("MATCH", **args)

    def explain(self, pattern: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("EXPLAIN", pattern=pattern, **({"db": db} if db else {}))

    def browse(self, node: int, hops: int = 1, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("BROWSE", node=node, hops=hops, **({"db": db} if db else {}))

    def export(self, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("EXPORT", **({"db": db} if db else {}))

    def save(self, path: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("SAVE", path=path, **({"db": db} if db else {}))

    def undo(self, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("UNDO", **({"db": db} if db else {}))

    def checkpoint(self, db: Optional[str] = None) -> Dict[str, Any]:
        """Force a checkpoint: snapshot to disk, truncate the WAL."""
        return self.call("CHECKPOINT", **({"db": db} if db else {}))

    def limit(
        self,
        max_matchings: Optional[int] = None,
        max_call_depth: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Set this session's budgets; omitted budgets are unchanged.

        With no arguments this just reports the current budgets.
        """
        args: Dict[str, Any] = {}
        if max_matchings is not None:
            args["max_matchings"] = max_matchings
        if max_call_depth is not None:
            args["max_call_depth"] = max_call_depth
        return self.call("LIMIT", **args)

    def stats(self) -> Dict[str, Any]:
        return self.call("STATS")
