"""A blocking socket client for the GOOD server.

Usable from tests, scripts and the ``repro connect`` REPL without any
asyncio on the caller's side::

    with GoodClient("127.0.0.1", 2590) as client:
        client.use("library")
        client.run("addnode Person() {}")
        for matching in client.match("{ p: Person }")["matchings"]:
            print(matching["p"])

Every call sends one request frame and blocks for its response.  A
failure response raises :class:`RemoteError`, which carries the
structured payload (``code``, ``error_type``, ``details``) so callers
can dispatch on stable codes rather than message text.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, Optional

from repro.core.errors import GoodError
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_response,
    encode_frame,
)


class RemoteError(GoodError):
    """A structured error response from the server."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.code = payload.get("code", "INTERNAL")
        self.error_type = payload.get("type", "")
        self.details = payload.get("details", {})
        message = payload.get("message", "")
        super().__init__(f"[{self.code}] {message}")
        self.remote_message = message


class GoodClient:
    """One blocking connection to a :class:`~repro.server.GoodServer`."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> "GoodClient":
        """Open the TCP connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent; best-effort ``BYE``)."""
        if self._sock is None:
            return
        try:
            self._sock.sendall(encode_frame(self._frame("BYE", {})))
        except OSError:
            pass
        try:
            self._file.close()
            self._sock.close()
        finally:
            self._sock = None
            self._file = None

    def __enter__(self) -> "GoodClient":
        return self.connect()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------
    def _frame(self, verb: str, args: Dict[str, Any]) -> Dict[str, Any]:
        return {"good": PROTOCOL_VERSION, "id": next(self._ids), "verb": verb, "args": args}

    def call(self, verb: str, **args: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the ``result``."""
        self.connect()
        frame = self._frame(verb, args)
        self._sock.sendall(encode_frame(frame))
        line = self._file.readline()
        if not line:
            raise ProtocolError("connection closed by the server")
        response = decode_response(line)
        if response.get("id") != frame["id"]:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request id {frame['id']!r}"
            )
        if not response["ok"]:
            raise RemoteError(response.get("error", {}))
        return response.get("result", {})

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        return self.call("HELLO")

    def ping(self) -> bool:
        return bool(self.call("PING").get("pong"))

    def list(self) -> Dict[str, Any]:
        return self.call("LIST")

    def use(self, name: str) -> Dict[str, Any]:
        return self.call("USE", name=name)

    def create(
        self,
        name: str,
        backend: str = "native",
        scheme: Optional[Dict[str, Any]] = None,
        instance: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        args: Dict[str, Any] = {"name": name, "backend": backend}
        if scheme is not None:
            args["scheme"] = scheme
        if instance is not None:
            args["instance"] = instance
        return self.call("CREATE", **args)

    def drop(self, name: str) -> Dict[str, Any]:
        return self.call("DROP", name=name)

    def load(self, name: str, path: str, backend: str = "native") -> Dict[str, Any]:
        return self.call("LOAD", name=name, path=path, backend=backend)

    def run(self, program: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("RUN", program=program, **({"db": db} if db else {}))

    def query(self, program: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("QUERY", program=program, **({"db": db} if db else {}))

    def match(
        self, pattern: str, limit: Optional[int] = None, db: Optional[str] = None
    ) -> Dict[str, Any]:
        args: Dict[str, Any] = {"pattern": pattern}
        if limit is not None:
            args["limit"] = limit
        if db:
            args["db"] = db
        return self.call("MATCH", **args)

    def explain(self, pattern: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("EXPLAIN", pattern=pattern, **({"db": db} if db else {}))

    def browse(self, node: int, hops: int = 1, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("BROWSE", node=node, hops=hops, **({"db": db} if db else {}))

    def export(self, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("EXPORT", **({"db": db} if db else {}))

    def save(self, path: str, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("SAVE", path=path, **({"db": db} if db else {}))

    def undo(self, db: Optional[str] = None) -> Dict[str, Any]:
        return self.call("UNDO", **({"db": db} if db else {}))

    def checkpoint(self, db: Optional[str] = None) -> Dict[str, Any]:
        """Force a checkpoint: snapshot to disk, truncate the WAL."""
        return self.call("CHECKPOINT", **({"db": db} if db else {}))

    def limit(
        self,
        max_matchings: Optional[int] = None,
        max_call_depth: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Set this session's budgets; omitted budgets are unchanged.

        With no arguments this just reports the current budgets.
        """
        args: Dict[str, Any] = {}
        if max_matchings is not None:
            args["max_matchings"] = max_matchings
        if max_call_depth is not None:
            args["max_call_depth"] = max_call_depth
        return self.call("LIMIT", **args)

    def stats(self) -> Dict[str, Any]:
        return self.call("STATS")
