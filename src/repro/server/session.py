"""Per-connection server sessions: verb dispatch, locking, budgets.

A :class:`ServerSession` lives for one TCP connection.  It tracks the
client's current database (``USE``), its resource budgets (``LIMIT``,
seeded from the server defaults) and routes each verb through the
right concurrency discipline:

========  ==================  ==================================
mode      lock                runs where
========  ==================  ==================================
local     none                event loop (cheap, metadata only)
read      none (MVCC) /       worker thread, budgets armed,
          read (legacy)       against a pinned snapshot version
write     write               worker thread, budgets armed
catalog   catalog mutex +     worker thread
          database write
========  ==================  ==================================

Under MVCC (the server default) a read verb never waits for any lock:
it pins the database's current published version
(:meth:`~repro.server.catalog.ServedDatabase.read_view`) and executes
against that immutable snapshot, releasing the pin when done.  A RUN
committing concurrently publishes a *new* version; the in-flight read
keeps seeing its own.

Budgets are armed *inside the worker thread* via
:func:`repro.txn.guards.limits` — the guard stacks are thread-local, so
one session's budget never charges another session's work.  A budget
overrun surfaces as a structured ``RESOURCE_LIMIT`` error; because runs
are atomic, the database state is untouched.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core import counters as _counters
from repro.server import protocol
from repro.server.catalog import ServedDatabase
from repro.server.protocol import ProtocolError, require_arg
from repro.txn.guards import ResourceLimits
from repro.wal.record import WalError

_SESSION_IDS = itertools.count(1)

#: verb -> (handler name, mode)
VERBS: Dict[str, Tuple[str, str]] = {}


def _verb(name: str, mode: str) -> Callable[[Callable], Callable]:
    def register(handler: Callable) -> Callable:
        VERBS[name] = (handler.__name__, mode)
        return handler

    return register


def _report_json(report: Any) -> Dict[str, Any]:
    return {
        "operation": report.operation,
        "matchings": report.matching_count,
        "nodes_added": len(report.nodes_added),
        "nodes_removed": len(report.nodes_removed),
        "edges_added": len(report.edges_added),
        "edges_removed": len(report.edges_removed),
        "summary": report.summary(),
    }


def _txn_charges(tally: Any) -> Dict[str, int]:
    """The transaction-layer slice of a counters tally, for STATS."""
    return {
        "txn_journal_entries": tally.txn_journal_entries,
        "txn_snapshot_captures": tally.txn_snapshot_captures,
        "txn_rollbacks": tally.txn_rollbacks,
        "txn_bytes_avoided": tally.txn_bytes_avoided,
    }


def _attach_charges(error: BaseException, charges: Dict[str, int]) -> None:
    """Stash stats charges on a failing request's exception."""
    try:
        error._charges = charges
    except AttributeError:  # pragma: no cover - exceptions with __slots__
        pass


class ServerSession:
    """One client's view of the server."""

    def __init__(self, server: Any) -> None:
        self.server = server
        self.catalog = server.catalog
        self.session_id = next(_SESSION_IDS)
        self.database_name: Optional[str] = None
        self.limits: ResourceLimits = server.default_limits
        self.closed = False

    def _request_limits(self, args: Dict[str, Any]) -> ResourceLimits:
        """The budgets for one request.

        A cluster router multiplexes many client sessions over a pooled
        worker connection, so ``LIMIT``-style per-connection state cannot
        carry the budgets; the router instead injects them per request as
        an ``_limits`` object, which overrides this connection's budgets
        for that request only.
        """
        override = args.pop("_limits", None)
        if override is None:
            return self.limits
        if not isinstance(override, dict):
            raise ProtocolError("_limits must be an object")
        matchings = override.get("max_matchings")
        depth = override.get("max_call_depth")
        for label, value in (("max_matchings", matchings), ("max_call_depth", depth)):
            if value is not None and (not isinstance(value, int) or value < 0):
                raise ProtocolError(f"_limits.{label} must be a non-negative integer or null")
        return ResourceLimits(max_matchings=matchings, max_call_depth=depth)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, verb: str, args: Dict[str, Any]) -> Tuple[Dict[str, Any], Optional[str]]:
        """Run one verb; returns ``(result, database_name_for_stats)``."""
        entry = VERBS.get(verb)
        if entry is None:
            raise ProtocolError(f"unknown verb {verb!r} (known: {', '.join(sorted(VERBS))})")
        handler_name, mode = entry
        handler = getattr(self, handler_name)
        server = self.server
        if mode == "local":
            return handler(args), self.database_name
        if mode == "catalog":
            name = require_arg(args, "name", str)
            async with server.catalog_lock:
                async with server.lock_for(name).write_locked(server.lock_timeout):
                    result = await server.run_blocking(lambda: handler(args))
        elif mode == "read" and server.mvcc:
            name = args.get("db", self.database_name)
            if not isinstance(name, str) or not name:
                raise ProtocolError("no database selected (USE one first or pass 'db')")
            limits = self._request_limits(args)
            database = self.catalog.get(name)
            # MVCC fast path: pin the current version and run against
            # it — no lock of any kind, so a long query never delays a
            # writer (and vice versa)
            reader = database.read_view()
            server.stats.record_lock_wait(name, 0.0)
            try:
                result = await server.run_blocking(
                    lambda: handler(reader, args), limits=limits
                )
            except Exception as error:
                error_charges = dict(getattr(error, "_charges", None) or {})
                if error_charges:
                    server.stats.charge(name, **error_charges)
                raise
            finally:
                reader.release()
        else:
            name = args.get("db", self.database_name)
            if not isinstance(name, str) or not name:
                raise ProtocolError("no database selected (USE one first or pass 'db')")
            limits = self._request_limits(args)
            database = self.catalog.get(name)
            lock = server.lock_for(name)
            locked = (
                lock.read_locked(server.lock_timeout)
                if mode == "read"
                else lock.write_locked(server.lock_timeout)
            )
            ticket = None
            checkpoint_job = None
            wait_started = time.perf_counter()
            async with locked:
                server.stats.record_lock_wait(name, time.perf_counter() - wait_started)
                try:
                    result = await server.run_blocking(
                        lambda: handler(database, args), limits=limits
                    )
                except Exception as error:
                    error_charges = dict(getattr(error, "_charges", None) or {})
                    if getattr(error, "failure_report", None) is not None:
                        error_charges["rollbacks"] = error_charges.get("rollbacks", 0) + 1
                    if error_charges:
                        server.stats.charge(name, **error_charges)
                    raise
                ticket = result.pop("_durability", None)
                checkpoint_job = result.pop("_checkpoint_job", None)
            # durability gate: acknowledge only once the commit record
            # is fsynced.  Waiting AFTER the write lock is released is
            # what lets concurrent commits coalesce into one group fsync
            if ticket is not None:
                try:
                    if ticket.done:
                        ticket.wait(0)
                    else:
                        await server.run_blocking(ticket.wait)
                except Exception:
                    raise
                except BaseException as error:
                    # simulated-crash failures derive from BaseException
                    # so journals can't swallow them; surface them to
                    # the client as a structured WAL error instead of
                    # tearing down the event loop
                    raise WalError(f"commit is not durable: {error}") from error
            # checkpoint streaming happens here, *after* the write lock
            # is released: the checkpoint reads from a version pinned at
            # rotation time, so writers proceed while it serializes
            if checkpoint_job is not None:
                info = await server.run_blocking(checkpoint_job.stream)
                if result.pop("_checkpoint_merge", False):
                    result.update(info)
                if database.durability is not None:
                    extra = database.durability.drain_charges()
                    if extra:
                        server.stats.charge(name, **extra)
        charges = result.pop("_charges", None)
        if charges:
            server.stats.charge(name, **charges)
        return result, name

    # ------------------------------------------------------------------
    # local verbs (event loop, no lock)
    # ------------------------------------------------------------------
    @_verb("HELLO", "local")
    def _hello(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "server": "repro.server",
            "protocol": protocol.PROTOCOL_VERSION,
            "session": self.session_id,
            "databases": self.catalog.describe(),
        }

    @_verb("PING", "local")
    def _ping(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    @_verb("LIST", "local")
    def _list(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return {"databases": self.catalog.describe()}

    @_verb("USE", "local")
    def _use(self, args: Dict[str, Any]) -> Dict[str, Any]:
        name = require_arg(args, "name", str)
        database = self.catalog.get(name)
        self.database_name = name
        return {"using": database.describe()}

    @_verb("LIMIT", "local")
    def _limit(self, args: Dict[str, Any]) -> Dict[str, Any]:
        matchings = args.get("max_matchings", self.limits.max_matchings)
        depth = args.get("max_call_depth", self.limits.max_call_depth)
        for label, value in (("max_matchings", matchings), ("max_call_depth", depth)):
            if value is not None and (not isinstance(value, int) or value < 0):
                raise ProtocolError(f"{label} must be a non-negative integer or null")
        self.limits = ResourceLimits(max_matchings=matchings, max_call_depth=depth)
        return {"max_matchings": matchings, "max_call_depth": depth}

    @_verb("STATS", "local")
    def _stats(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return self.server.stats_snapshot(raw=bool(args.get("raw")))

    @_verb("REPLICA", "local")
    def _replica(self, args: Dict[str, Any]) -> Dict[str, Any]:
        return self.server.replication_info()

    @_verb("BYE", "local")
    def _bye(self, args: Dict[str, Any]) -> Dict[str, Any]:
        self.closed = True
        return {"bye": True}

    # ------------------------------------------------------------------
    # catalog verbs (catalog mutex + write lock)
    # ------------------------------------------------------------------
    @_verb("CREATE", "catalog")
    def _create(self, args: Dict[str, Any]) -> Dict[str, Any]:
        name = require_arg(args, "name", str)
        database = self.catalog.create(
            name,
            backend=args.get("backend", "native"),
            scheme_data=args.get("scheme"),
            instance_data=args.get("instance"),
        )
        return {"created": database.describe()}

    @_verb("DROP", "catalog")
    def _drop(self, args: Dict[str, Any]) -> Dict[str, Any]:
        name = require_arg(args, "name", str)
        self.catalog.drop(name)
        self.server.stats.forget_database(name)
        if self.database_name == name:
            self.database_name = None
        return {"dropped": name}

    @_verb("LOAD", "catalog")
    def _load(self, args: Dict[str, Any]) -> Dict[str, Any]:
        name = require_arg(args, "name", str)
        path = require_arg(args, "path", str)
        database = self.catalog.load_file(name, path, backend=args.get("backend", "native"))
        return {"loaded": database.describe()}

    # ------------------------------------------------------------------
    # write verbs (exclusive)
    # ------------------------------------------------------------------
    @_verb("RUN", "write")
    def _run(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        source = require_arg(args, "program", str)
        # if this run trips the auto-checkpoint threshold, hand the
        # streaming half of the checkpoint back to dispatch so it runs
        # after the write lock is released
        database._defer_checkpoints = True
        # the handler runs wholly inside one worker thread, so the
        # thread-local collector sees exactly this request's work
        with _counters.collect() as tally:
            try:
                reports = database.run_program(source)
            except Exception as error:
                # the request fails, but the transaction work (journal
                # entries, the rollback itself) must still reach STATS;
                # dispatch picks these up from the exception
                _attach_charges(error, _txn_charges(tally))
                raise
        nodes, edges = database.counts()
        wal_charges = (
            database.durability.drain_charges() if database.durability is not None else {}
        )
        return {
            "reports": [_report_json(report) for report in reports],
            "nodes": nodes,
            "edges": edges,
            # the LSN of this very commit (None without a data dir): a
            # cluster router records it per session so replica reads can
            # guarantee read-your-writes
            "lsn": database.last_commit_lsn if database.durability is not None else None,
            "_durability": database.take_ticket(),
            "_checkpoint_job": database.take_checkpoint_job(),
            "_charges": {
                **wal_charges,
                "runs": 1,
                "operations_applied": len(reports),
                "matchings_enumerated": sum(r.matching_count for r in reports),
                "full_matchings": tally.full_matchings,
                "delta_matchings": tally.delta_matchings,
                "fixpoint_rounds": tally.rounds,
                "fixpoint_runs": tally.fixpoint_runs,
                "plan_cache_hits": tally.plan_cache_hits,
                "plan_cache_misses": tally.plan_cache_misses,
                "index_probes": tally.index_probes,
                "index_builds": tally.index_builds,
                "leapfrog_seeks": tally.leapfrog_seeks,
                "intersections": tally.intersections,
                **_txn_charges(tally),
            },
        }

    @_verb("UNDO", "write")
    def _undo(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        nodes, edges = database.undo()
        payload: Dict[str, Any] = {"nodes": nodes, "edges": edges}
        if database.durability is not None:
            payload["lsn"] = database.last_commit_lsn
            payload["_durability"] = database.take_ticket()
            payload["_charges"] = database.durability.drain_charges()
        return payload

    @_verb("CHECKPOINT", "write")
    def _checkpoint(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        # only the rotation happens under the write lock; dispatch
        # streams the checkpoint image from the pinned snapshot after
        # releasing it, and merges the stream report into the response
        job = database.checkpoint_begin()
        return {
            "_checkpoint_job": job,
            "_checkpoint_merge": True,
            "_charges": database.durability.drain_charges(),
        }

    # ------------------------------------------------------------------
    # read verbs (shared)
    # ------------------------------------------------------------------
    @_verb("QUERY", "read")
    def _query(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        source = require_arg(args, "program", str)
        with _counters.collect() as tally:
            reports, (nodes, edges) = database.query_program(source)
        return {
            "reports": [_report_json(report) for report in reports],
            "result_nodes": nodes,
            "result_edges": edges,
            "_charges": {
                "queries": 1,
                "matchings_enumerated": sum(r.matching_count for r in reports),
                "full_matchings": tally.full_matchings,
                "delta_matchings": tally.delta_matchings,
                "fixpoint_rounds": tally.rounds,
                "fixpoint_runs": tally.fixpoint_runs,
                "plan_cache_hits": tally.plan_cache_hits,
                "plan_cache_misses": tally.plan_cache_misses,
                "index_probes": tally.index_probes,
                "index_builds": tally.index_builds,
                "leapfrog_seeks": tally.leapfrog_seeks,
                "intersections": tally.intersections,
                **_txn_charges(tally),
            },
        }

    @_verb("MATCH", "read")
    def _match(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        source = require_arg(args, "pattern", str)
        limit = args.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ProtocolError("limit must be a non-negative integer or null")
        with _counters.collect() as tally:
            found = database.matchings(source, limit=limit)
        found["_charges"] = {
            "queries": 1,
            "matchings_enumerated": found["total"],
            "plan_cache_hits": tally.plan_cache_hits,
            "plan_cache_misses": tally.plan_cache_misses,
            "index_probes": tally.index_probes,
            "index_builds": tally.index_builds,
            "leapfrog_seeks": tally.leapfrog_seeks,
            "intersections": tally.intersections,
        }
        return found

    @_verb("EXPLAIN", "read")
    def _explain(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        source = require_arg(args, "pattern", str)
        with _counters.collect() as tally:
            payload = database.explain(source)
        payload["_charges"] = {
            "queries": 1,
            "plan_cache_hits": tally.plan_cache_hits,
            "plan_cache_misses": tally.plan_cache_misses,
            "index_probes": tally.index_probes,
            "index_builds": tally.index_builds,
            "leapfrog_seeks": tally.leapfrog_seeks,
            "intersections": tally.intersections,
        }
        return payload

    @_verb("BROWSE", "read")
    def _browse(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        node = require_arg(args, "node", int)
        hops = args.get("hops", 1)
        if not isinstance(hops, int) or hops < 0:
            raise ProtocolError("hops must be a non-negative integer")
        slice_ = database.browse(node, hops=hops)
        payload = slice_.to_json()
        payload["_charges"] = {"queries": 1}
        return payload

    @_verb("EXPORT", "read")
    def _export(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        return {"instance": database.to_json(), "_charges": {"queries": 1}}

    @_verb("SAVE", "read")
    def _save(self, database: ServedDatabase, args: Dict[str, Any]) -> Dict[str, Any]:
        path = require_arg(args, "path", str)
        database.save(path)
        return {"saved": path}
