"""Concurrency core: per-database locks and admission control.

The server has two isolation disciplines:

* **MVCC** (the default) — *queries* (``MATCH``, ``QUERY``,
  ``BROWSE``, ``EXPORT``, ``SAVE``) take **no lock at all**: they pin
  an immutable snapshot version (:mod:`repro.mvcc`) and run against
  it.  Only *program runs* and catalog mutations (``RUN``, ``UNDO``,
  ``CREATE``, ``DROP``, ``LOAD``) serialize, on the
  :class:`WriteMutex` — a plain writer-only mutex.
* **legacy locked** (``mvcc=False``) — the original :class:`RWLock`
  discipline: queries share a read lock, writers exclude everyone.

Either way no client can observe a torn intermediate state: an atomic
run only ever commits or fully rolls back (the :mod:`repro.txn`
guarantee), and a version is only published *after* a commit
completes, under the writer's lock.

:class:`RWLock` is writer-preferring: once a writer is waiting, new
readers queue behind it, so a steady stream of cheap queries cannot
starve updates.

:class:`AdmissionController` bounds the work the server accepts: at
most ``max_concurrent`` requests execute at once, at most ``max_queue``
wait; past that, requests are refused immediately with
:class:`AdmissionError` (wire code ``OVERLOADED``) rather than piling
up latency.  ``queue_depth`` feeds the ``STATS`` verb.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import AsyncIterator, Optional

from repro.core.errors import GoodError
from repro.server.protocol import register_error_code


class AdmissionError(GoodError):
    """The server is saturated; the request was refused, not queued."""


register_error_code(AdmissionError, "OVERLOADED")


class RWLock:
    """An asyncio many-readers / one-writer lock, writer-preferring."""

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    async def acquire_read(self) -> None:
        async with self._cond:
            while self._writer_active or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        async with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    async def release_write(self) -> None:
        async with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @asynccontextmanager
    async def read_locked(self, timeout: Optional[float] = None) -> AsyncIterator[None]:
        """Hold a read lock for the block; ``timeout`` bounds the wait."""
        await _acquire(self.acquire_read(), timeout, "read")
        try:
            yield
        finally:
            await self.release_read()

    @asynccontextmanager
    async def write_locked(self, timeout: Optional[float] = None) -> AsyncIterator[None]:
        """Hold the write lock for the block; ``timeout`` bounds the wait."""
        await _acquire(self.acquire_write(), timeout, "write")
        try:
            yield
        finally:
            await self.release_write()

    @property
    def state(self) -> str:
        """Debugging/stats snapshot: ``idle``, ``Nr`` or ``w``."""
        if self._writer_active:
            return "w"
        if self._readers:
            return f"{self._readers}r"
        return "idle"


class WriteMutex:
    """MVCC mode's per-database lock: writers exclusive, readers absent.

    Exposes the same ``write_locked`` / ``state`` surface as
    :class:`RWLock` so the catalog and write paths are mode-agnostic;
    there is deliberately no ``read_locked`` — under MVCC a read that
    asks for a lock is a bug, and it fails loudly here.
    """

    def __init__(self) -> None:
        self._lock = asyncio.Lock()

    @asynccontextmanager
    async def write_locked(self, timeout: Optional[float] = None) -> AsyncIterator[None]:
        """Hold the writer mutex for the block; ``timeout`` bounds the wait."""
        await _acquire(self._lock.acquire(), timeout, "write")
        try:
            yield
        finally:
            self._lock.release()

    @property
    def state(self) -> str:
        """Debugging/stats snapshot: ``idle`` or ``w``."""
        return "w" if self._lock.locked() else "idle"


async def _acquire(waiter, timeout: Optional[float], mode: str) -> None:
    if timeout is None:
        await waiter
        return
    try:
        await asyncio.wait_for(waiter, timeout)
    except asyncio.TimeoutError:
        raise TimeoutError(
            f"timed out after {timeout:g}s waiting for the {mode} lock"
        ) from None


class AdmissionController:
    """Bounded concurrency + bounded queue, refuse-don't-collapse."""

    def __init__(self, max_concurrent: int = 8, max_queue: int = 64) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self._slots = asyncio.Semaphore(max_concurrent)
        self._queued = 0
        self._running = 0
        self.admitted_total = 0
        self.rejected_total = 0

    @property
    def queue_depth(self) -> int:
        """Requests admitted but waiting for an execution slot."""
        return self._queued

    @property
    def running(self) -> int:
        """Requests currently holding an execution slot."""
        return self._running

    @asynccontextmanager
    async def admit(self) -> AsyncIterator[None]:
        """Hold one execution slot for the block, or refuse at once."""
        if self._queued >= self.max_queue:
            self.rejected_total += 1
            raise AdmissionError(
                f"server saturated: {self._running} running, "
                f"{self._queued} queued (queue limit {self.max_queue})"
            )
        self._queued += 1
        try:
            await self._slots.acquire()
        finally:
            self._queued -= 1
        self._running += 1
        self.admitted_total += 1
        try:
            yield
        finally:
            self._running -= 1
            self._slots.release()
