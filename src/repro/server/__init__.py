"""Serving GOOD databases over the network.

The paper sketches GOOD as an *implementable* end-user database model
(Section 5); this package is the database-management half: a concurrent
TCP server exposing the transactional core of :mod:`repro.txn` to many
clients at once.

* :mod:`repro.server.protocol` — versioned newline-delimited JSON
  frames with structured error codes;
* :mod:`repro.server.catalog`  — named databases, one backend each
  (native / relational / Tarski), import/export via :mod:`repro.io`;
* :mod:`repro.server.locks`    — per-database reader-writer locks and
  bounded admission control;
* :mod:`repro.server.session`  — per-connection verb dispatch with
  per-session resource budgets;
* :mod:`repro.server.stats`    — live counters and latency percentiles
  behind the ``STATS`` verb;
* :mod:`repro.server.server`   — the asyncio server plus a
  background-thread harness;
* :mod:`repro.server.client`   — a blocking socket client.

CLI entry points: ``repro serve`` and ``repro connect``.
"""

from repro.server.catalog import Catalog, CatalogError, ServedDatabase, UnknownDatabaseError
from repro.server.client import GoodClient, RemoteError
from repro.server.locks import AdmissionController, AdmissionError, RWLock
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    decode_response,
    encode_frame,
    error_code,
    error_payload,
    error_response,
    ok_response,
)
from repro.server.server import BackgroundServer, GoodServer
from repro.server.session import ServerSession
from repro.server.stats import DatabaseStats, LatencyRing, ServerStats

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "BackgroundServer",
    "Catalog",
    "CatalogError",
    "DatabaseStats",
    "GoodClient",
    "GoodServer",
    "LatencyRing",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RWLock",
    "RemoteError",
    "ServedDatabase",
    "ServerSession",
    "ServerStats",
    "UnknownDatabaseError",
    "decode_request",
    "decode_response",
    "encode_frame",
    "error_code",
    "error_payload",
    "error_response",
    "ok_response",
]
