"""The asyncio TCP server and its background-thread harness.

:class:`GoodServer` accepts newline-delimited JSON frames
(:mod:`repro.server.protocol`), admits each request through the bounded
:class:`~repro.server.locks.AdmissionController`, dispatches it via the
connection's :class:`~repro.server.session.ServerSession` (which takes
the per-database reader-writer lock) and runs the actual GOOD work on a
thread pool so concurrent readers make progress while the event loop
keeps accepting connections.

Isolation argument, in one paragraph: writers hold the database's
exclusive lock for the whole atomic run and publish an immutable
snapshot version only after the commit completes; readers pin a
published version and never touch a lock (MVCC, the default) or hold
the shared side of an :class:`~repro.server.locks.RWLock`
(``mvcc=False``).  Either way the :mod:`repro.txn` layer guarantees a
failed run restores the exact pre-run state before the write lock is
released — so every reader observes either the pre-run or the
post-commit state, never a torn intermediate one.

:class:`BackgroundServer` runs a :class:`GoodServer` on its own event
loop in a daemon thread — the harness tests, benchmarks and
``examples/server_demo.py`` use to serve and connect from one process.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple

from repro.server.catalog import Catalog
from repro.server.locks import AdmissionController, RWLock, WriteMutex
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_request,
    encode_frame,
    error_response,
    ok_response,
)
from repro.server.session import ServerSession
from repro.server.stats import ServerStats
from repro.txn.guards import ResourceLimits, limits as guard_limits

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 2590  # PODS 1990, backwards


class GoodServer:
    """One catalog of GOOD databases, served over TCP."""

    #: Per-connection session type; the cluster's replica server swaps
    #: in a read-only subclass without touching the accept loop.
    session_class = ServerSession

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        *,
        max_concurrent: int = 8,
        max_queue: int = 64,
        max_workers: Optional[int] = None,
        lock_timeout: float = 30.0,
        default_limits: Optional[ResourceLimits] = None,
        ring_capacity: int = 1024,
        mvcc: bool = True,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self.host = host
        self.port = port
        self.mvcc = mvcc
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.max_workers = max_workers if max_workers is not None else max_concurrent
        self.lock_timeout = lock_timeout
        self.default_limits = default_limits if default_limits is not None else ResourceLimits()
        self.stats = ServerStats(ring_capacity)
        self.address: Optional[Tuple[str, int]] = None
        # asyncio primitives are created in start() so they bind to the
        # serving loop (pre-3.10 primitives capture a loop at creation)
        self.admission: Optional[AdmissionController] = None
        self.catalog_lock: Optional[asyncio.Lock] = None
        self._locks: Dict[str, Any] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self.admission = AdmissionController(self.max_concurrent, self.max_queue)
        self.catalog_lock = asyncio.Lock()
        self._locks = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="good-worker"
        )
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port, limit=MAX_FRAME_BYTES + 2
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        """Block serving until cancelled or :meth:`stop` is called."""
        if self._server is None:
            raise RuntimeError("server not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting and release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # session plumbing
    # ------------------------------------------------------------------
    def lock_for(self, name: str) -> Any:
        """The (lazily created) per-database lock: a writer-only
        :class:`WriteMutex` under MVCC, a full :class:`RWLock` otherwise."""
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = WriteMutex() if self.mvcc else RWLock()
        return lock

    async def run_blocking(
        self, fn: Callable[[], Any], limits: Optional[ResourceLimits] = None
    ) -> Any:
        """Run ``fn`` on the worker pool, budgets armed in-thread."""
        if limits is not None and (
            limits.max_matchings is not None or limits.max_call_depth is not None
        ):
            budgets = limits

            def work() -> Any:
                with guard_limits(budgets.max_matchings, budgets.max_call_depth):
                    return fn()

        else:
            work = fn
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, work)

    def stats_snapshot(self, raw: bool = False) -> Dict[str, Any]:
        """The ``STATS`` payload, including live admission state and the
        per-database snapshot-registry gauges."""
        admission = self.admission
        payload = self.stats.snapshot(
            queue_depth=admission.queue_depth if admission else 0,
            running=admission.running if admission else 0,
            raw=raw,
        )
        payload["mvcc"] = self.mvcc
        for name in self.catalog.names():
            try:
                database = self.catalog.get(name)
            except Exception:  # racing a DROP
                continue
            bucket = payload["databases"].get(name)
            if bucket is None:
                # a database nobody has queried yet still reports gauges
                bucket = payload["databases"][name] = self.stats.database(name).snapshot(raw=raw)
            bucket["snapshots"] = database.snapshots.gauges()
            if database.durability is not None:
                bucket["lsn"] = database.durability.lsn
            if database.session is not None:
                # columnar memory gauges (native stores account their
                # own resident columns)
                store = database.session.instance.store
                if hasattr(store, "store_bytes"):
                    bucket["store_bytes"] = store.store_bytes()
        from repro.graph.columns import LABELS

        payload["intern_table_size"] = len(LABELS)
        payload["intern_table_bytes"] = LABELS.table_bytes()
        return payload

    def replication_info(self) -> Dict[str, Any]:
        """The ``REPLICA`` payload; the replica server overrides this."""
        return {"replica": False}

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------
    async def _on_connect(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        session = self.session_class(self)
        self.stats.connections_open += 1
        self.stats.connections_total += 1
        try:
            while not session.closed:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    oversized = ProtocolError(
                        f"frame exceeds the {MAX_FRAME_BYTES} byte limit"
                    )
                    writer.write(encode_frame(error_response(None, oversized)))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._serve_frame(session, line)
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # client vanished
            pass
        finally:
            self.stats.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass  # connection teardown racing server shutdown

    async def _serve_frame(self, session: ServerSession, line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        database: Optional[str] = None
        failed = False
        started = time.perf_counter()
        try:
            request_id, verb, args = decode_request(line)
            async with self.admission.admit():
                result, database = await session.dispatch(verb, args)
            response = ok_response(request_id, result)
        except Exception as error:
            failed = True
            response = error_response(request_id, error)
        elapsed = time.perf_counter() - started
        if database is not None and database not in self.catalog:
            database = None  # e.g. the verb was DROP
        self.stats.record(database, elapsed, error=failed)
        return response


class BackgroundServer:
    """A :class:`GoodServer` on its own loop in a daemon thread."""

    def __init__(self, server: GoodServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # surface bind failures to start()
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._shutdown.wait()
        await self.server.stop()

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("background server already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), name="good-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start within the timeout")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        assert self.server.address is not None
        return self.server.address

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the server down and join the thread."""
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
