"""The database catalog: named scheme+instance pairs, one backend each.

A :class:`ServedDatabase` wraps one GOOD object base behind a uniform
verb-shaped API (run / query / matchings / browse / export) so the
session layer never branches on the backend:

* ``native`` — the in-memory graph :class:`~repro.core.instance.Instance`,
  wrapped in an :class:`~repro.interactive.Session` (which supplies
  query/update modes, browsing and the undo stack);
* ``relational`` — :class:`~repro.storage.engine.RelationalEngine`
  (Section 5's embedded-SQL architecture);
* ``tarski`` — :class:`~repro.tarski.engine.TarskiEngine` (the binary
  relation algebra substrate).

All three are transactional targets (:mod:`repro.txn.snapshot`), so
program runs are atomic on every backend and query mode on the engines
is implemented as run-then-restore against a snapshot.

:class:`Catalog` is the name -> database directory with create / drop /
load / save.  It is deliberately synchronous and lock-free: the server
layer serialises catalog mutations and wraps per-database access in
reader-writer locks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.errors import GoodError
from repro.core.instance import Instance
from repro.core.program import Program
from repro.dsl import parse_pattern, parse_program
from repro.interactive import Session, Subinstance
from repro.io.serialize import (
    instance_from_json,
    instance_to_json,
    load_instance,
    save_instance,
    scheme_from_json,
)
from repro.mvcc import SnapshotRegistry, capture_version
from repro.server.protocol import register_error_code
from repro.txn import guards
from repro.txn.snapshot import capture, restore, summarize
from repro.txn.transaction import Transaction
from repro.wal import DataDirLockedError, WalError

BACKENDS = ("native", "relational", "tarski")


class CatalogError(GoodError):
    """Catalog misuse: duplicate create, bad backend, invalid name."""


class UnknownDatabaseError(CatalogError):
    """The named database does not exist."""


register_error_code(CatalogError, "CATALOG")
register_error_code(UnknownDatabaseError, "NO_SUCH_DATABASE")
register_error_code(WalError, "WAL")
register_error_code(DataDirLockedError, "DATA_DIR_LOCKED")


class ServedDatabase:
    """One named object base behind the uniform serving API."""

    def __init__(self, name: str, instance: Instance, backend: str = "native") -> None:
        if backend not in BACKENDS:
            raise CatalogError(f"unknown backend {backend!r} (expected one of {BACKENDS})")
        self.name = name
        self.backend = backend
        # wired by DataDirectory when serving from a durable data dir
        self.durability: Any = None
        # the LSN of the most recent commit THIS database acknowledged;
        # unlike ``durability.lsn`` it is captured inside the commit
        # path, so a RUN response can carry exactly its own commit's LSN
        self.last_commit_lsn = 0
        self._pending_ticket: Any = None
        self._engine: Any = None
        if backend == "native":
            self.session: Optional[Session] = Session(instance)
        elif backend == "relational":
            from repro.storage.engine import RelationalEngine

            self.session = None
            self._engine = RelationalEngine.from_instance(instance)
        else:
            from repro.tarski.engine import TarskiEngine

            self.session = None
            self._engine = TarskiEngine.from_instance(instance)
        # MVCC: every commit publishes an immutable version here; query
        # verbs pin one and read without any lock (repro.mvcc)
        self.snapshots = SnapshotRegistry()
        # a deferred checkpoint job handed to the session layer so the
        # state streams to disk *after* the write lock is released
        self._pending_checkpoint: Any = None
        self._defer_checkpoints = False
        self.publish_version()

    # ------------------------------------------------------------------
    # MVCC snapshots
    # ------------------------------------------------------------------
    def publish_version(self) -> Any:
        """Publish the current state as an immutable pinned-able version.

        Called after every state change, under whatever exclusion the
        caller already holds (the server's write mutex, or none before
        serving starts).  O(changes) thanks to the backends' COW forks.
        """
        return self.snapshots.publish(capture_version(self))

    def read_view(self) -> Any:
        """Pin the current version; returns a read-only facade.

        The caller must :meth:`~repro.mvcc.readers.SnapshotReader.release`
        it (or use it as a context manager) so the registry can GC.
        """
        from repro.mvcc.readers import SnapshotReader

        return SnapshotReader(self, self.snapshots.pin())

    @property
    def target(self) -> Any:
        """The transactional target holding the current state.

        For the native backend this tracks ``session.instance`` — undo
        rebinds the session to a previous copy, and a stale alias here
        would silently serve the pre-undo state.
        """
        if self.session is not None:
            return self.session.instance
        return self._engine

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def scheme(self):
        """The live scheme (patterns and programs parse against it)."""
        if self.session is not None:
            return self.session.instance.scheme
        return self.target.scheme

    def counts(self) -> Tuple[int, int]:
        """``(node_count, edge_count)`` of the current state."""
        return summarize(self.target)

    def describe(self) -> Dict[str, Any]:
        """The ``LIST`` entry for this database."""
        nodes, edges = self.counts()
        return {"name": self.name, "backend": self.backend, "nodes": nodes, "edges": edges}

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def _compile(self, source: str) -> Program:
        return parse_program(source, self.scheme)

    def run_program(self, source: str) -> List[Any]:
        """Atomic in-place run of DSL ``source``; per-operation reports.

        On any failure the backend state (scheme included) is exactly
        the pre-run state — the :mod:`repro.txn` guarantee — and the
        exception carries a ``failure_report``.
        """
        program = self._compile(source)
        if self.durability is None:
            reports = self._run_parsed(program)
            self.publish_version()
            return reports
        return self._run_durable(program)

    def _run_parsed(self, program: Program) -> List[Any]:
        if self.session is not None:
            try:
                return list(self.session.update(program).reports)
            except Exception:
                # the failed atomic run already rolled the instance
                # back; drop the undo frame pushed for it
                if self.session.undo_depth:
                    self.session.undo()
                raise
        return list(self.target.run(program.operations, atomic=True))

    def _run_durable(self, program: Program) -> List[Any]:
        """Run with write-ahead logging: nothing is acknowledged until
        the commit record is on disk (per the writer's fsync policy).

        An outer journal observes the whole run; on success its entries
        are read *forwards* (:mod:`repro.wal.redo`) into the commit
        record.  If the WAL append fails, the outer journal rolls the
        memory state back so it never diverges from disk, and the
        writer stays poisoned — exactly as if the process had died.
        """
        txn = Transaction(self.target, name=f"wal:{self.name}")
        try:
            reports = self._run_parsed(program)
        except BaseException:
            # the inner atomic run already restored the state, so the
            # outer journal's entries are net-zero: discard them
            txn.commit()
            raise
        try:
            ticket = self.durability.commit_journal(self, txn._journal)
        except BaseException as error:
            txn.rollback()
            if self.session is not None and self.session.undo_depth:
                self.session.undo()
            self.durability.poison(error)
            raise
        txn.commit()
        self._pending_ticket = ticket
        self.last_commit_lsn = self.durability.lsn
        # publish before a possible checkpoint so the checkpoint pins
        # a version that includes this very commit
        self.publish_version()
        job = self.durability.maybe_checkpoint(self)
        if job is not None:
            if self._defer_checkpoints:
                # the session layer streams it after the lock drops
                self._pending_checkpoint = job
            else:
                job.stream()
        return reports

    def take_ticket(self) -> Any:
        """Claim the durability ticket of the last run (or ``None``).

        The session layer appends under the database write lock but
        waits on the ticket *after* releasing it, which is what lets
        concurrent commits share one group fsync.
        """
        ticket, self._pending_ticket = self._pending_ticket, None
        return ticket

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot state to disk and truncate the replayed WAL."""
        return self.checkpoint_begin().stream()

    def checkpoint_begin(self) -> Any:
        """Pin a snapshot and rotate the WAL (the fast, locked half).

        Returns a :class:`~repro.wal.manager.CheckpointJob`; its
        ``stream()`` writes the pinned state to disk and may run after
        the write lock is released — writers keep committing into the
        fresh segment while the checkpoint streams.
        """
        if self.durability is None:
            raise CatalogError(
                f"database {self.name!r} is not served from a data directory; "
                "CHECKPOINT needs a server started with --data-dir"
            )
        return self.durability.begin_checkpoint(self)

    def take_checkpoint_job(self) -> Any:
        """Claim the checkpoint job deferred by the last run (or ``None``)."""
        job, self._pending_checkpoint = self._pending_checkpoint, None
        return job

    def query_program(self, source: str) -> Tuple[List[Any], Tuple[int, int]]:
        """Query-mode run: the result is "only a temporary entity".

        Returns the per-operation reports and the (nodes, edges) size
        of the temporary result.  The served state is untouched: the
        native backend runs on a copy, the engines run inside a
        snapshot that is restored afterwards.
        """
        program = self._compile(source)
        if self.session is not None:
            result = self.session.query(program)
            return list(result.reports), (result.instance.node_count, result.instance.edge_count)
        state = capture(self.target)
        try:
            reports = list(self.target.run(program.operations, atomic=False))
            return reports, summarize(self.target)
        finally:
            restore(self.target, state)

    def explain(self, pattern_source: str) -> Dict[str, Any]:
        """The compiled match plan for a DSL pattern (no execution).

        Works on every backend: the plan is computed against the native
        view of the current state (engines export a copy), so the text
        always describes how the planner would join the pattern.
        """
        from repro.core.pattern import NegatedPattern
        from repro.plan import explain_pattern, plan_for

        pattern, bindings = parse_pattern(pattern_source, self.scheme)
        instance = self.to_instance()
        # plan first so ``cached`` reflects the cache state on entry
        # (explain_pattern re-plans and would always report a hit)
        positive = pattern.positive if isinstance(pattern, NegatedPattern) else pattern
        plan, cached = plan_for(positive, instance)
        text = explain_pattern(pattern, instance)
        return {
            "backend": self.backend,
            "text": text,
            "strategy": plan.strategy,
            "plan": plan.to_json(),
            "crossed_extensions": (
                len(pattern.extensions) if isinstance(pattern, NegatedPattern) else 0
            ),
            "cached": cached,
            "bindings": dict(bindings),
        }

    def matchings(self, pattern_source: str, limit: Optional[int] = None) -> Dict[str, Any]:
        """All matchings of a DSL pattern, keyed by variable name."""
        pattern, bindings = parse_pattern(pattern_source, self.scheme)
        if self.session is not None:
            found = self.session.matchings(pattern)
            # the engines charge inside their matchings(); the native
            # session path charges here so budgets bind everywhere
            guards.charge_matchings(len(found))
        else:
            found = list(self.target.matchings(pattern))
        total = len(found)
        if limit is not None:
            found = found[:limit]
        named = [
            {variable: matching[node] for variable, node in bindings.items()}
            for matching in found
        ]
        return {"total": total, "returned": len(named), "matchings": named}

    def _browse_session(self) -> Session:
        if self.session is not None:
            return self.session
        return Session(self.target.to_instance())

    def browse(self, node: int, hops: int = 1) -> Subinstance:
        """The neighbourhood slice around ``node``."""
        return self._browse_session().browse(node, hops=hops)

    def undo(self) -> Tuple[int, int]:
        """Native backend only: pop the most recent update."""
        if self.session is None:
            raise CatalogError(
                f"database {self.name!r} uses the {self.backend!r} backend; "
                "UNDO is only available on the native backend"
            )
        self.session.undo()
        self.publish_version()
        if self.durability is not None:
            # no incremental redo can describe an instance rebind, so
            # UNDO logs the complete post-undo state as a reset record
            try:
                self._pending_ticket = self.durability.reset_record(self)
            except BaseException as error:
                self.durability.poison(error)
                raise
            self.last_commit_lsn = self.durability.lsn
        return self.counts()

    # ------------------------------------------------------------------
    # import / export
    # ------------------------------------------------------------------
    def to_instance(self) -> Instance:
        """The current state as a native instance (a copy for engines)."""
        if self.session is not None:
            return self.session.instance
        return self.target.to_instance()

    def to_json(self) -> Dict[str, Any]:
        """The current state as a serialisable instance document."""
        return instance_to_json(self.to_instance())

    def save(self, path: Union[str, Path]) -> None:
        """Write the current state to a JSON file."""
        save_instance(self.to_instance(), path)


class Catalog:
    """The name -> :class:`ServedDatabase` directory."""

    def __init__(self) -> None:
        self._databases: Dict[str, ServedDatabase] = {}
        # a repro.wal.DataDirectory when serving durably, else None;
        # attached by recover_catalog AFTER recovery has populated the
        # catalog (so add() below does not re-create on-disk state)
        self.durability: Any = None

    def __len__(self) -> int:
        return len(self._databases)

    def __contains__(self, name: str) -> bool:
        return name in self._databases

    def names(self) -> List[str]:
        """All database names, sorted."""
        return sorted(self._databases)

    def describe(self) -> List[Dict[str, Any]]:
        """The ``LIST`` payload."""
        return [self._databases[name].describe() for name in self.names()]

    def get(self, name: str) -> ServedDatabase:
        """Look a database up, or fail with a structured error."""
        try:
            return self._databases[name]
        except KeyError:
            known = ", ".join(self.names()) or "none"
            raise UnknownDatabaseError(
                f"no database named {name!r} (known: {known})"
            ) from None

    def add(self, name: str, instance: Instance, backend: str = "native") -> ServedDatabase:
        """Serve an already-built instance under ``name``."""
        if not name or not isinstance(name, str):
            raise CatalogError(f"invalid database name {name!r}")
        if name in self._databases:
            raise CatalogError(f"database {name!r} already exists")
        database = ServedDatabase(name, instance, backend)
        if self.durability is not None:
            self.durability.attach_new(database)
        self._databases[name] = database
        return database

    def create(
        self,
        name: str,
        backend: str = "native",
        scheme_data: Optional[Dict[str, Any]] = None,
        instance_data: Optional[Dict[str, Any]] = None,
    ) -> ServedDatabase:
        """Create a database from a scheme document (empty instance) or
        a full instance document."""
        if scheme_data is not None and instance_data is not None:
            raise CatalogError("pass either a scheme or an instance, not both")
        if instance_data is not None:
            instance = instance_from_json(instance_data)
        elif scheme_data is not None:
            instance = Instance(scheme_from_json(scheme_data))
        else:
            raise CatalogError("creating a database needs a scheme or an instance document")
        return self.add(name, instance, backend)

    def drop(self, name: str) -> None:
        """Forget a database (its on-disk state, if any, included)."""
        database = self.get(name)
        if self.durability is not None:
            self.durability.drop_database(database)
        del self._databases[name]

    def close_durability(self) -> None:
        """Flush and close every WAL writer and release the data dir."""
        for database in self._databases.values():
            if database.durability is not None:
                database.durability.close()
                database.durability = None
        if self.durability is not None:
            self.durability.close()
            self.durability = None

    def load_file(self, name: str, path: Union[str, Path], backend: str = "native") -> ServedDatabase:
        """Serve a JSON instance file under ``name``."""
        return self.add(name, load_instance(path), backend)
