"""The wire protocol: newline-delimited JSON frames, versioned.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
A request frame is::

    {"good": 1, "id": 7, "verb": "RUN", "args": {"program": "..."}}

``good`` is the protocol version (rejected if it is not
:data:`PROTOCOL_VERSION`), ``id`` is an opaque client token echoed back
verbatim, ``verb`` names the action and ``args`` is a verb-specific
object (optional; defaults to ``{}``).  The response is either::

    {"good": 1, "id": 7, "ok": true, "result": {...}}
    {"good": 1, "id": 7, "ok": false, "error": {"code": "...", ...}}

Error payloads are structured: ``code`` is a stable machine-readable
string from the table below, ``type`` the Python exception class name,
``message`` the human text, and ``details`` an optional object (for
rolled-back runs it carries the
:class:`~repro.txn.transaction.FailureReport` fields).  The code table
maps the library's exception hierarchy onto the wire so clients can
dispatch without parsing messages.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import (
    BackendError,
    DomainError,
    EdgeConflictError,
    GoodError,
    InstanceError,
    MethodError,
    OperationError,
    PatternError,
    ResourceLimitError,
    SchemeError,
    TransactionError,
)

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame (request or response), in bytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(GoodError):
    """A malformed, oversized, or unintelligible frame."""


# ----------------------------------------------------------------------
# error codes
# ----------------------------------------------------------------------

#: Exception class -> stable wire code.  First match in method-resolution
#: order wins, so subclasses may override their parents.
ERROR_CODES: Dict[type, str] = {
    ProtocolError: "PROTOCOL",
    ResourceLimitError: "RESOURCE_LIMIT",
    TransactionError: "TXN_ERROR",
    EdgeConflictError: "EDGE_CONFLICT",
    OperationError: "OPERATION",
    SchemeError: "SCHEME",
    InstanceError: "INSTANCE",
    PatternError: "PATTERN",
    MethodError: "METHOD",
    DomainError: "DOMAIN",
    BackendError: "BACKEND",
    TimeoutError: "TIMEOUT",
    # on Python < 3.11 asyncio.TimeoutError is not builtins.TimeoutError
    asyncio.TimeoutError: "TIMEOUT",
}


def register_error_code(exc_type: type, code: str) -> None:
    """Map an exception class to a wire code (used by server modules)."""
    ERROR_CODES[exc_type] = code


def _register_library_codes() -> None:
    # imported lazily so protocol stays importable without the whole
    # library (the mappings below reach into sibling packages)
    from repro.dsl import DslError
    from repro.interactive.session import SessionError
    from repro.io.serialize import SerializationError

    ERROR_CODES.setdefault(DslError, "PARSE")
    ERROR_CODES.setdefault(SessionError, "SESSION")
    ERROR_CODES.setdefault(SerializationError, "BAD_PAYLOAD")


_register_library_codes()


def error_code(error: BaseException) -> str:
    """The stable wire code for an exception (walks the MRO)."""
    for klass in type(error).__mro__:
        if klass in ERROR_CODES:
            return ERROR_CODES[klass]
    if isinstance(error, GoodError):
        return "GOOD"
    return "INTERNAL"


def error_payload(error: BaseException) -> Dict[str, Any]:
    """The structured ``error`` object for a response frame."""
    payload: Dict[str, Any] = {
        "code": error_code(error),
        "type": type(error).__name__,
        "message": str(error),
    }
    report = getattr(error, "failure_report", None)
    if report is not None and is_dataclass(report):
        payload["details"] = {"failure_report": asdict(report)}
    return payload


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One JSON object as a ``\\n``-terminated UTF-8 line."""
    data = json.dumps(frame, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES} byte limit")
    return data


def decode_request(line: bytes) -> Tuple[Any, str, Dict[str, Any]]:
    """Parse and validate one request line -> ``(id, verb, args)``."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES} byte limit")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(frame).__name__}")
    version = frame.get("good")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this server speaks {PROTOCOL_VERSION})"
        )
    verb = frame.get("verb")
    if not isinstance(verb, str) or not verb:
        raise ProtocolError("request carries no verb")
    args = frame.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError(f"args must be an object, got {type(args).__name__}")
    return frame.get("id"), verb.upper(), args


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success frame echoing the request id."""
    return {"good": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, error: BaseException) -> Dict[str, Any]:
    """A failure frame echoing the request id."""
    return {
        "good": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error_payload(error),
    }


def decode_response(line: bytes) -> Dict[str, Any]:
    """Client side: parse one response line (shape-checked)."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"response is not valid JSON: {error}") from error
    if not isinstance(frame, dict) or "ok" not in frame:
        raise ProtocolError("response frame carries no 'ok' field")
    if frame.get("good") != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported response protocol version {frame.get('good')!r}")
    return frame


def require_arg(args: Dict[str, Any], key: str, kind: Optional[type] = None) -> Any:
    """Fetch a mandatory verb argument with a structured error."""
    if key not in args:
        raise ProtocolError(f"missing required argument {key!r}")
    value = args[key]
    if kind is not None and not isinstance(value, kind):
        raise ProtocolError(
            f"argument {key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value
