"""The durable data directory: layout, locking, recovery.

On-disk layout (one directory per served database)::

    <data-dir>/
      LOCK                      # flock'd + pid: single-server guard
      <db-name>/
        meta.json               # {"name", "backend", "format"}
        checkpoint-<E>.json     # state at the start of epoch E
        wal-<E>.ndjson          # redo records appended during epoch E
      .tmp/                     # staging for atomic database creation
      .trash/                   # staging for atomic database deletion

Invariants:

* exactly one *current* epoch per database: its checkpoint plus its
  (possibly torn) segment reconstruct the state; stale epochs are
  leftovers of an interrupted checkpoint and are deleted on recovery;
* database create/drop are atomic with respect to the data directory —
  a fully populated directory is ``rename``\\ d in, a dropped one is
  ``rename``\\ d out to ``.trash`` before deletion, so a crash can
  never leave a half-created or half-deleted database under its name;
* the ``LOCK`` file is held with ``flock`` for the life of the
  process; a second server pointed at the same directory is refused
  (:class:`DataDirLockedError`) instead of silently corrupting it.

:func:`recover_catalog` is the boot path: lock the directory, then for
every database load the newest valid checkpoint, replay the epoch's
WAL (truncating a torn tail), and hand back a serving
:class:`~repro.server.catalog.Catalog` plus a :class:`RecoveryReport`.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.io.serialize import instance_from_json, instance_to_json
from repro.wal.checkpoint import (
    fsync_dir,
    load_checkpoint,
    parse_epoch,
    segment_name,
    write_checkpoint,
)
from repro.wal.log import (
    CommitTicket,
    WalReader,
    WalWriter,
    parse_fsync_policy,
    parse_wal_format,
)
from repro.wal.record import WalError, WalFormatError

try:  # POSIX: advisory whole-file lock, auto-released on process death
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

META_NAME = "meta.json"
LOCK_NAME = "LOCK"
META_FORMAT = 1

#: Auto-checkpoint once a segment grows past this many bytes (0 = never).
DEFAULT_CHECKPOINT_BYTES = 4 * 1024 * 1024

_SAFE_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


class DataDirLockedError(WalError):
    """The data directory is already served by another process."""


class DatabaseDurability:
    """One database's WAL writer, epoch bookkeeping and checkpoints."""

    def __init__(
        self,
        directory: Union[str, Path],
        name: str,
        backend: str,
        policy: Any = "always",
        epoch: int = 0,
        lsn: int = 0,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_format: str = "text",
    ) -> None:
        self.directory = Path(directory)
        self.name = name
        self.backend = backend
        self.policy = parse_fsync_policy(policy)
        self.wal_format = wal_format
        self.epoch = epoch
        self.lsn = lsn
        self.checkpoint_bytes = checkpoint_bytes
        self.checkpoints_taken = 0
        self.writer = WalWriter(
            self.directory / segment_name(epoch), self.policy, wal_format=wal_format
        )
        self._drained = {"appends": 0, "fsyncs": 0, "bytes": 0, "checkpoints": 0}
        # one checkpoint may stream at a time; set at begin_checkpoint
        # (under the write lock), cleared when the job finishes
        self._checkpoint_active = False

    # ------------------------------------------------------------------
    # commit-time records
    # ------------------------------------------------------------------
    def commit_journal(self, database: Any, journal: Any) -> CommitTicket:
        """Append one commit record derived from ``journal`` (redo dual)."""
        from repro.wal.redo import extract_redo, get_next_id

        redo = extract_redo(database, journal)
        self.lsn += 1
        return self.writer.append(
            {
                "kind": "commit",
                "lsn": self.lsn,
                "redo": redo,
                "next_id": get_next_id(database),
            }
        )

    def reset_record(self, database: Any) -> CommitTicket:
        """Append a full-state record (``UNDO`` rebinds the instance,
        which no incremental redo can describe)."""
        from repro.io.serialize import instance_to_columnar_json
        from repro.wal.redo import get_next_id

        instance = database.to_instance()
        if hasattr(instance.store, "snapshot_columns"):
            # columnar document: the label table once, then int columns
            doc = instance_to_columnar_json(instance)
        else:
            doc = instance_to_json(instance)
        self.lsn += 1
        return self.writer.append(
            {
                "kind": "reset",
                "lsn": self.lsn,
                "instance": doc,
                "next_id": get_next_id(database),
            }
        )

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def begin_checkpoint(self, database: Any) -> "CheckpointJob":
        """The fast, locked half of a checkpoint: pin + rotate.

        Must run under the database's write lock (no concurrent
        commits).  It pins the current MVCC version, records the
        commit horizon, and rotates the writer to a fresh segment —
        all O(1) — then returns a :class:`CheckpointJob` whose
        ``stream()`` writes the pinned state to disk and may run
        *after* the lock is released: writers keep committing into the
        new segment while the old state streams.  Recovery copes with
        a crash mid-stream by replaying every segment from the newest
        durable checkpoint's epoch upward.
        """
        from repro.wal.redo import get_next_id

        if self._checkpoint_active:
            raise WalError(
                f"database {self.name!r}: a checkpoint is already streaming"
            )
        try:
            reader = database.read_view()
            try:
                previous = self.epoch
                new_epoch = previous + 1
                last_lsn = self.lsn
                next_id = get_next_id(reader)
                self.writer.rotate(self.directory / segment_name(new_epoch))
                self.epoch = new_epoch
            except BaseException:
                reader.release()
                raise
        except BaseException as error:
            self.writer.poison(error)
            raise
        self._checkpoint_active = True
        return CheckpointJob(self, reader, new_epoch, previous, last_lsn, next_id)

    def checkpoint(self, database: Any) -> Dict[str, Any]:
        """Synchronous checkpoint: begin (pin + rotate) then stream inline."""
        return self.begin_checkpoint(database).stream()

    def maybe_checkpoint(self, database: Any) -> Optional["CheckpointJob"]:
        """Begin an auto-checkpoint when the segment outgrew the threshold.

        Returns the streaming job (or ``None``); the caller either
        streams it inline or defers it past the write lock.
        """
        if (
            self.checkpoint_bytes
            and not self._checkpoint_active
            and self.writer.poisoned is None
            and self.writer.written_offset >= self.checkpoint_bytes
        ):
            return self.begin_checkpoint(database)
        return None

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def drain_charges(self) -> Dict[str, int]:
        """WAL counter deltas since the last drain, as STATS charges.

        Group-mode fsyncs complete on the flusher thread, so a delta
        drained right after a commit may lag by one fsync; the next
        drain catches it up.
        """
        current = {
            "appends": self.writer.appends,
            "fsyncs": self.writer.fsyncs,
            "bytes": self.writer.bytes_written,
            "checkpoints": self.checkpoints_taken,
        }
        delta = {
            ("checkpoints" if key == "checkpoints" else f"wal_{key}"): current[key]
            - self._drained[key]
            for key in current
            if current[key] != self._drained[key]
        }
        self._drained = current
        return delta

    def poison(self, error: BaseException) -> None:
        """Disable the writer after a commit-path failure."""
        self.writer.poison(error)

    def close(self) -> None:
        """Flush and close the writer."""
        self.writer.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatabaseDurability({self.name!r}, backend={self.backend}, "
            f"epoch={self.epoch}, lsn={self.lsn})"
        )


class CheckpointJob:
    """The streaming half of a two-phase checkpoint.

    Created by :meth:`DatabaseDurability.begin_checkpoint` under the
    database's write lock, holding a pinned snapshot reader and the
    commit horizon captured at rotation.  ``stream()`` does the slow
    work — serializing the pinned state and pruning pre-checkpoint
    files — and is safe to run after the lock is released.
    """

    def __init__(
        self,
        durability: "DatabaseDurability",
        reader: Any,
        epoch: int,
        previous_epoch: int,
        last_lsn: int,
        next_id: int,
    ) -> None:
        self.durability = durability
        self.reader = reader
        self.epoch = epoch
        self.previous_epoch = previous_epoch
        self.last_lsn = last_lsn
        self.next_id = next_id
        self._done = False

    def stream(self) -> Dict[str, Any]:
        """Write the pinned state to disk; returns the CHECKPOINT payload.

        On any failure the writer is poisoned — a half-finished
        checkpoint must not be built upon, exactly as a dead process
        would not be.  The pinned version is always released.
        """
        if self._done:
            raise WalError("checkpoint job was already streamed")
        self._done = True
        durability = self.durability
        try:
            try:
                path = write_checkpoint(
                    durability.directory,
                    self.epoch,
                    self.reader.to_instance(),
                    backend=durability.backend,
                    last_lsn=self.last_lsn,
                    next_id=self.next_id,
                )
                for stale in list(durability.directory.glob("checkpoint-*.json")) + list(
                    durability.directory.glob("wal-*.ndjson")
                ):
                    if 0 <= parse_epoch(stale.name) < self.epoch:
                        try:
                            stale.unlink()
                        except OSError:  # pragma: no cover - best-effort cleanup
                            pass
                fsync_dir(durability.directory)
                durability.checkpoints_taken += 1
                return {
                    "epoch": self.epoch,
                    "previous_epoch": self.previous_epoch,
                    "last_lsn": self.last_lsn,
                    "bytes": path.stat().st_size,
                }
            except BaseException as error:
                durability.writer.poison(error)
                raise
        finally:
            durability._checkpoint_active = False
            self.reader.release()


class RecoveryReport:
    """What recovery found and did, per database."""

    def __init__(self) -> None:
        self.databases: List[Dict[str, Any]] = []

    @property
    def recovered(self) -> int:
        """How many databases were brought back."""
        return len(self.databases)

    @property
    def records_replayed(self) -> int:
        """Total WAL records re-applied across databases."""
        return sum(entry["records_replayed"] for entry in self.databases)

    @property
    def torn_records(self) -> int:
        """Total torn tail records dropped across databases."""
        return sum(entry["torn_records"] for entry in self.databases)

    def to_json(self) -> Dict[str, Any]:
        """A JSON-ready summary (CLI output, tests)."""
        return {
            "recovered": self.recovered,
            "records_replayed": self.records_replayed,
            "torn_records": self.torn_records,
            "databases": list(self.databases),
        }

    def summary(self) -> str:
        """One line per database, human-readable."""
        if not self.databases:
            return "recovery: data directory holds no databases"
        lines = []
        for entry in self.databases:
            note = ""
            if entry["torn_records"]:
                note = f", dropped a torn tail ({entry['torn_records']} record)"
            if entry["stale_files_removed"]:
                note += f", removed {entry['stale_files_removed']} stale file(s)"
            lines.append(
                f"recovered {entry['name']!r} ({entry['backend']}): "
                f"checkpoint epoch {entry['epoch']}, "
                f"replayed {entry['records_replayed']} record(s){note}"
            )
        return "\n".join(lines)


class DataDirectory:
    """A locked durable home for a catalog's databases."""

    def __init__(
        self,
        root: Union[str, Path],
        fsync_policy: Any = "always",
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        wal_format: str = "text",
    ) -> None:
        self.root = Path(root)
        self.policy = parse_fsync_policy(fsync_policy)
        self.wal_format = parse_wal_format(wal_format)
        self.checkpoint_bytes = checkpoint_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock_file = None
        self._acquire_lock()
        self._trash_counter = 0

    # ------------------------------------------------------------------
    # single-writer lock
    # ------------------------------------------------------------------
    def _acquire_lock(self) -> None:
        lock_path = self.root / LOCK_NAME
        handle = open(lock_path, "a+")
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    handle.seek(0)
                    holder = handle.read().strip() or "unknown pid"
                    handle.close()
                    raise DataDirLockedError(
                        f"data directory {self.root} is already served "
                        f"(LOCK held by {holder})"
                    ) from None
            else:  # pragma: no cover - non-POSIX: stale-pid heuristic
                handle.seek(0)
                existing = handle.read().strip()
                if existing.isdigit() and _pid_alive(int(existing)):
                    handle.close()
                    raise DataDirLockedError(
                        f"data directory {self.root} is already served "
                        f"(LOCK held by pid {existing})"
                    )
        except DataDirLockedError:
            raise
        except Exception:
            handle.close()
            raise
        handle.seek(0)
        handle.truncate()
        handle.write(str(os.getpid()))
        handle.flush()
        self._lock_file = handle

    def close(self) -> None:
        """Release the directory lock (writers are closed by their
        owning :class:`DatabaseDurability` objects)."""
        if self._lock_file is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(self._lock_file.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - defensive
                    pass
            self._lock_file.close()
            self._lock_file = None

    def __enter__(self) -> "DataDirectory":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def _db_dir(self, name: str) -> Path:
        if not _SAFE_NAME.match(name or ""):
            raise WalError(
                f"database name {name!r} is not durable-safe "
                "(letters, digits, '.', '_', '-'; must not start with '.')"
            )
        return self.root / name

    def list_databases(self) -> List[str]:
        """Names of all databases present on disk, sorted."""
        found = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and (entry / META_NAME).exists():
                found.append(entry.name)
        return found

    # ------------------------------------------------------------------
    # atomic create / drop
    # ------------------------------------------------------------------
    def attach_new(self, database: Any) -> None:
        """Durably create ``database``'s directory and wire its WAL.

        The directory is fully populated (meta, checkpoint-0, empty
        segment) in ``.tmp`` and renamed into place, so a crash leaves
        either no trace or a complete, recoverable database.
        """
        from repro.wal.redo import get_next_id

        target = self._db_dir(database.name)
        if target.exists():
            raise WalError(
                f"data directory already holds a database named {database.name!r}"
            )
        staging = self.root / ".tmp" / f"{database.name}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        meta_path = staging / META_NAME
        with open(meta_path, "w") as fp:
            json.dump(
                {"format": META_FORMAT, "name": database.name, "backend": database.backend},
                fp,
                sort_keys=True,
            )
            fp.flush()
            os.fsync(fp.fileno())
        write_checkpoint(
            staging,
            0,
            database.to_instance(),
            backend=database.backend,
            last_lsn=0,
            next_id=get_next_id(database),
        )
        segment = staging / segment_name(0)
        with open(segment, "ab") as fp:
            os.fsync(fp.fileno())
        fsync_dir(staging)
        os.rename(staging, target)
        fsync_dir(self.root)
        database.durability = DatabaseDurability(
            target,
            database.name,
            database.backend,
            policy=self.policy,
            epoch=0,
            lsn=0,
            checkpoint_bytes=self.checkpoint_bytes,
            wal_format=self.wal_format,
        )

    def drop_database(self, database: Any) -> None:
        """Atomically remove a database's directory (rename-to-trash)."""
        if database.durability is not None:
            database.durability.close()
            database.durability = None
        source = self._db_dir(database.name)
        if not source.exists():
            return
        trash_root = self.root / ".trash"
        trash_root.mkdir(exist_ok=True)
        self._trash_counter += 1
        grave = trash_root / f"{database.name}-{os.getpid()}-{self._trash_counter}"
        os.rename(source, grave)
        fsync_dir(self.root)
        shutil.rmtree(grave, ignore_errors=True)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover_into(self, catalog: Any, validate: bool = False) -> RecoveryReport:
        """Rebuild every on-disk database into ``catalog``.

        Call with a catalog whose ``durability`` is not yet attached
        (:func:`recover_catalog` does); the per-database wiring happens
        here, not through the catalog's create hook.
        """
        self._sweep_staging()
        report = RecoveryReport()
        for name in self.list_databases():
            report.databases.append(self._recover_database(catalog, name, validate=validate))
        return report

    def _sweep_staging(self) -> None:
        for staging in (self.root / ".tmp", self.root / ".trash"):
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)

    def _recover_database(self, catalog: Any, name: str, validate: bool = False) -> Dict[str, Any]:
        from repro.wal.redo import apply_commit, apply_reset, set_next_id

        directory = self.root / name
        meta = self._read_meta(directory)
        doc, epoch, skipped = self._latest_valid_checkpoint(directory)
        instance = instance_from_json(doc["instance"])
        database = catalog.add(name, instance, backend=meta["backend"])
        set_next_id(database, doc["next_id"])
        lsn = doc["last_lsn"]
        # a checkpoint rotates *before* it streams, so a crash
        # mid-stream leaves durable commits in segments newer than the
        # newest durable checkpoint: replay every epoch from the
        # checkpoint's upward, in order, skipping records the
        # checkpoint image already contains
        present = {
            parse_epoch(path.name)
            for path in directory.glob("wal-*.ndjson")
            if parse_epoch(path.name) >= epoch
        }
        segment_epochs = sorted(present | {epoch})
        replayed = commits = resets = torn = 0
        for segment_epoch in segment_epochs:
            segment = directory / segment_name(segment_epoch)
            if not segment.exists():
                # crash between checkpoint publish and segment rotation:
                # the checkpoint already holds everything
                with open(segment, "ab") as fp:
                    os.fsync(fp.fileno())
            records, segment_torn = WalReader.scan_and_truncate(segment)
            torn += segment_torn
            for record in records:
                if record.get("lsn", 0) <= doc["last_lsn"]:
                    continue
                kind = record.get("kind")
                if kind == "commit":
                    apply_commit(database, record)
                    commits += 1
                elif kind == "reset":
                    apply_reset(database, record)
                    resets += 1
                else:
                    raise WalFormatError(
                        f"{segment}: unknown WAL record kind {kind!r} "
                        f"at lsn {record.get('lsn')!r}"
                    )
                replayed += 1
                lsn = max(lsn, record.get("lsn", lsn))
        stale_removed = self._remove_stale_epochs(directory, epoch)
        if validate:
            database.to_instance().validate()
        # the replay mutated the live state past the version published
        # at construction: re-publish so readers see the recovered state
        database.publish_version()
        database.last_commit_lsn = lsn
        database.durability = DatabaseDurability(
            directory,
            name,
            meta["backend"],
            policy=self.policy,
            epoch=segment_epochs[-1],
            lsn=lsn,
            checkpoint_bytes=self.checkpoint_bytes,
            wal_format=self.wal_format,
        )
        return {
            "name": name,
            "backend": meta["backend"],
            "epoch": epoch,
            "last_lsn": lsn,
            "records_replayed": replayed,
            "commits_replayed": commits,
            "resets_replayed": resets,
            "segments_replayed": len(segment_epochs),
            "torn_records": torn,
            "invalid_checkpoints_skipped": skipped,
            "stale_files_removed": stale_removed,
        }

    @staticmethod
    def _read_meta(directory: Path) -> Dict[str, Any]:
        try:
            meta = json.loads((directory / META_NAME).read_text())
        except (OSError, ValueError) as error:
            raise WalFormatError(f"{directory}: unreadable {META_NAME}: {error}") from error
        if not isinstance(meta, dict) or "backend" not in meta:
            raise WalFormatError(f"{directory}: malformed {META_NAME}")
        return meta

    @staticmethod
    def _latest_valid_checkpoint(directory: Path) -> Tuple[Dict[str, Any], int, int]:
        candidates = sorted(
            (path for path in directory.glob("checkpoint-*.json")),
            key=lambda path: parse_epoch(path.name),
            reverse=True,
        )
        skipped = 0
        for path in candidates:
            epoch = parse_epoch(path.name)
            if epoch < 0:
                skipped += 1
                continue
            try:
                return load_checkpoint(path), epoch, skipped
            except WalFormatError:
                skipped += 1
        raise WalFormatError(
            f"{directory}: no valid checkpoint found "
            f"({len(candidates)} candidate(s), all invalid)"
        )

    @staticmethod
    def _remove_stale_epochs(directory: Path, epoch: int) -> int:
        """Drop non-chosen checkpoints, pre-checkpoint segments, tmps.

        Segments at or above the chosen checkpoint's epoch are kept —
        they hold commits newer than the checkpoint image (a
        checkpoint that crashed mid-stream leaves its fresh segment
        behind without a matching checkpoint file).
        """
        removed = 0
        for path in directory.glob("checkpoint-*.json"):
            if parse_epoch(path.name) != epoch:
                path.unlink()
                removed += 1
        for path in directory.glob("wal-*.ndjson"):
            if parse_epoch(path.name) < epoch:
                path.unlink()
                removed += 1
        for path in directory.glob("*.tmp"):
            path.unlink()
            removed += 1
        if removed:
            fsync_dir(directory)
        return removed


def _pid_alive(pid: int) -> bool:  # pragma: no cover - non-POSIX fallback
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def recover_catalog(
    root: Union[str, Path],
    fsync_policy: Any = "always",
    checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
    validate: bool = False,
    wal_format: str = "text",
) -> Tuple[Any, RecoveryReport]:
    """Boot path: lock ``root``, recover every database, return the
    serving catalog (durability attached) and the recovery report."""
    from repro.server.catalog import Catalog

    directory = DataDirectory(
        root,
        fsync_policy=fsync_policy,
        checkpoint_bytes=checkpoint_bytes,
        wal_format=wal_format,
    )
    try:
        catalog = Catalog()
        report = directory.recover_into(catalog, validate=validate)
    except BaseException:
        directory.close()
        raise
    catalog.durability = directory
    return catalog, report
