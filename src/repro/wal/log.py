"""WAL segment writer/reader: append, fsync policies, group commit.

:class:`WalWriter` appends framed records (:mod:`repro.wal.record`) to
one segment file and controls *when* they become durable:

* ``always`` — every append fsyncs before returning: the classic
  one-commit-one-fsync policy, durable but disk-bound;
* ``group:<ms>`` — a group-commit batcher: appenders enqueue a
  :class:`CommitTicket` and a flusher thread coalesces everything that
  accumulated (waiting at most ``<ms>`` extra milliseconds) into one
  fsync — the standard trick for making commit throughput scale with
  concurrency instead of disk latency;
* ``off`` — never fsync; the OS decides (fast, durable only against
  process death, not power loss).

Durability code is sprinkled with the crash points of
:mod:`repro.txn.faults` (``wal.append.before``, ``wal.append.torn``,
``wal.fsync.before``, ``wal.fsync.after``).  A simulated crash at
``wal.fsync.before`` also *truncates the file to the last fsynced
offset*: the test harness restarts within the same OS, so un-fsynced
page-cache bytes would otherwise survive the "crash" — truncation
models the power loss the fsync was there to beat.  After any crash or
I/O error the writer is *poisoned*: further appends fail, mirroring a
dead process, so memory and disk cannot silently diverge.

:class:`WalReader` scans segments tolerantly: a torn tail (partial
write of the final record) is detected by CRC and reported with the
valid byte length so recovery can drop it.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.txn import faults
from repro.wal.record import (
    BINARY_MAGIC,
    WalError,
    encode_record,
    encode_record_binary,
    scan_binary_records,
    scan_records,
    scan_text_records,
)

#: WAL segment payload formats (``--wal-format``).
TEXT_FORMAT = "text"
BINARY_FORMAT = "binary"


def parse_wal_format(text: str) -> str:
    """Validate a ``--wal-format`` value (``text`` or ``binary``)."""
    value = str(text).strip().lower()
    if value not in (TEXT_FORMAT, BINARY_FORMAT):
        raise WalError(f"unknown WAL format {text!r} (expected text or binary)")
    return value


def sniff_segment_format(path: Union[str, Path]) -> Optional[str]:
    """The format of an existing segment, or ``None`` if empty/absent."""
    try:
        with open(path, "rb") as fp:
            head = fp.read(len(BINARY_MAGIC))
    except OSError:
        return None
    if not head:
        return None
    return BINARY_FORMAT if head == BINARY_MAGIC else TEXT_FORMAT


class FsyncPolicy:
    """A parsed fsync policy: ``always``, ``group:<ms>``, or ``off``."""

    ALWAYS = "always"
    GROUP = "group"
    OFF = "off"

    def __init__(self, mode: str, group_delay_ms: float = 0.0) -> None:
        if mode not in (self.ALWAYS, self.GROUP, self.OFF):
            raise WalError(f"unknown fsync mode {mode!r}")
        if group_delay_ms < 0:
            raise WalError(f"group delay must be >= 0, got {group_delay_ms!r}")
        self.mode = mode
        self.group_delay_ms = group_delay_ms

    def __str__(self) -> str:
        if self.mode == self.GROUP:
            text = f"{self.group_delay_ms:g}"
            return f"group:{text}"
        return self.mode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FsyncPolicy({str(self)!r})"


def parse_fsync_policy(text: Union[str, FsyncPolicy]) -> FsyncPolicy:
    """Parse ``always`` / ``group:<ms>`` / ``off`` (CLI flag format)."""
    if isinstance(text, FsyncPolicy):
        return text
    text = text.strip().lower()
    if text == FsyncPolicy.ALWAYS:
        return FsyncPolicy(FsyncPolicy.ALWAYS)
    if text == FsyncPolicy.OFF:
        return FsyncPolicy(FsyncPolicy.OFF)
    if text == FsyncPolicy.GROUP:
        return FsyncPolicy(FsyncPolicy.GROUP, 0.0)
    if text.startswith("group:"):
        try:
            delay = float(text[len("group:") :])
        except ValueError:
            raise WalError(f"bad group delay in fsync policy {text!r}") from None
        return FsyncPolicy(FsyncPolicy.GROUP, delay)
    raise WalError(f"unknown fsync policy {text!r} (expected always, group:<ms>, or off)")


class CommitTicket:
    """One appended record's durability handle.

    ``wait`` blocks until the record's bytes are fsynced (or the policy
    says they never will be), re-raising the writer's failure if the
    flush died.  Commit paths append under the database write lock but
    *wait after releasing it*, which is what lets concurrent commits
    coalesce into one fsync.
    """

    def __init__(self, offset: int) -> None:
        self.offset = offset
        self._done = threading.Event()
        self._error: Optional[BaseException] = None

    def _complete(self) -> None:
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    @property
    def done(self) -> bool:
        """Whether durability (or failure) has been decided."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until durable; raise if the flush failed."""
        if not self._done.wait(timeout):
            raise WalError(f"timed out waiting for WAL fsync at offset {self.offset}")
        if self._error is not None:
            raise self._error


class WalWriter:
    """Append-only writer for one WAL segment file."""

    def __init__(
        self,
        path: Union[str, Path],
        policy: Union[str, FsyncPolicy] = "always",
        wal_format: str = TEXT_FORMAT,
    ) -> None:
        self.path = Path(path)
        self.policy = parse_fsync_policy(policy)
        #: configured format for *fresh* segments; a non-empty existing
        #: segment keeps the format it was started with (sniffed below)
        self.wal_format = parse_wal_format(wal_format)
        existing = sniff_segment_format(self.path)
        # unbuffered: the written offset *is* the file offset, which the
        # torn-tail simulation and group-commit bookkeeping rely on
        self._file = open(self.path, "ab", buffering=0)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # serializes fsync/rotate/close against the flusher without
        # blocking appends; always acquired *before* ``_lock``
        self._flush_lock = threading.RLock()
        self._written = self._file.tell()
        self._segment_format = existing if existing is not None else self.wal_format
        if self._written == 0 and self._segment_format == BINARY_FORMAT:
            self._file.write(BINARY_MAGIC)
            self._written = self._file.tell()
        self._synced = self._written
        self._pending: List[CommitTicket] = []
        self._poison: Optional[BaseException] = None
        self._closing = False
        self._flusher: Optional[threading.Thread] = None
        # lifetime counters (survive rotation; the manager drains them
        # into the server's STATS)
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, doc: Dict[str, Any]) -> CommitTicket:
        """Frame and write one record; returns its durability ticket."""
        if self._segment_format == BINARY_FORMAT:
            data = encode_record_binary(doc)
        else:
            data = encode_record(doc)
        with self._lock:
            self._require_usable()
            try:
                faults.crash_here("wal.append.before")
                if faults.crash_armed("wal.append.torn"):
                    # model a crash mid-write: half the record reaches
                    # the file, then the "process" dies
                    self._file.write(data[: max(1, len(data) // 2)])
                    self._written = self._file.tell()
                    faults.crash_here("wal.append.torn")
                self._file.write(data)
            except BaseException as error:
                self._poison = error
                self._fail_pending_locked(error)
                raise
            self._written = self._file.tell()
            self.appends += 1
            self.bytes_written += len(data)
            ticket = CommitTicket(self._written)
            if self.policy.mode == FsyncPolicy.OFF:
                ticket._complete()
                return ticket
            if self.policy.mode == FsyncPolicy.ALWAYS:
                try:
                    self._fsync_locked()
                except BaseException as error:
                    self._poison = error
                    self._fail_pending_locked(error)
                    ticket._fail(error)
                    raise
                ticket._complete()
                return ticket
            # group mode: enqueue and wake the flusher
            self._pending.append(ticket)
            self._ensure_flusher_locked()
            self._cond.notify_all()
            return ticket

    def _require_usable(self) -> None:
        if self._closing:
            raise WalError(f"WAL writer for {self.path} is closed")
        if self._poison is not None:
            raise WalError(
                f"WAL writer for {self.path} is poisoned by an earlier failure: {self._poison}"
            ) from self._poison

    # ------------------------------------------------------------------
    # fsync machinery
    # ------------------------------------------------------------------
    def _fsync_locked(self) -> None:
        """One fsync of everything written so far (caller holds lock)."""
        try:
            faults.crash_here("wal.fsync.before")
        except BaseException:
            # the un-fsynced page-cache bytes die with the "power":
            # truncate back to the last offset an fsync made durable
            self._simulate_power_loss_locked()
            raise
        os.fsync(self._file.fileno())
        self._synced = self._written
        self.fsyncs += 1
        faults.crash_here("wal.fsync.after")

    def _simulate_power_loss_locked(self) -> None:
        try:
            self._file.truncate(self._synced)
            self._file.seek(self._synced)
            self._written = self._synced
        except OSError:  # pragma: no cover - the crash still propagates
            pass

    def _fail_pending_locked(self, error: BaseException) -> None:
        for ticket in self._pending:
            ticket._fail(error)
        self._pending.clear()
        self._cond.notify_all()

    def _ensure_flusher_locked(self) -> None:
        if self._flusher is None or not self._flusher.is_alive():
            self._flusher = threading.Thread(
                target=self._flush_loop, name=f"wal-flusher:{self.path.name}", daemon=True
            )
            self._flusher.start()

    def _flush_loop(self) -> None:
        delay = self.policy.group_delay_ms / 1000.0
        while True:
            with self._lock:
                while not self._pending and not self._closing and self._poison is None:
                    self._cond.wait()
                if (self._closing or self._poison is not None) and not self._pending:
                    return
            if delay > 0:
                # bounded accumulation: let more committers pile onto
                # this flush (at most the configured window)
                threading.Event().wait(delay)
            with self._flush_lock:
                with self._lock:
                    batch = self._pending
                    self._pending = []
                    if not batch:
                        continue
                    target = self._written
                    file = self._file
                # fsync *outside* ``_lock``: appenders keep writing (and
                # queueing tickets for the next batch) while this batch
                # goes durable, so concurrency grows the batches instead
                # of stalling behind the disk
                error: Optional[BaseException] = None
                try:
                    faults.crash_here("wal.fsync.before")
                except BaseException as exc:
                    error = exc
                    with self._lock:
                        self._simulate_power_loss_locked()
                if error is None:
                    try:
                        os.fsync(file.fileno())
                    except BaseException as exc:
                        error = exc
                if error is None:
                    with self._lock:
                        self._synced = max(self._synced, target)
                        self.fsyncs += 1
                    try:
                        faults.crash_here("wal.fsync.after")
                    except BaseException as exc:
                        error = exc
                if error is not None:
                    with self._lock:
                        self._poison = error
                        for ticket in batch:
                            ticket._fail(error)
                        self._fail_pending_locked(error)
                        self._cond.notify_all()
                    return
                for ticket in batch:
                    ticket._complete()

    def flush(self) -> None:
        """Synchronously make everything appended so far durable."""
        with self._flush_lock, self._lock:
            self._require_usable()
            if self.policy.mode == FsyncPolicy.OFF:
                return
            if self._synced >= self._written and not self._pending:
                return
            if self.policy.mode == FsyncPolicy.ALWAYS:
                self._fsync_locked()
                return
            batch = self._pending
            self._pending = []
            try:
                self._fsync_locked()
            except BaseException as error:
                self._poison = error
                for ticket in batch:
                    ticket._fail(error)
                raise
            for ticket in batch:
                ticket._complete()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def written_offset(self) -> int:
        """Bytes written to the current segment so far."""
        with self._lock:
            return self._written

    @property
    def synced_offset(self) -> int:
        """Bytes of the current segment known durable."""
        with self._lock:
            return self._synced

    @property
    def poisoned(self) -> Optional[BaseException]:
        """The failure that disabled this writer, if any."""
        return self._poison

    def rotate(self, new_path: Union[str, Path]) -> None:
        """Switch appends to a fresh segment (checkpoint truncation).

        Pending group-commit tickets are flushed into the old segment
        first, so no ticket ever spans segments.
        """
        with self._flush_lock:
            if self.policy.mode != FsyncPolicy.OFF:
                self.flush()
            with self._lock:
                self._require_usable()
                self._file.close()
                self.path = Path(new_path)
                existing = sniff_segment_format(self.path)
                self._file = open(self.path, "ab", buffering=0)
                self._written = self._file.tell()
                self._segment_format = existing if existing is not None else self.wal_format
                if self._written == 0 and self._segment_format == BINARY_FORMAT:
                    self._file.write(BINARY_MAGIC)
                    self._written = self._file.tell()
                self._synced = self._written

    def poison(self, error: BaseException) -> None:
        """Disable the writer after an external commit-path failure."""
        with self._lock:
            if self._poison is None:
                self._poison = error
            self._fail_pending_locked(error)

    def close(self, flush: bool = True) -> None:
        """Flush (unless poisoned or told not to) and close the file."""
        if flush and self._poison is None and self.policy.mode != FsyncPolicy.OFF:
            try:
                self.flush()
            except WalError:
                pass
        with self._lock:
            self._closing = True
            self._cond.notify_all()
            flusher = self._flusher
        if flusher is not None and flusher.is_alive():
            flusher.join(timeout=5.0)
        with self._flush_lock, self._lock:
            if not self._file.closed:
                self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalWriter({str(self.path)!r}, policy={self.policy})"


class WalReader:
    """Torn-tail tolerant segment scanning."""

    @staticmethod
    def scan(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], int, int]:
        """Decode a segment: ``(records, valid_byte_length, torn)``."""
        data = Path(path).read_bytes()
        return scan_records(data)

    @staticmethod
    def tail(path: Union[str, Path], offset: int) -> Tuple[List[Dict[str, Any]], int]:
        """Read complete records appended past ``offset``; never truncates.

        The read-replica primitive: the writer process is *alive*, so an
        incomplete final line is almost certainly a record mid-``write``
        — the tailer keeps its offset at the last intact record boundary
        and simply retries on the next poll.  Returns ``(records,
        new_offset)``.  A file shorter than ``offset`` (the writer
        crashed, recovery truncated a torn tail) surfaces as
        ``new_offset < offset`` with no records, which tells the tailer
        to resynchronise from the newest checkpoint.
        """
        path = Path(path)
        with open(path, "rb") as fp:
            size = os.fstat(fp.fileno()).st_size
            if size < offset:
                return [], size
            head = fp.read(len(BINARY_MAGIC))
            binary = head == BINARY_MAGIC
            if binary and offset < len(BINARY_MAGIC):
                # a fresh tailer starts at 0; binary records begin
                # after the segment magic
                offset = len(BINARY_MAGIC)
            fp.seek(offset)
            data = fp.read()
        if binary:
            records, valid_length, _torn = scan_binary_records(data)
        else:
            records, valid_length, _torn = scan_text_records(data)
        return records, offset + valid_length

    @staticmethod
    def scan_and_truncate(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], int]:
        """Decode a segment, truncating any torn tail in place.

        Returns ``(records, torn)`` where ``torn`` counts dropped tail
        records (0 or 1).  After this the segment re-scans cleanly.
        """
        path = Path(path)
        records, valid_length, torn = WalReader.scan(path)
        if torn:
            with open(path, "rb+") as fp:
                fp.truncate(valid_length)
                fp.flush()
                os.fsync(fp.fileno())
        return records, torn
