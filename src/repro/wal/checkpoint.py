"""Checkpoints: atomic on-disk snapshots that bound WAL replay.

A checkpoint file ``checkpoint-<epoch>.json`` holds the full instance
(plus the scheme, the id counter and the last LSN) as it stood the
moment WAL segment ``wal-<epoch>.ndjson`` was started.  Recovery loads
the newest *valid* checkpoint and replays only that epoch's segment —
so checkpointing is what keeps recovery time proportional to the WAL
written since, not to the database's lifetime.

The write protocol is the classic atomic-publish dance:

1. write ``checkpoint-<epoch>.json.tmp`` (instance streamed via
   :func:`repro.io.serialize.write_instance_columnar` for columnar
   stores — the intern table once, then flat int columns — or the
   per-record :func:`repro.io.serialize.write_instance` otherwise; no
   second in-memory copy either way) and ``fsync`` it;
2. ``os.replace`` onto the final name (atomic on POSIX);
3. ``fsync`` the directory so the rename itself is durable.

A crash at any point leaves either the old checkpoint or the new one
fully intact — never a half-written file under the real name.  Crash
points: ``wal.checkpoint.written`` (tmp durable, not yet published),
``wal.checkpoint.renamed`` (published, directory not yet synced),
``wal.checkpoint.after``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.instance import Instance
from repro.io.serialize import write_instance, write_instance_columnar
from repro.txn import faults
from repro.wal.record import WalFormatError

CHECKPOINT_FORMAT = 1


def checkpoint_name(epoch: int) -> str:
    """File name of the checkpoint opening ``epoch``."""
    return f"checkpoint-{epoch:08d}.json"


def segment_name(epoch: int) -> str:
    """File name of the WAL segment of ``epoch``."""
    return f"wal-{epoch:08d}.ndjson"


def parse_epoch(filename: str) -> int:
    """The epoch encoded in a checkpoint/segment file name (or -1)."""
    stem = filename.rsplit(".", 1)[0] if filename.endswith(".json") else filename[: -len(".ndjson")]
    try:
        return int(stem.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return -1


def fsync_dir(path: Union[str, Path]) -> None:
    """Make a directory entry change (rename/create/unlink) durable."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_checkpoint(
    directory: Union[str, Path],
    epoch: int,
    instance: Instance,
    *,
    backend: str,
    last_lsn: int,
    next_id: int,
) -> Path:
    """Atomically publish ``checkpoint-<epoch>.json``; returns its path."""
    directory = Path(directory)
    final = directory / checkpoint_name(epoch)
    tmp = directory / (checkpoint_name(epoch) + ".tmp")
    header = {
        "format": CHECKPOINT_FORMAT,
        "kind": "checkpoint",
        "backend": backend,
        "epoch": epoch,
        "last_lsn": last_lsn,
        "next_id": next_id,
    }
    with open(tmp, "w") as fp:
        # compose {header..., "instance": <streamed>} without building
        # the instance document in memory; columnar stores stream the
        # compact format 2 (intern table once, then columns in bulk)
        fp.write(json.dumps(header, sort_keys=True)[:-1])
        fp.write(', "instance": ')
        if hasattr(instance.store, "snapshot_columns"):
            write_instance_columnar(instance, fp)
        else:
            write_instance(instance, fp)
        fp.write("}")
        fp.flush()
        os.fsync(fp.fileno())
    faults.crash_here("wal.checkpoint.written")
    os.replace(tmp, final)
    faults.crash_here("wal.checkpoint.renamed")
    fsync_dir(directory)
    faults.crash_here("wal.checkpoint.after")
    return final


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and validate a checkpoint document."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as error:
        raise WalFormatError(f"{path}: unreadable checkpoint: {error}") from error
    if not isinstance(doc, dict) or doc.get("kind") != "checkpoint":
        raise WalFormatError(f"{path}: not a checkpoint document")
    if doc.get("format") != CHECKPOINT_FORMAT:
        raise WalFormatError(f"{path}: unsupported checkpoint format {doc.get('format')!r}")
    for key in ("backend", "epoch", "last_lsn", "next_id", "instance"):
        if key not in doc:
            raise WalFormatError(f"{path}: checkpoint missing key {key!r}")
    return doc
