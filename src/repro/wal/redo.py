"""Redo records: the forward dual of the undo journals.

PR 5's journals describe every mutation *backwards* (enough to undo).
At commit time this module reads the same entries *forwards* and emits
redo operations — what recovery must re-apply on top of a checkpoint:

* **native** — the journal already is an operation log; each store
  entry maps 1:1 to a redo op (``add_node`` / ``remove_node`` /
  ``set_print`` / ``add_edge`` / ``remove_edge``), replayed through the
  raw :class:`~repro.graph.store.GraphStore` mutators;
* **relational** — the journal records which tables were touched
  (copy-on-first-write pre-images); redo ships the *post-image* of each
  touched table, replayed by rebuilding the table (rows hold ``("v",
  value)`` tuples, hence the tuple-safe encoding of
  :mod:`repro.wal.record`);
* **tarski** — the journal records old relation references per write;
  redo ships the post-state of each touched relation (``member``,
  ``value:P``, ``edge:λ``).

Scheme changes ride along as a single ``scheme`` op holding the
post-commit scheme document.  Every commit record also carries the
backend's id counter so recovered stores keep numbering where the
crashed process stopped.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.instance import Instance
from repro.graph.columns import intern_label, label_name
from repro.graph.store import NO_PRINT
from repro.io.serialize import (
    instance_from_json,
    scheme_from_json,
    scheme_to_json,
)
from repro.wal.record import WalFormatError, dejsonify, jsonify


# ----------------------------------------------------------------------
# id counters
# ----------------------------------------------------------------------


def get_next_id(database: Any) -> int:
    """The backend's id counter (node id / oid) right now."""
    if database.backend == "native":
        return database.session.instance._store._next_id
    if database.backend == "relational":
        return database.target.layout._next_oid
    return database.target._next_oid


def set_next_id(database: Any, value: int) -> None:
    """Reinstall a recovered id counter (never moves it backwards)."""
    if database.backend == "native":
        store = database.session.instance._store
        store._next_id = max(store._next_id, value)
    elif database.backend == "relational":
        layout = database.target.layout
        layout._next_oid = max(layout._next_oid, value)
    else:
        engine = database.target
        engine._next_oid = max(engine._next_oid, value)


# ----------------------------------------------------------------------
# extraction (commit time)
# ----------------------------------------------------------------------


def extract_redo(database: Any, journal: Any) -> List[Dict[str, Any]]:
    """Derive redo ops from a still-open committed undo ``journal``."""
    if database.backend == "native":
        ops = _native_redo(journal)
    elif database.backend == "relational":
        ops = _relational_redo(database, journal)
    else:
        ops = _tarski_redo(database, journal)
    if journal.scheme_dirty():
        ops.append({"op": "scheme", "scheme": scheme_to_json(database.scheme)})
    return ops


def _native_redo(journal: Any) -> List[Dict[str, Any]]:
    # columnar journals carry interned label ids; ops keep the compact
    # int (``lid``) and the record ships one small ``interns`` op
    # mapping the lids it uses back to strings, because interner ids
    # are process-local and must not be trusted across a WAL boundary
    ops: List[Dict[str, Any]] = []
    interns: Dict[str, str] = {}

    def encode(value: Any) -> int:
        lid = intern_label(value) if isinstance(value, str) else value
        key = str(lid)
        if key not in interns:
            interns[key] = label_name(lid)
        return lid

    for entry in journal.entries:
        tag = entry[0]
        if tag == "add_node":
            op = {"op": "add_node", "id": entry[1], "lid": encode(entry[2])}
            if entry[3] is not NO_PRINT:
                op["print"] = entry[3]
            ops.append(op)
        elif tag == "remove_node":
            ops.append({"op": "remove_node", "id": entry[1]})
        elif tag == "set_print":
            op = {"op": "set_print", "id": entry[1]}
            if entry[3] is not NO_PRINT:
                op["print"] = entry[3]
            ops.append(op)
        elif tag == "add_edge":
            ops.append(
                {"op": "add_edge", "source": entry[1], "lid": encode(entry[2]), "target": entry[3]}
            )
        elif tag == "remove_edge":
            ops.append(
                {"op": "remove_edge", "source": entry[1], "lid": encode(entry[2]), "target": entry[3]}
            )
        # "scheme"/"bind" entries are summarised by the single trailing
        # scheme op extract_redo appends
    if interns:
        ops.insert(0, {"op": "interns", "map": interns})
    return ops


def _relational_redo(database: Any, journal: Any) -> List[Dict[str, Any]]:
    touched: List[str] = []
    for entry in journal.entries:
        tag = entry[0]
        if tag in ("table", "create", "drop") and entry[1] not in touched:
            touched.append(entry[1])
    db = database.target.layout.db
    ops: List[Dict[str, Any]] = []
    for name in touched:
        if db.has_table(name):
            table = db.table(name)
            ops.append(
                {
                    "op": "table",
                    "name": name,
                    "columns": list(table.columns),
                    "key": table.key,
                    "indexes": sorted(table._indexes),
                    "rows": [jsonify(row) for row in table.rows()],
                }
            )
        else:
            ops.append({"op": "drop_table", "name": name})
    return ops


def _tarski_redo(database: Any, journal: Any) -> List[Dict[str, Any]]:
    member_touched = False
    value_labels: List[str] = []
    edge_labels: List[str] = []
    for entry in journal.entries:
        tag = entry[0]
        if tag == "member":
            member_touched = True
        elif tag == "value" and entry[1] not in value_labels:
            value_labels.append(entry[1])
        elif tag == "edges" and entry[1] not in edge_labels:
            edge_labels.append(entry[1])
    engine = database.target
    ops: List[Dict[str, Any]] = []
    if member_touched:
        ops.append({"op": "member", "pairs": _pairs(engine.member)})
    for label in value_labels:
        if label in engine.values:
            ops.append({"op": "value", "label": label, "pairs": _pairs(engine.values[label])})
        else:
            ops.append({"op": "del_value", "label": label})
    for label in edge_labels:
        if label in engine.edges:
            ops.append({"op": "edges", "label": label, "pairs": _pairs(engine.edges[label])})
        else:
            ops.append({"op": "del_edges", "label": label})
    return ops


def _pairs(relation: Any) -> List[Any]:
    return [jsonify(pair) for pair in sorted(relation, key=repr)]


# ----------------------------------------------------------------------
# replay (recovery time)
# ----------------------------------------------------------------------


def apply_commit(database: Any, record: Dict[str, Any]) -> None:
    """Re-apply one commit record's redo ops to a recovered database."""
    interns: Dict[str, str] = {}
    for op in record.get("redo", ()):
        if op.get("op") == "interns":
            interns = op.get("map", {})
            continue
        _apply_op(database, op, interns)
    next_id = record.get("next_id")
    if isinstance(next_id, int):
        set_next_id(database, next_id)


def apply_reset(database: Any, record: Dict[str, Any]) -> None:
    """Reinstall the full instance a ``reset`` record carries (UNDO)."""
    instance = instance_from_json(record["instance"])
    replace_state(database, instance)
    next_id = record.get("next_id")
    if isinstance(next_id, int):
        set_next_id(database, next_id)


def replace_state(database: Any, instance: Instance) -> None:
    """Swap a database's backend state for ``instance`` wholesale."""
    if database.backend == "native":
        from repro.interactive import Session

        database.session = Session(instance)
    elif database.backend == "relational":
        from repro.storage.engine import RelationalEngine

        database._engine = RelationalEngine.from_instance(instance)
    else:
        from repro.tarski.engine import TarskiEngine

        database._engine = TarskiEngine.from_instance(instance)


def _apply_op(database: Any, op: Dict[str, Any], interns: Dict[str, str]) -> None:
    kind = op.get("op")
    if kind == "scheme":
        database.scheme.restore_from(scheme_from_json(op["scheme"]))
        return
    if database.backend == "native":
        _apply_native(database, kind, op, interns)
    elif database.backend == "relational":
        _apply_relational(database, kind, op)
    else:
        _apply_tarski(database, kind, op)


def _op_label(op: Dict[str, Any], interns: Dict[str, str]) -> str:
    """Decode an op's label: lid via the record's intern map, with the
    legacy ``label`` string key accepted for pre-columnar WALs."""
    label = op.get("label")
    if label is not None:
        return label
    lid = op["lid"]
    try:
        return interns[str(lid)]
    except KeyError:
        raise WalFormatError(
            f"redo op references label id {lid} absent from the record's intern map"
        ) from None


def _apply_native(database: Any, kind: str, op: Dict[str, Any], interns: Dict[str, str]) -> None:
    store = database.session.instance._store
    if kind == "add_node":
        store.add_node(_op_label(op, interns), op.get("print", NO_PRINT), node_id=op["id"])
    elif kind == "remove_node":
        store.remove_node(op["id"])
    elif kind == "set_print":
        store.set_print(op["id"], op.get("print", NO_PRINT))
    elif kind == "add_edge":
        store.add_edge(op["source"], _op_label(op, interns), op["target"])
    elif kind == "remove_edge":
        store.remove_edge(op["source"], _op_label(op, interns), op["target"])
    else:
        raise WalFormatError(f"unknown native redo op {kind!r}")


def _apply_relational(database: Any, kind: str, op: Dict[str, Any]) -> None:
    db = database.target.layout.db
    if kind == "table":
        if db.has_table(op["name"]):
            db.drop_table(op["name"])
        table = db.create_table(op["name"], list(op["columns"]), op.get("key"))
        for row in op["rows"]:
            table.insert(dejsonify(row))
        for column in op.get("indexes", ()):
            table.create_index(column)
    elif kind == "drop_table":
        if db.has_table(op["name"]):
            db.drop_table(op["name"])
    else:
        raise WalFormatError(f"unknown relational redo op {kind!r}")


def _apply_tarski(database: Any, kind: str, op: Dict[str, Any]) -> None:
    from repro.tarski.algebra import BinaryRelation

    engine = database.target
    if kind == "member":
        engine.member = BinaryRelation(_decode_pairs(op["pairs"]))
    elif kind == "value":
        engine.values[op["label"]] = BinaryRelation(_decode_pairs(op["pairs"]))
    elif kind == "del_value":
        engine.values.pop(op["label"], None)
    elif kind == "edges":
        engine.edges[op["label"]] = BinaryRelation(_decode_pairs(op["pairs"]))
    elif kind == "del_edges":
        engine.edges.pop(op["label"], None)
    else:
        raise WalFormatError(f"unknown tarski redo op {kind!r}")


def _decode_pairs(pairs: List[Any]) -> List[Any]:
    return [tuple(dejsonify(pair)) for pair in pairs]
