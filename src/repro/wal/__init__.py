"""Durability: write-ahead logging, checkpoints, crash recovery.

The GOOD paper's instances are mutated in place; everything upstream of
this package keeps them in memory only.  ``repro.wal`` adds the classic
redo story on top of PR 5's undo journals:

* :mod:`repro.wal.record` — the NDJSON record framing: one CRC-guarded
  JSON document per line, tuple-safe encoding for engine payloads;
* :mod:`repro.wal.log` — :class:`~repro.wal.log.WalWriter` (append +
  fsync with ``always`` / ``group:<ms>`` / ``off`` policies and a
  group-commit batcher) and :class:`~repro.wal.log.WalReader`
  (torn-tail tolerant segment scan);
* :mod:`repro.wal.redo` — derive *redo* records from a committed undo
  journal (all three backends) and re-apply them during recovery;
* :mod:`repro.wal.checkpoint` — atomic instance snapshots that let
  replayed segments be truncated;
* :mod:`repro.wal.manager` — the data directory: per-database WAL +
  checkpoint layout, single-writer locking, atomic create/drop, and
  :func:`~repro.wal.manager.recover_catalog` which rebuilds a serving
  catalog from disk on boot.
"""

from repro.wal.log import FsyncPolicy, WalReader, WalWriter, parse_fsync_policy
from repro.wal.manager import (
    DataDirectory,
    DatabaseDurability,
    DataDirLockedError,
    RecoveryReport,
    recover_catalog,
)
from repro.wal.record import WalError, WalFormatError

__all__ = [
    "DataDirectory",
    "DatabaseDurability",
    "DataDirLockedError",
    "FsyncPolicy",
    "RecoveryReport",
    "WalError",
    "WalFormatError",
    "WalReader",
    "WalWriter",
    "parse_fsync_policy",
    "recover_catalog",
]
