"""WAL record framing: one CRC-guarded JSON document per line.

A segment is newline-delimited JSON (NDJSON) with a checksum prefix::

    <crc32 as 8 hex digits> <compact JSON document>\\n

The CRC covers the JSON bytes, so a partially written tail (torn by a
crash mid-``write``) is detected record-precisely: scanning stops at
the first line that is incomplete, fails its checksum, or does not
parse, and reports the byte offset up to which the segment is valid.
Everything before that offset is trustworthy — each record was fully
written and checksummed — which is exactly the contract recovery needs
to truncate the tail and continue.

Engine payloads are not plain JSON: minirel rows hold ``("v", value)``
*tuples* (hashed by the table indexes, so a list round trip would
corrupt them) and Tarski relations are sets of pairs.  :func:`jsonify`
/ :func:`dejsonify` make the round trip faithful by encoding tuples as
``{"$t": [...]}`` marker objects (and escaping any real mapping that
happens to carry a ``$t`` key).
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, List, Tuple

from repro.core.errors import GoodError


class WalError(GoodError):
    """Base class for durability failures."""


class WalFormatError(WalError):
    """A WAL record or checkpoint that cannot be decoded."""


_CRC_WIDTH = 8  # zlib.crc32 as zero-padded lowercase hex
_SEPARATOR = b" "


# ----------------------------------------------------------------------
# tuple-safe JSON values
# ----------------------------------------------------------------------


def jsonify(value: Any) -> Any:
    """Encode ``value`` into plain JSON, preserving tuple-ness.

    Tuples become ``{"$t": [items...]}``; a genuine dict with a ``$t``
    key is escaped as ``{"$d": {...}}`` so decoding is unambiguous.
    """
    if isinstance(value, tuple):
        return {"$t": [jsonify(item) for item in value]}
    if isinstance(value, list):
        return [jsonify(item) for item in value]
    if isinstance(value, dict):
        encoded = {key: jsonify(item) for key, item in value.items()}
        if "$t" in encoded or "$d" in encoded:
            return {"$d": encoded}
        return encoded
    return value


def dejsonify(value: Any) -> Any:
    """Invert :func:`jsonify`."""
    if isinstance(value, dict):
        if set(value) == {"$t"}:
            return tuple(dejsonify(item) for item in value["$t"])
        if set(value) == {"$d"}:
            return {key: dejsonify(item) for key, item in value["$d"].items()}
        return {key: dejsonify(item) for key, item in value.items()}
    if isinstance(value, list):
        return [dejsonify(item) for item in value]
    return value


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------


def encode_record(doc: Dict[str, Any]) -> bytes:
    """Frame one document as a checksummed NDJSON line."""
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{crc:08x}".encode("ascii") + _SEPARATOR + payload + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Decode one complete line (without requiring the newline).

    Raises :class:`WalFormatError` on any framing, checksum, or JSON
    problem — the caller decides whether that means "torn tail" (end of
    scan) or "corrupt log" (scan had valid records after it).
    """
    line = line.rstrip(b"\n")
    if len(line) < _CRC_WIDTH + 1 or line[_CRC_WIDTH : _CRC_WIDTH + 1] != _SEPARATOR:
        raise WalFormatError("record too short or missing checksum separator")
    try:
        expected = int(line[:_CRC_WIDTH], 16)
    except ValueError:
        raise WalFormatError("record checksum is not hexadecimal") from None
    payload = line[_CRC_WIDTH + 1 :]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != expected:
        raise WalFormatError(
            f"record checksum mismatch (stored {expected:08x}, computed {actual:08x})"
        )
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise WalFormatError(f"record payload is not valid JSON: {error}") from None
    if not isinstance(doc, dict):
        raise WalFormatError(f"record payload must be a JSON object, got {type(doc).__name__}")
    return doc


def scan_records(data: bytes) -> Tuple[List[Dict[str, Any]], int, int]:
    """Scan a segment's bytes; stop at the first torn or bad record.

    Returns ``(records, valid_length, torn)``: the decoded records, the
    byte offset up to which the segment is intact, and how many
    trailing damaged/incomplete records were dropped (0 or 1 — the scan
    stops at the first bad line, so at most one *tail* is reported;
    anything beyond it is unreachable garbage by definition).
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    torn = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:  # incomplete final line: torn mid-write
            torn = 1
            break
        line = data[offset : newline + 1]
        try:
            records.append(decode_line(line))
        except WalFormatError:
            torn = 1
            break
        offset = newline + 1
    return records, offset, torn
