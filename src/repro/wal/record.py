"""WAL record framing: CRC-guarded records, text or binary.

The default segment format is newline-delimited JSON (NDJSON) with a
checksum prefix::

    <crc32 as 8 hex digits> <compact JSON document>\\n

The CRC covers the JSON bytes, so a partially written tail (torn by a
crash mid-``write``) is detected record-precisely: scanning stops at
the first line that is incomplete, fails its checksum, or does not
parse, and reports the byte offset up to which the segment is valid.
Everything before that offset is trustworthy — each record was fully
written and checksummed — which is exactly the contract recovery needs
to truncate the tail and continue.

The compact *binary* format (``--wal-format binary``) keeps the same
record-precise torn-tail contract but frames each record as::

    <u32 payload length LE> <u32 crc32 LE> <payload>

inside a segment that opens with the :data:`BINARY_MAGIC` header.  The
payload is a tag-based binary value encoding (ints are zigzag varints,
strings length-prefixed UTF-8), which suits the columnar redo records —
mostly small ints — far better than decimal JSON.  :func:`scan_records`
auto-detects the segment format from the magic, so ``repro recover``
and the read replicas consume either format transparently.

Engine payloads are not plain JSON: minirel rows hold ``("v", value)``
*tuples* (hashed by the table indexes, so a list round trip would
corrupt them) and Tarski relations are sets of pairs.  :func:`jsonify`
/ :func:`dejsonify` make the round trip faithful by encoding tuples as
``{"$t": [...]}`` marker objects (and escaping any real mapping that
happens to carry a ``$t`` key); the binary encoding preserves tuples
natively via its own tag.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Tuple

from repro.core.errors import GoodError


class WalError(GoodError):
    """Base class for durability failures."""


class WalFormatError(WalError):
    """A WAL record or checkpoint that cannot be decoded."""


_CRC_WIDTH = 8  # zlib.crc32 as zero-padded lowercase hex
_SEPARATOR = b" "

#: Header of a binary WAL segment.  A text segment's first byte is a
#: hex digit, so the two formats are unambiguous from the first byte.
BINARY_MAGIC = b"GWB1\x00\n"

_FRAME = struct.Struct("<II")  # payload length, crc32


# ----------------------------------------------------------------------
# tuple-safe JSON values
# ----------------------------------------------------------------------


def jsonify(value: Any) -> Any:
    """Encode ``value`` into plain JSON, preserving tuple-ness.

    Tuples become ``{"$t": [items...]}``; a genuine dict with a ``$t``
    key is escaped as ``{"$d": {...}}`` so decoding is unambiguous.
    """
    if isinstance(value, tuple):
        return {"$t": [jsonify(item) for item in value]}
    if isinstance(value, list):
        return [jsonify(item) for item in value]
    if isinstance(value, dict):
        encoded = {key: jsonify(item) for key, item in value.items()}
        if "$t" in encoded or "$d" in encoded:
            return {"$d": encoded}
        return encoded
    return value


def dejsonify(value: Any) -> Any:
    """Invert :func:`jsonify`."""
    if isinstance(value, dict):
        if set(value) == {"$t"}:
            return tuple(dejsonify(item) for item in value["$t"])
        if set(value) == {"$d"}:
            return {key: dejsonify(item) for key, item in value["$d"].items()}
        return {key: dejsonify(item) for key, item in value.items()}
    if isinstance(value, list):
        return [dejsonify(item) for item in value]
    return value


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------


def encode_record(doc: Dict[str, Any]) -> bytes:
    """Frame one document as a checksummed NDJSON line."""
    payload = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{crc:08x}".encode("ascii") + _SEPARATOR + payload + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Decode one complete line (without requiring the newline).

    Raises :class:`WalFormatError` on any framing, checksum, or JSON
    problem — the caller decides whether that means "torn tail" (end of
    scan) or "corrupt log" (scan had valid records after it).
    """
    line = line.rstrip(b"\n")
    if len(line) < _CRC_WIDTH + 1 or line[_CRC_WIDTH : _CRC_WIDTH + 1] != _SEPARATOR:
        raise WalFormatError("record too short or missing checksum separator")
    try:
        expected = int(line[:_CRC_WIDTH], 16)
    except ValueError:
        raise WalFormatError("record checksum is not hexadecimal") from None
    payload = line[_CRC_WIDTH + 1 :]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != expected:
        raise WalFormatError(
            f"record checksum mismatch (stored {expected:08x}, computed {actual:08x})"
        )
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise WalFormatError(f"record payload is not valid JSON: {error}") from None
    if not isinstance(doc, dict):
        raise WalFormatError(f"record payload must be a JSON object, got {type(doc).__name__}")
    return doc


def scan_records(data: bytes) -> Tuple[List[Dict[str, Any]], int, int]:
    """Scan a full segment's bytes; stop at the first torn/bad record.

    Auto-detects the segment format (binary segments open with
    :data:`BINARY_MAGIC`).  Returns ``(records, valid_length, torn)``:
    the decoded records, the byte offset up to which the segment is
    intact, and how many trailing damaged/incomplete records were
    dropped (0 or 1 — the scan stops at the first bad record, so at
    most one *tail* is reported; anything beyond it is unreachable
    garbage by definition).
    """
    if data.startswith(BINARY_MAGIC):
        records, valid, torn = scan_binary_records(data[len(BINARY_MAGIC) :])
        return records, len(BINARY_MAGIC) + valid, torn
    return scan_text_records(data)


def scan_text_records(data: bytes) -> Tuple[List[Dict[str, Any]], int, int]:
    """Scan NDJSON record bytes (no segment header)."""
    records: List[Dict[str, Any]] = []
    offset = 0
    torn = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:  # incomplete final line: torn mid-write
            torn = 1
            break
        line = data[offset : newline + 1]
        try:
            records.append(decode_line(line))
        except WalFormatError:
            torn = 1
            break
        offset = newline + 1
    return records, offset, torn


# ----------------------------------------------------------------------
# binary framing
# ----------------------------------------------------------------------
#
# value tags: N null · T true · F false · i zigzag-varint int ·
# d float64 · s utf-8 string · l list · t tuple · m dict (string keys,
# sorted) — counts and lengths are unsigned varints


def _write_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WalFormatError("truncated varint in binary record")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise WalFormatError("varint too long in binary record")


def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(0x4E)  # N
    elif value is True:
        out.append(0x54)  # T
    elif value is False:
        out.append(0x46)  # F
    elif isinstance(value, int):
        out.append(0x69)  # i
        zigzag = (value << 1) ^ (value >> 63) if -(1 << 62) <= value < (1 << 62) else None
        if zigzag is None:  # arbitrary precision: fall back via string
            raise WalFormatError(f"integer {value} out of binary WAL range")
        _write_uvarint(out, zigzag)
    elif isinstance(value, float):
        out.append(0x64)  # d
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(0x73)  # s
        _write_uvarint(out, len(encoded))
        out += encoded
    elif isinstance(value, (list, tuple)):
        out.append(0x6C if isinstance(value, list) else 0x74)  # l / t
        _write_uvarint(out, len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(0x6D)  # m
        _write_uvarint(out, len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise WalFormatError(f"binary WAL dict keys must be strings, got {key!r}")
            encoded = key.encode("utf-8")
            _write_uvarint(out, len(encoded))
            out += encoded
            _encode_value(value[key], out)
    else:
        raise WalFormatError(
            f"value of type {type(value).__name__} is not binary-WAL-encodable"
        )


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise WalFormatError("truncated binary record")
    tag = data[offset]
    offset += 1
    if tag == 0x4E:
        return None, offset
    if tag == 0x54:
        return True, offset
    if tag == 0x46:
        return False, offset
    if tag == 0x69:
        zigzag, offset = _read_uvarint(data, offset)
        return (zigzag >> 1) ^ -(zigzag & 1), offset
    if tag == 0x64:
        if offset + 8 > len(data):
            raise WalFormatError("truncated float in binary record")
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag == 0x73:
        length, offset = _read_uvarint(data, offset)
        if offset + length > len(data):
            raise WalFormatError("truncated string in binary record")
        try:
            return data[offset : offset + length].decode("utf-8"), offset + length
        except UnicodeDecodeError as error:
            raise WalFormatError(f"binary record string is not UTF-8: {error}") from None
    if tag in (0x6C, 0x74):
        count, offset = _read_uvarint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return (items if tag == 0x6C else tuple(items)), offset
    if tag == 0x6D:
        count, offset = _read_uvarint(data, offset)
        mapping: Dict[str, Any] = {}
        for _ in range(count):
            length, offset = _read_uvarint(data, offset)
            if offset + length > len(data):
                raise WalFormatError("truncated dict key in binary record")
            key = data[offset : offset + length].decode("utf-8")
            offset += length
            mapping[key], offset = _decode_value(data, offset)
        return mapping, offset
    raise WalFormatError(f"unknown binary value tag 0x{tag:02x}")


def encode_record_binary(doc: Dict[str, Any]) -> bytes:
    """Frame one document as a length-prefixed CRC-guarded binary record."""
    payload = bytearray()
    _encode_value(doc, payload)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _FRAME.pack(len(payload), crc) + bytes(payload)


def scan_binary_records(data: bytes) -> Tuple[List[Dict[str, Any]], int, int]:
    """Scan binary record bytes (segment magic already stripped)."""
    records: List[Dict[str, Any]] = []
    offset = 0
    torn = 0
    size = len(data)
    while offset < size:
        if size - offset < _FRAME.size:
            torn = 1
            break
        length, expected = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if size - start < length:
            torn = 1
            break
        payload = data[start : start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != expected:
            torn = 1
            break
        try:
            doc, consumed = _decode_value(payload, 0)
            if consumed != length or not isinstance(doc, dict):
                raise WalFormatError("binary record payload malformed")
        except WalFormatError:
            torn = 1
            break
        records.append(doc)
        offset = start + length
    return records, offset, torn
