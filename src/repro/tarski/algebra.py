"""Binary relations and (a finite fragment of) Tarski's algebra.

A :class:`BinaryRelation` is a set of ordered pairs with the classical
operations of the calculus of relations:

* Boolean: union, intersection, difference;
* Peircean: composition (``;``), converse (``˘``);
* constants relative to a finite universe: identity, diversity, the
  universal relation;
* derived helpers used by the GOOD engine: domain, range, restriction
  of either side to a set, image of a set.

Everything is immutable; operators are overloaded (``|``, ``&``, ``-``,
``@`` for composition, ``~r`` is *not* complement but converse — the
complement needs a universe, use :meth:`complement`).  Pair iteration
is deterministic (sorted).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Tuple, Any, Dict, Set

Pair = Tuple[Any, Any]


class BinaryRelation:
    """An immutable set of ordered pairs with relation algebra ops."""

    __slots__ = ("_pairs", "_by_left", "_by_right")

    def __init__(self, pairs: Iterable[Pair] = ()) -> None:
        self._pairs: FrozenSet[Pair] = frozenset(pairs)
        by_left: Dict[Any, Set[Any]] = {}
        by_right: Dict[Any, Set[Any]] = {}
        for left, right in self._pairs:
            by_left.setdefault(left, set()).add(right)
            by_right.setdefault(right, set()).add(left)
        self._by_left = by_left
        self._by_right = by_right

    # ------------------------------------------------------------------
    # constants
    # ------------------------------------------------------------------
    @staticmethod
    def identity(universe: Iterable[Any]) -> "BinaryRelation":
        """The identity relation over ``universe``."""
        return BinaryRelation((x, x) for x in universe)

    @staticmethod
    def universal(universe: Iterable[Any]) -> "BinaryRelation":
        """The universal relation over ``universe``."""
        items = list(universe)
        return BinaryRelation((x, y) for x in items for y in items)

    @staticmethod
    def empty() -> "BinaryRelation":
        """The empty relation."""
        return BinaryRelation()

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def union(self, other: "BinaryRelation") -> "BinaryRelation":
        """Set union."""
        return BinaryRelation(self._pairs | other._pairs)

    def intersection(self, other: "BinaryRelation") -> "BinaryRelation":
        """Set intersection."""
        return BinaryRelation(self._pairs & other._pairs)

    def difference(self, other: "BinaryRelation") -> "BinaryRelation":
        """Set difference."""
        return BinaryRelation(self._pairs - other._pairs)

    def complement(self, universe: Iterable[Any]) -> "BinaryRelation":
        """Complement relative to ``universe × universe``."""
        items = list(universe)
        return BinaryRelation(
            (x, y) for x in items for y in items if (x, y) not in self._pairs
        )

    # ------------------------------------------------------------------
    # Peircean operations
    # ------------------------------------------------------------------
    def converse(self) -> "BinaryRelation":
        """The converse relation (all pairs flipped)."""
        return BinaryRelation((right, left) for left, right in self._pairs)

    def compose(self, other: "BinaryRelation") -> "BinaryRelation":
        """Relational composition: pairs (x, z) with x R y S z."""
        result = set()
        for left, middles in self._by_left.items():
            for middle in middles:
                for right in other._by_left.get(middle, ()):
                    result.add((left, right))
        return BinaryRelation(result)

    def transitive_closure(self) -> "BinaryRelation":
        """The transitive closure R⁺ (iterated composition)."""
        closure = self
        while True:
            bigger = closure.union(closure.compose(self))
            if len(bigger) == len(closure):
                return closure
            closure = bigger

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def domain(self) -> FrozenSet[Any]:
        """The set of left elements."""
        return frozenset(self._by_left)

    def range(self) -> FrozenSet[Any]:
        """The set of right elements."""
        return frozenset(self._by_right)

    def restrict_left(self, keep: AbstractSet[Any]) -> "BinaryRelation":
        """Pairs whose left element is in ``keep``."""
        return BinaryRelation(
            (left, right) for left, right in self._pairs if left in keep
        )

    def restrict_right(self, keep: AbstractSet[Any]) -> "BinaryRelation":
        """Pairs whose right element is in ``keep``."""
        return BinaryRelation(
            (left, right) for left, right in self._pairs if right in keep
        )

    def image(self, of: AbstractSet[Any]) -> FrozenSet[Any]:
        """The image of a set: {y : x R y, x ∈ of}."""
        result: Set[Any] = set()
        for x in of:
            result.update(self._by_left.get(x, ()))
        return frozenset(result)

    def preimage(self, of: AbstractSet[Any]) -> FrozenSet[Any]:
        """The preimage of a set: {x : x R y, y ∈ of}."""
        result: Set[Any] = set()
        for y in of:
            result.update(self._by_right.get(y, ()))
        return frozenset(result)

    def successors(self, left: Any) -> FrozenSet[Any]:
        """All y with ``left R y``."""
        return frozenset(self._by_left.get(left, ()))

    def predecessors(self, right: Any) -> FrozenSet[Any]:
        """All x with ``x R right``."""
        return frozenset(self._by_right.get(right, ()))

    def add(self, left: Any, right: Any) -> "BinaryRelation":
        """A new relation with one more pair."""
        if (left, right) in self._pairs:
            return self
        return BinaryRelation(self._pairs | {(left, right)})

    def remove(self, left: Any, right: Any) -> "BinaryRelation":
        """A new relation with one pair removed."""
        if (left, right) not in self._pairs:
            return self
        return BinaryRelation(self._pairs - {(left, right)})

    def remove_all_with(self, element: Any) -> "BinaryRelation":
        """A new relation without any pair touching ``element``."""
        return BinaryRelation(
            (left, right)
            for left, right in self._pairs
            if left != element and right != element
        )

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __or__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.union(other)

    def __and__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.intersection(other)

    def __sub__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.difference(other)

    def __matmul__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.compose(other)

    def __invert__(self) -> "BinaryRelation":
        return self.converse()

    def __contains__(self, pair: object) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(sorted(self._pairs, key=repr))

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryRelation):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryRelation({len(self._pairs)} pairs)"
