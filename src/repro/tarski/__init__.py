"""The Tarski Data Model implementation of GOOD (Section 5, ref 27).

"At Indiana University, an alternative approach to implementing the
GOOD system is explored.  There, a binary relational model, called the
Tarski Data Model, is used to store and compute with GOOD databases.
The model includes its own (binary) relational algebra, which is
inspired by Tarski's work."

* :mod:`repro.tarski.algebra` — binary relations and Tarski's relation
  algebra: union, intersection, difference, converse, composition,
  identity/diversity over a universe, domain/range restriction;
* :mod:`repro.tarski.engine` — :class:`TarskiEngine`: a GOOD instance
  stored purely as binary relations (one per edge label, plus the
  node-label and print-value relations), pattern matching driven by
  arc-consistency over algebra expressions, and the five basic
  operations as relation updates.

Experiment S2 proves the engine equivalent to the native graph engine.
"""

from repro.tarski.algebra import BinaryRelation
from repro.tarski.engine import TarskiEngine

__all__ = ["BinaryRelation", "TarskiEngine"]
