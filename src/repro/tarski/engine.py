"""GOOD stored and computed with binary relations (the Tarski engine).

Storage: the entire instance is a family of binary relations —

* ``member`` : oid → class label ("classes as unary predicates curried
  into a binary relation", the Tarski Data Model trick);
* ``value:P`` : oid → print value, one per printable class;
* ``edge:λ`` : src oid → dst oid, one per edge label (functional and
  multivalued alike — functionality is an integrity property, not a
  storage distinction).

Pattern matching: per-node candidate sets are seeded from ``member``
(and ``value:P`` for constants/predicates), then refined by an
arc-consistency loop expressed purely through the algebra of
:mod:`repro.tarski.algebra` (image/preimage = composition with a test
relation), and finally enumerated by backtracking along pattern edges.

The five basic operations are implemented as functional updates of the
relation family.  Experiment S2 checks equivalence with the native
engine on random programs.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.errors import BackendError, EdgeConflictError
from repro.core.instance import Instance
from repro.core.macros import RecursiveEdgeAddition
from repro.core.matching import Matching
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
    OperationReport,
)
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT, Edge
from repro.tarski.algebra import BinaryRelation
from repro.txn import faults as _faults
from repro.txn import guards as _guards
from repro.txn.transaction import atomic_run


class TarskiEngine:
    """A GOOD engine over a family of binary relations."""

    def __init__(self, scheme: Scheme) -> None:
        self.scheme = scheme
        self.member = BinaryRelation()  # (oid, label)
        self.values: Dict[str, BinaryRelation] = {}  # label -> (oid, value)
        self.edges: Dict[str, BinaryRelation] = {}  # edge label -> (src, dst)
        self._next_oid = 0
        # attached undo journals (repro.txn.journal.TarskiJournal);
        # relations update functionally, so journalling a write is just
        # keeping the old (immutable) reference — see _note_* below
        self._journals: list = []

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_instance(cls, instance: Instance, copy_scheme: bool = True) -> "TarskiEngine":
        """Load a native instance into relation form."""
        scheme = instance.scheme.copy() if copy_scheme else instance.scheme
        engine = cls(scheme)
        member_pairs = []
        for node_id in instance.nodes():
            record = instance.node_record(node_id)
            member_pairs.append((node_id, record.label))
            if record.has_print:
                engine.values[record.label] = engine.values.get(
                    record.label, BinaryRelation()
                ).add(node_id, record.print_value)
            engine._next_oid = max(engine._next_oid, node_id + 1)
        engine.member = BinaryRelation(member_pairs)
        edge_pairs: Dict[str, List[Tuple[int, int]]] = {}
        for edge in instance.edges():
            edge_pairs.setdefault(edge.label, []).append((edge.source, edge.target))
        engine.edges = {label: BinaryRelation(pairs) for label, pairs in edge_pairs.items()}
        return engine

    def to_instance(self) -> Instance:
        """Export as a native instance, preserving oids."""
        instance = Instance(self.scheme)
        for oid, label in sorted(self.member, key=lambda pair: pair[0]):
            if self.scheme.is_printable_label(label):
                value = self.print_of(oid)
                instance.add_printable(label, value, _node_id=oid)
            else:
                instance.add_object(label, _node_id=oid)
        for label in sorted(self.edges):
            for src, dst in sorted(self.edges[label], key=lambda pair: (pair[0], pair[1])):
                instance.add_edge(src, label, dst)
        return instance

    def restrict_to(self, scheme: Scheme) -> None:
        """Drop structure not conformant with ``scheme`` (footnote 4)."""
        keep = {
            oid for oid, label in self.member if scheme.has_node_label(label)
        }
        for oid, label in list(self.member):
            if oid not in keep:
                self.delete_node(oid)
        declared = scheme.functional_edge_labels | scheme.multivalued_edge_labels
        for edge_label in list(self.edges):
            if edge_label not in declared:
                self._note_edges(edge_label)
                del self.edges[edge_label]
                continue
            relation = self.edges[edge_label]
            kept = [
                (src, dst)
                for src, dst in relation
                if scheme.allows_edge(self.label_of(src), edge_label, self.label_of(dst))
            ]
            if len(kept) != len(relation):
                self._note_edges(edge_label)
                self.edges[edge_label] = BinaryRelation(kept)
        for journal in list(self._journals):
            journal.note_rebind(self.scheme, scheme)
        self.scheme = scheme

    # ------------------------------------------------------------------
    # transactional target protocol (repro.txn.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self):
        """Opaque full-state snapshot of the relation family.

        :class:`BinaryRelation` values are updated functionally, so the
        snapshot shares them safely; only the dicts are copied.
        """
        return (
            self.scheme,
            self.scheme.copy(),
            self.member,
            dict(self.values),
            dict(self.edges),
            self._next_oid,
        )

    def restore_state(self, state) -> None:
        """Reinstall a :meth:`capture_state` snapshot (reusably)."""
        scheme_object, scheme_copy, member, values, edges, next_oid = state
        scheme_object.restore_from(scheme_copy)
        self.scheme = scheme_object
        self.member = member
        self.values = dict(values)
        self.edges = dict(edges)
        self._next_oid = next_oid

    def state_summary(self) -> Tuple[int, int]:
        """``(node_count, edge_count)`` over the relation family."""
        return (len(self.member), sum(len(relation) for relation in self.edges.values()))

    def check_invariants(self) -> None:
        """Re-validate by exporting to a native (checking) instance."""
        self.to_instance().validate()

    def begin_journal(self):
        """Attach an O(changes) undo journal (:mod:`repro.txn.journal`).

        O(1), and so is every journalled write: relations update
        functionally, so the journal records old immutable references.
        """
        from repro.txn.journal import TarskiJournal

        return TarskiJournal(self)

    def rollback_journal(self, journal, mark) -> None:
        """Reverse-replay ``journal`` back to ``mark``."""
        journal.rollback_to(mark)

    # ------------------------------------------------------------------
    # journal notes: record the *old* relation before a write
    # ------------------------------------------------------------------
    def _note_member(self) -> None:
        for journal in self._journals:
            journal.entries.append(("member", self.member))

    def _note_value(self, label: str) -> None:
        if not self._journals:
            return
        from repro.txn.journal import MISSING

        old = self.values.get(label, MISSING)
        for journal in self._journals:
            journal.entries.append(("value", label, old))

    def _note_edges(self, label: str) -> None:
        if not self._journals:
            return
        from repro.txn.journal import MISSING

        old = self.edges.get(label, MISSING)
        for journal in self._journals:
            journal.entries.append(("edges", label, old))

    # ------------------------------------------------------------------
    # node/edge primitives (functional updates)
    # ------------------------------------------------------------------
    def new_oid(self) -> int:
        """Hand out a fresh oid."""
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def label_of(self, oid: int) -> str:
        """Node label through the ``member`` relation."""
        labels = self.member.successors(oid)
        if not labels:
            raise BackendError(f"unknown oid {oid!r}")
        return next(iter(labels))

    def print_of(self, oid: int) -> Any:
        """Print value through the ``value:P`` relation."""
        label = self.label_of(oid)
        relation = self.values.get(label)
        if relation is None:
            return NO_PRINT
        found = relation.successors(oid)
        return next(iter(found)) if found else NO_PRINT

    def oids_with_label(self, label: str) -> FrozenSet[int]:
        """All oids of a class (preimage of the label atom)."""
        return self.member.predecessors(label)

    def find_printable(self, label: str, value: Any) -> Optional[int]:
        """Lookup a constant via the converse of ``value:P``."""
        relation = self.values.get(label)
        if relation is None:
            return None
        found = relation.predecessors(value)
        return min(found) if found else None

    def create_object(self, label: str) -> int:
        """Insert an object node."""
        oid = self.new_oid()
        if self._journals:
            self._note_member()
        self.member = self.member.add(oid, label)
        return oid

    def get_or_create_printable(self, label: str, value: Any) -> int:
        """The unique printable (label, value), created if absent."""
        found = self.find_printable(label, value)
        if found is not None:
            return found
        oid = self.new_oid()
        if self._journals:
            self._note_member()
            self._note_value(label)
        self.member = self.member.add(oid, label)
        self.values[label] = self.values.get(label, BinaryRelation()).add(oid, value)
        return oid

    def edge_relation(self, label: str) -> BinaryRelation:
        """The (possibly empty) relation of an edge label."""
        return self.edges.get(label, BinaryRelation.empty())

    def add_edge(self, src: int, label: str, dst: int) -> bool:
        """Insert an edge pair; ``False`` if present."""
        relation = self.edge_relation(label)
        if (src, dst) in relation:
            return False
        if self._journals:
            self._note_edges(label)
        self.edges[label] = relation.add(src, dst)
        return True

    def remove_edge(self, src: int, label: str, dst: int) -> bool:
        """Delete an edge pair; ``False`` if absent."""
        relation = self.edge_relation(label)
        if (src, dst) not in relation:
            return False
        if self._journals:
            self._note_edges(label)
        self.edges[label] = relation.remove(src, dst)
        return True

    def delete_node(self, oid: int) -> None:
        """Delete a node and every pair touching it."""
        label = self.label_of(oid)
        if self._journals:
            self._note_member()
        self.member = self.member.remove(oid, label)
        if label in self.values:
            if self._journals:
                self._note_value(label)
            self.values[label] = self.values[label].remove_all_with(oid)
        for edge_label in list(self.edges):
            relation = self.edges[edge_label]
            if not relation.successors(oid) and not relation.predecessors(oid):
                continue
            if self._journals:
                self._note_edges(edge_label)
            self.edges[edge_label] = relation.remove_all_with(oid)

    # ------------------------------------------------------------------
    # pattern matching by arc consistency over the algebra
    # ------------------------------------------------------------------
    def candidates(self, pattern: Pattern) -> Dict[int, FrozenSet[int]]:
        """Arc-consistent per-node candidate sets.

        Seeds each pattern node from ``member`` (plus value lookups)
        and iterates image/preimage refinement along pattern edges
        until a fixpoint.
        """
        candidate: Dict[int, FrozenSet[int]] = {}
        for node_id in pattern.nodes():
            record = pattern.node_record(node_id)
            seed = self.oids_with_label(record.label)
            if record.has_print:
                found = self.find_printable(record.label, record.print_value)
                seed = seed & (frozenset() if found is None else frozenset((found,)))
            predicate = pattern.predicate_of(node_id)
            if predicate is not None:
                relation = self.values.get(record.label, BinaryRelation.empty())
                seed = frozenset(
                    oid
                    for oid in seed
                    if relation.successors(oid) and predicate(next(iter(relation.successors(oid))))
                )
            candidate[node_id] = seed
        edges = [edge.as_tuple() for edge in pattern.edges()]
        changed = True
        while changed:
            changed = False
            for source, label, target in edges:
                relation = self.edge_relation(label)
                narrowed = candidate[source] & relation.preimage(candidate[target])
                if narrowed != candidate[source]:
                    candidate[source] = narrowed
                    changed = True
                narrowed = candidate[target] & relation.image(candidate[source])
                if narrowed != candidate[target]:
                    candidate[target] = narrowed
                    changed = True
        return candidate

    def matchings(self, pattern) -> List[Matching]:
        """All matchings (crossed patterns get negation semantics)."""
        if isinstance(pattern, NegatedPattern):
            positive = self.matchings(pattern.positive)
            shared = list(pattern.positive.nodes())
            blocked: Set[Tuple[int, ...]] = set()
            for extension in pattern.extensions:
                for matching in self.matchings(extension):
                    blocked.add(tuple(matching[node] for node in shared))
            return [
                matching
                for matching in positive
                if tuple(matching[node] for node in shared) not in blocked
            ]
        candidate = self.candidates(pattern)
        nodes = sorted(pattern.nodes(), key=lambda n: (len(candidate[n]), n))
        edges = [edge.as_tuple() for edge in pattern.edges()]
        results: List[Matching] = []
        assignment: Matching = {}

        def consistent(node: int, oid: int) -> bool:
            for source, label, target in edges:
                relation = self.edge_relation(label)
                if source == node and target in assignment:
                    if (oid, assignment[target]) not in relation:
                        return False
                if target == node and source in assignment:
                    if (assignment[source], oid) not in relation:
                        return False
                if source == node and target == node:
                    if (oid, oid) not in relation:
                        return False
            return True

        def backtrack(index: int) -> None:
            if index == len(nodes):
                results.append(dict(assignment))
                return
            node = nodes[index]
            for oid in sorted(candidate[node]):
                if consistent(node, oid):
                    assignment[node] = oid
                    backtrack(index + 1)
                    del assignment[node]

        backtrack(0)
        results.sort(key=lambda m: tuple(m[node] for node in sorted(pattern.nodes())))
        # crossed patterns charge through their recursive sub-calls
        _guards.charge_matchings(len(results))
        return results

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def run(self, operations, atomic: bool = True) -> List[OperationReport]:
        """Apply a sequence of operations in order.

        With ``atomic=True`` (the default) any failure rolls the engine
        back to the exact pre-run state (scheme included) before
        re-raising, with a
        :class:`~repro.txn.transaction.FailureReport` attached to the
        exception; ``atomic=False`` preserves the historical
        partial-mutation-on-error behavior.
        """
        if atomic:
            return atomic_run(self, operations, self.apply)
        reports: List[OperationReport] = []
        for index, operation in enumerate(operations):
            _faults.before_operation(operation, index)
            reports.append(self.apply(operation))
            _faults.after_operation(operation, index)
        return reports

    def apply(self, operation: Operation) -> OperationReport:
        """Apply one operation; dispatch on its type."""
        _faults.on_engine_call(self, operation)
        if isinstance(operation, NodeAddition):
            return self._node_addition(operation)
        if isinstance(operation, RecursiveEdgeAddition):
            return self._recursive_edge_addition(operation)
        if isinstance(operation, EdgeAddition):
            return self._edge_addition(operation)
        if isinstance(operation, NodeDeletion):
            return self._node_deletion(operation)
        if isinstance(operation, EdgeDeletion):
            return self._edge_deletion(operation)
        if isinstance(operation, Abstraction):
            return self._abstraction(operation)
        raise BackendError(
            f"the Tarski engine does not execute {type(operation).__name__}"
        )

    def _materialize_constants(self, operation: Operation) -> None:
        patterns = [operation.positive_pattern]
        if isinstance(operation.source_pattern, NegatedPattern):
            patterns.extend(operation.source_pattern.extensions)
        for pattern in patterns:
            for node_id in pattern.nodes():
                record = pattern.node_record(node_id)
                if record.has_print and self.scheme.is_printable_label(record.label):
                    self.get_or_create_printable(record.label, record.print_value)

    def _node_addition(self, op: NodeAddition) -> OperationReport:
        op.extend_scheme(self.scheme)
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        nodes_added: List[int] = []
        edges_added: List[Edge] = []
        reused = 0
        for matching in matchings:
            targets = tuple(matching[m] for _, m in op.edges)
            if self._existing_addition_node(op, targets) is not None:
                reused += 1
                continue
            oid = self.create_object(op.node_label)
            nodes_added.append(oid)
            for (edge_label, _), target in zip(op.edges, targets):
                self.add_edge(oid, edge_label, target)
                edges_added.append(Edge(oid, edge_label, target))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            nodes_added=tuple(nodes_added),
            edges_added=tuple(edges_added),
            reused_count=reused,
        )

    def _existing_addition_node(self, op: NodeAddition, targets: Tuple[int, ...]) -> Optional[int]:
        candidates = self.oids_with_label(op.node_label)
        if not op.edges:
            return min(candidates) if candidates else None
        for (edge_label, _), target in zip(op.edges, targets):
            relation = self.edge_relation(edge_label)
            candidates = candidates & relation.predecessors(target)
            if not candidates:
                return None
        return min(candidates) if candidates else None

    def _edge_addition(self, op: EdgeAddition) -> OperationReport:
        op.extend_scheme(self.scheme)
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        planned: List[Tuple[int, str, int]] = []
        seen: Set[Tuple[int, str, int]] = set()
        for matching in matchings:
            for source, edge_label, target in op.edges:
                concrete = (matching[source], edge_label, matching[target])
                if concrete not in seen:
                    seen.add(concrete)
                    planned.append(concrete)
        self._check_edge_consistency(planned)
        edges_added: List[Edge] = []
        for source, edge_label, target in planned:
            if self.add_edge(source, edge_label, target):
                edges_added.append(Edge(source, edge_label, target))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            edges_added=tuple(edges_added),
        )

    def _check_edge_consistency(self, planned: List[Tuple[int, str, int]]) -> None:
        combined: Dict[Tuple[int, str], Set[int]] = {}
        for source, edge_label, target in planned:
            combined.setdefault((source, edge_label), set()).add(target)
        for (source, edge_label), targets in sorted(combined.items()):
            existing = self.edge_relation(edge_label).successors(source)
            all_targets = set(existing) | targets
            if self.scheme.is_functional(edge_label) and len(all_targets) > 1:
                raise EdgeConflictError(
                    f"edge addition would give node {source} {len(all_targets)} different "
                    f"{edge_label!r} (functional) edges"
                )
            labels = {self.label_of(t) for t in all_targets}
            if len(labels) > 1:
                raise EdgeConflictError(
                    f"edge addition would give node {source} {edge_label!r}-successors "
                    f"with mixed labels {sorted(labels)!r}"
                )

    def _node_deletion(self, op: NodeDeletion) -> OperationReport:
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        victims = sorted({matching[op.node] for matching in matchings})
        for victim in victims:
            if self.member.successors(victim):
                self.delete_node(victim)
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            nodes_removed=tuple(victims),
        )

    def _edge_deletion(self, op: EdgeDeletion) -> OperationReport:
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        victims: Set[Tuple[int, str, int]] = set()
        for matching in matchings:
            for source, edge_label, target in op.edges:
                victims.add((matching[source], edge_label, matching[target]))
        edges_removed: List[Edge] = []
        for source, edge_label, target in sorted(victims):
            if self.remove_edge(source, edge_label, target):
                edges_removed.append(Edge(source, edge_label, target))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            edges_removed=tuple(edges_removed),
        )

    def _abstraction(self, op: Abstraction) -> OperationReport:
        op.extend_scheme(self.scheme)
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        matched = sorted({matching[op.node] for matching in matchings})
        alpha = self.edge_relation(op.alpha)
        alpha_set = {x: alpha.successors(x) for x in matched}
        groups: Dict[FrozenSet[int], Set[int]] = {}
        for member in matched:
            groups.setdefault(alpha_set[member], set()).add(member)
        if op.include_unmatched:
            member_label = op.positive_pattern.label_of(op.node)
            for oid in sorted(self.oids_with_label(member_label)):
                key = alpha.successors(oid)
                if key in groups:
                    groups[key].add(oid)
        nodes_added: List[int] = []
        edges_added: List[Edge] = []
        reused = 0
        for key in sorted(groups, key=lambda k: tuple(sorted(k))):
            members = groups[key]
            if self._existing_group_node(op, members) is not None:
                reused += 1
                continue
            oid = self.create_object(op.set_label)
            nodes_added.append(oid)
            for member in sorted(members):
                self.add_edge(oid, op.beta, member)
                edges_added.append(Edge(oid, op.beta, member))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            nodes_added=tuple(nodes_added),
            edges_added=tuple(edges_added),
            reused_count=reused,
        )

    def _existing_group_node(self, op: Abstraction, members: Set[int]) -> Optional[int]:
        beta = self.edge_relation(op.beta)
        if members:
            candidates = beta.predecessors(min(members)) & self.oids_with_label(op.set_label)
        else:
            candidates = self.oids_with_label(op.set_label)
        for candidate in sorted(candidates):
            if set(beta.successors(candidate)) == members:
                return candidate
        return None

    def _recursive_edge_addition(self, op: RecursiveEdgeAddition) -> OperationReport:
        sub_reports: List[OperationReport] = []
        edges_added: List[Edge] = []
        while True:
            report = self._edge_addition(op.edge_addition)
            sub_reports.append(report)
            if not report.edges_added:
                break
            edges_added.extend(report.edges_added)
        return OperationReport(
            operation=f"EA*[{op.edge_addition.describe()} x{len(sub_reports)}]",
            matching_count=sub_reports[0].matching_count,
            edges_added=tuple(edges_added),
            sub_reports=tuple(sub_reports),
        )
