"""A standalone relational algebra (the correctness oracle for C1).

Relations are sets of tuples over a named attribute list; the algebra
is Codd's: selection (attribute = attribute, attribute = constant),
projection, cartesian product, union, difference and renaming.  The
direct evaluator here defines the semantics the GOOD compiler of
:mod:`repro.relcomp.compiler` must reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.core.errors import GoodError


class AlgebraError(GoodError):
    """Ill-typed relational algebra expression."""


@dataclass(frozen=True)
class Relation:
    """A relation: named attributes and a set of equal-length tuples."""

    attributes: Tuple[str, ...]
    rows: FrozenSet[Tuple[Any, ...]]

    @staticmethod
    def build(attributes: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Relation":
        """Validated constructor."""
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise AlgebraError(f"duplicate attribute names in {attrs!r}")
        frozen = frozenset(tuple(row) for row in rows)
        for row in frozen:
            if len(row) != len(attrs):
                raise AlgebraError(f"row {row!r} does not fit attributes {attrs!r}")
        return Relation(attrs, frozen)

    def column(self, attribute: str) -> int:
        """Index of an attribute."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise AlgebraError(f"no attribute {attribute!r} in {self.attributes!r}") from None

    @property
    def cardinality(self) -> int:
        """Number of tuples."""
        return len(self.rows)

    def sorted_rows(self) -> List[Tuple[Any, ...]]:
        """Rows in a deterministic order."""
        return sorted(self.rows, key=repr)


class RelationalDatabase:
    """A named collection of relations."""

    def __init__(self, relations: Mapping[str, Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = dict(relations)

    def add(self, name: str, relation: Relation) -> "RelationalDatabase":
        """Register a relation under ``name``."""
        self._relations[name] = relation
        return self

    def get(self, name: str) -> Relation:
        """Look a relation up."""
        try:
            return self._relations[name]
        except KeyError:
            raise AlgebraError(f"unknown relation {name!r}") from None

    def names(self) -> Tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def items(self):
        """(name, relation) pairs, sorted by name."""
        return sorted(self._relations.items())


# ----------------------------------------------------------------------
# expression trees
# ----------------------------------------------------------------------


class Expr:
    """Base class of algebra expressions."""

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        """The attribute tuple the expression produces."""
        raise NotImplementedError


@dataclass(frozen=True)
class Rel(Expr):
    """A base relation by name."""

    name: str

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        return db.get(self.name).attributes


@dataclass(frozen=True)
class AttrEq:
    """Condition: two attributes are equal."""

    left: str
    right: str


@dataclass(frozen=True)
class AttrConst:
    """Condition: an attribute equals a constant."""

    attribute: str
    value: Any


@dataclass(frozen=True)
class Select(Expr):
    """σ with a conjunction of equality conditions."""

    child: Expr
    conditions: Tuple[Any, ...]  # AttrEq | AttrConst

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        return self.child.schema(db)


@dataclass(frozen=True)
class Project(Expr):
    """π onto a subset of attributes (set semantics)."""

    child: Expr
    attributes: Tuple[str, ...]

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        child_schema = self.child.schema(db)
        for attribute in self.attributes:
            if attribute not in child_schema:
                raise AlgebraError(f"projection attribute {attribute!r} not in {child_schema!r}")
        return self.attributes


@dataclass(frozen=True)
class Product(Expr):
    """Cartesian product (operand schemas must be disjoint)."""

    left: Expr
    right: Expr

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        left_schema = self.left.schema(db)
        right_schema = self.right.schema(db)
        overlap = set(left_schema) & set(right_schema)
        if overlap:
            raise AlgebraError(f"product operands share attributes {sorted(overlap)!r}")
        return left_schema + right_schema


@dataclass(frozen=True)
class Union(Expr):
    """Set union of union-compatible operands."""

    left: Expr
    right: Expr

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        left_schema = self.left.schema(db)
        if left_schema != self.right.schema(db):
            raise AlgebraError("union operands are not union-compatible")
        return left_schema


@dataclass(frozen=True)
class Difference(Expr):
    """Set difference of union-compatible operands."""

    left: Expr
    right: Expr

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        left_schema = self.left.schema(db)
        if left_schema != self.right.schema(db):
            raise AlgebraError("difference operands are not union-compatible")
        return left_schema


@dataclass(frozen=True)
class Rename(Expr):
    """ρ: rename attributes via a mapping old → new."""

    child: Expr
    mapping: Tuple[Tuple[str, str], ...]

    @staticmethod
    def of(child: Expr, mapping: Mapping[str, str]) -> "Rename":
        """Convenience constructor from a dict."""
        return Rename(child, tuple(sorted(mapping.items())))

    def schema(self, db: RelationalDatabase) -> Tuple[str, ...]:
        child_schema = self.child.schema(db)
        as_dict = dict(self.mapping)
        renamed = tuple(as_dict.get(attribute, attribute) for attribute in child_schema)
        if len(set(renamed)) != len(renamed):
            raise AlgebraError(f"rename produces duplicate attributes {renamed!r}")
        return renamed


# ----------------------------------------------------------------------
# direct evaluator
# ----------------------------------------------------------------------


def evaluate(expr: Expr, db: RelationalDatabase) -> Relation:
    """Evaluate an expression bottom-up; the oracle semantics."""
    if isinstance(expr, Rel):
        return db.get(expr.name)
    if isinstance(expr, Select):
        child = evaluate(expr.child, db)
        rows = set(child.rows)
        for condition in expr.conditions:
            if isinstance(condition, AttrEq):
                li, ri = child.column(condition.left), child.column(condition.right)
                rows = {row for row in rows if row[li] == row[ri]}
            elif isinstance(condition, AttrConst):
                index = child.column(condition.attribute)
                rows = {row for row in rows if row[index] == condition.value}
            else:
                raise AlgebraError(f"unknown condition {condition!r}")
        return Relation(child.attributes, frozenset(rows))
    if isinstance(expr, Project):
        child = evaluate(expr.child, db)
        indexes = [child.column(attribute) for attribute in expr.attributes]
        return Relation(
            tuple(expr.attributes),
            frozenset(tuple(row[i] for i in indexes) for row in child.rows),
        )
    if isinstance(expr, Product):
        expr.schema(db)  # type check
        left = evaluate(expr.left, db)
        right = evaluate(expr.right, db)
        return Relation(
            left.attributes + right.attributes,
            frozenset(lrow + rrow for lrow in left.rows for rrow in right.rows),
        )
    if isinstance(expr, Union):
        expr.schema(db)
        left = evaluate(expr.left, db)
        right = evaluate(expr.right, db)
        return Relation(left.attributes, left.rows | right.rows)
    if isinstance(expr, Difference):
        expr.schema(db)
        left = evaluate(expr.left, db)
        right = evaluate(expr.right, db)
        return Relation(left.attributes, left.rows - right.rows)
    if isinstance(expr, Rename):
        child = evaluate(expr.child, db)
        return Relation(expr.schema(db), child.rows)
    raise AlgebraError(f"unknown expression {expr!r}")
