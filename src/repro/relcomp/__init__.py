"""Section 4.3 — relational and nested-relational completeness.

"When we restrict the language to only node and edge additions and
deletions, we obtain a language which is relationally complete in the
well-known sense proposed by Codd. ... By adding abstraction, one can
moreover simulate the nested relational algebra."

The paper leaves "the details of the simulation ... to the reader";
this package *is* those details, machine-checked:

* :mod:`repro.relcomp.relations` — a standalone relational algebra
  (relations, σ π × ∪ − ρ expression trees, direct evaluator) used as
  the correctness oracle;
* :mod:`repro.relcomp.encoding` — relations as GOOD classes ("a class
  R with functional edges labeled A1 A2 A3 to printable classes",
  tuples as objects);
* :mod:`repro.relcomp.compiler` — the compiler from algebra
  expressions to GOOD programs (difference uses the negation macro);
* :mod:`repro.relcomp.nested` — one-level nested relations, nest /
  unnest through GOOD, and the abstraction-based duplicate elimination
  of set values that plain additions cannot express.

Experiments C1/C2 check compiler output against direct evaluation on
randomly generated databases and expressions.
"""

from repro.relcomp.compiler import CompiledQuery, RelationalCompiler
from repro.relcomp.encoding import VALUE_LABEL, decode_relation, encode_database
from repro.relcomp.relations import (
    AttrConst,
    AttrEq,
    Difference,
    Expr,
    Product,
    Project,
    Relation,
    RelationalDatabase,
    Rel,
    Rename,
    Select,
    Union,
    evaluate,
)

__all__ = [
    "AttrConst",
    "AttrEq",
    "CompiledQuery",
    "Difference",
    "Expr",
    "Product",
    "Project",
    "Rel",
    "Relation",
    "RelationalCompiler",
    "RelationalDatabase",
    "Rename",
    "Select",
    "Union",
    "VALUE_LABEL",
    "decode_relation",
    "encode_database",
    "evaluate",
]
