"""Nested relations through GOOD with abstraction (experiment C2).

"By adding abstraction, one can moreover simulate the nested relational
algebra.  Nested relations are represented in an analogous manner as
standard relations, now using also multivalued edges.  The abstraction
operation is needed in this case to obtain 'faithful' simulations of
relation-valued attributes, meaning that duplicate relations can be
eliminated."

We implement one level of nesting (Schek/Scholl-style relations with
one set-valued attribute), the ``nest``/``unnest`` operators, and the
GOOD pipelines computing them:

* **nest** — a node addition keyed on the atomic attributes (the reuse
  check groups for free) followed by an edge addition attaching the
  set members through a multivalued edge;
* **unnest** — a node addition over the (tuple, member) pattern;
* **distinct set values** — *this* is where abstraction is essential:
  projecting a nested relation onto its set-valued attribute must
  identify tuples whose member sets are extensionally equal, which the
  additions/deletions fragment cannot do; one abstraction operation
  over the member edge does it.

The direct evaluator (:class:`NestedRelation` methods) is the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.instance import Instance
from repro.core.operations import Abstraction, EdgeAddition, NodeAddition
from repro.core.pattern import Pattern
from repro.core.program import Program
from repro.relcomp.encoding import VALUE_LABEL
from repro.relcomp.relations import AlgebraError, Relation

#: Multivalued edge label holding set-attribute members.
MEMBER_EDGE = "member"


@dataclass(frozen=True)
class NestedRelation:
    """Atomic attributes plus one set-valued attribute.

    Rows are (atomic value tuple, frozenset of member values).
    """

    attributes: Tuple[str, ...]
    set_attribute: str
    rows: FrozenSet[Tuple[Tuple[Any, ...], FrozenSet[Any]]]

    @staticmethod
    def build(
        attributes: Sequence[str],
        set_attribute: str,
        rows: Sequence[Tuple[Sequence[Any], Sequence[Any]]],
    ) -> "NestedRelation":
        """Validated constructor."""
        attrs = tuple(attributes)
        if set_attribute in attrs:
            raise AlgebraError("set attribute must not repeat an atomic attribute")
        frozen = frozenset((tuple(atomic), frozenset(members)) for atomic, members in rows)
        for atomic, _ in frozen:
            if len(atomic) != len(attrs):
                raise AlgebraError(f"row {atomic!r} does not fit attributes {attrs!r}")
        return NestedRelation(attrs, set_attribute, frozen)

    # ------------------------------------------------------------------
    # direct (oracle) semantics
    # ------------------------------------------------------------------
    @staticmethod
    def nest(flat: Relation, nested_attribute: str, set_attribute: str) -> "NestedRelation":
        """Group a flat relation on all attributes but one."""
        index = flat.column(nested_attribute)
        keep = tuple(a for a in flat.attributes if a != nested_attribute)
        keep_indexes = [flat.column(a) for a in keep]
        groups: Dict[Tuple[Any, ...], Set[Any]] = {}
        for row in flat.rows:
            key = tuple(row[i] for i in keep_indexes)
            groups.setdefault(key, set()).add(row[index])
        return NestedRelation(
            keep,
            set_attribute,
            frozenset((key, frozenset(members)) for key, members in groups.items()),
        )

    def unnest(self, member_attribute: str) -> Relation:
        """Flatten back: one row per (tuple, member)."""
        rows = set()
        for atomic, members in self.rows:
            for member in members:
                rows.add(atomic + (member,))
        return Relation(self.attributes + (member_attribute,), frozenset(rows))

    def distinct_sets(self) -> FrozenSet[FrozenSet[Any]]:
        """The extensionally distinct set values (π onto the set attr)."""
        return frozenset(members for _, members in self.rows)


# ----------------------------------------------------------------------
# GOOD pipelines
# ----------------------------------------------------------------------


def nest_via_good(
    instance: Instance,
    class_label: str,
    attributes: Tuple[str, ...],
    nested_attribute: str,
    result_label: str,
) -> Instance:
    """Materialise ``nest`` as a GOOD program; returns the new instance.

    Result objects of ``result_label`` carry the atomic attributes as
    functional edges and the set members through the multivalued
    ``member`` edge.
    """
    if nested_attribute not in attributes:
        raise AlgebraError(f"{nested_attribute!r} is not an attribute of {class_label!r}")
    keep = tuple(a for a in attributes if a != nested_attribute)
    scheme = instance.scheme.copy()
    if not scheme.is_object_label(result_label):
        scheme.add_object_label(result_label)
    if MEMBER_EDGE not in scheme.multivalued_edge_labels:
        scheme.add_multivalued_edge_label(MEMBER_EDGE)
    scheme.add_property(result_label, MEMBER_EDGE, VALUE_LABEL)
    for attribute in keep:
        scheme.add_property(result_label, attribute, VALUE_LABEL)

    # step 1: one result node per distinct atomic-attribute combination
    key_pattern = Pattern(scheme)
    value_nodes: Dict[str, int] = {}
    tuple_node = key_pattern.add_node(class_label)
    for attribute in attributes:
        value_nodes[attribute] = key_pattern.add_node(VALUE_LABEL)
        key_pattern.add_edge(tuple_node, attribute, value_nodes[attribute])
    group = NodeAddition(key_pattern, result_label, [(a, value_nodes[a]) for a in keep])

    # step 2: attach the members through the multivalued edge
    attach_pattern = Pattern(scheme)
    attach_values: Dict[str, int] = {}
    flat_node = attach_pattern.add_node(class_label)
    for attribute in attributes:
        attach_values[attribute] = attach_pattern.add_node(VALUE_LABEL)
        attach_pattern.add_edge(flat_node, attribute, attach_values[attribute])
    group_node = attach_pattern.add_node(result_label)
    for attribute in keep:
        attach_pattern.add_edge(group_node, attribute, attach_values[attribute])
    attach = EdgeAddition(
        attach_pattern, [(group_node, MEMBER_EDGE, attach_values[nested_attribute])]
    )

    working = instance.copy(scheme=scheme)
    Program([group, attach]).run(working, in_place=True)
    return working


def unnest_via_good(
    instance: Instance,
    class_label: str,
    attributes: Tuple[str, ...],
    member_attribute: str,
    result_label: str,
) -> Instance:
    """Materialise ``unnest`` as one node addition."""
    scheme = instance.scheme.copy()
    pattern = Pattern(scheme)
    value_nodes: Dict[str, int] = {}
    nested_node = pattern.add_node(class_label)
    for attribute in attributes:
        value_nodes[attribute] = pattern.add_node(VALUE_LABEL)
        pattern.add_edge(nested_node, attribute, value_nodes[attribute])
    member_node = pattern.add_node(VALUE_LABEL)
    pattern.add_edge(nested_node, MEMBER_EDGE, member_node)
    flatten = NodeAddition(
        pattern,
        result_label,
        [(a, value_nodes[a]) for a in attributes] + [(member_attribute, member_node)],
    )
    working = instance.copy(scheme=scheme)
    Program([flatten]).run(working, in_place=True)
    return working


def distinct_sets_via_good(
    instance: Instance, class_label: str, set_class_label: str
) -> Instance:
    """One abstraction: a set object per distinct member extension.

    ``set_class_label`` objects point to the members of their class
    through ``contains`` edges; their count equals
    :meth:`NestedRelation.distinct_sets` — this is the duplicate
    elimination the paper says needs abstraction.
    """
    scheme = instance.scheme.copy()
    pattern = Pattern(scheme)
    node = pattern.add_node(class_label)
    abstraction = Abstraction(
        pattern, node, set_class_label, alpha=MEMBER_EDGE, beta="contains"
    )
    working = instance.copy(scheme=scheme)
    Program([abstraction]).run(working, in_place=True)
    return working


def decode_nested(
    instance: Instance,
    class_label: str,
    attributes: Tuple[str, ...],
    set_attribute: str,
) -> NestedRelation:
    """Read a nested class back into a :class:`NestedRelation`."""
    rows: List[Tuple[Tuple[Any, ...], FrozenSet[Any]]] = []
    for node in sorted(instance.nodes_with_label(class_label)):
        atomic = []
        complete = True
        for attribute in attributes:
            target = instance.functional_target(node, attribute)
            if target is None:
                complete = False
                break
            atomic.append(instance.print_of(target))
        if not complete:
            continue
        members = frozenset(
            instance.print_of(t) for t in instance.out_neighbours(node, MEMBER_EDGE)
        )
        rows.append((tuple(atomic), members))
    return NestedRelation(attributes, set_attribute, frozenset(rows))
