"""Relations as GOOD classes (Section 4.3).

"Suppose we represent a relation R with attributes A1 A2 A3 with
domains D1, D2, D3 as a class R with functional edges labeled A1, A2,
A3 to printable classes D1, D2, D3.  Tuples of R are represented by
objects of this class."

We use a single catch-all printable class ``V`` for all attribute
domains (the values of the generated test databases are mixed strings
and numbers; the simulation is domain-agnostic).  Every tuple is one
object; every attribute one functional edge to the unique printable
node carrying its value.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.instance import Instance
from repro.core.scheme import Scheme
from repro.core.labels import ANY_DOMAIN
from repro.relcomp.relations import Relation, RelationalDatabase

#: The printable class holding all attribute values.
VALUE_LABEL = "V"


def encode_database(db: RelationalDatabase) -> Tuple[Scheme, Instance]:
    """Encode every relation of ``db`` as a GOOD class with tuples."""
    scheme = Scheme()
    scheme.add_printable_label(VALUE_LABEL, ANY_DOMAIN)
    for name, relation in db.items():
        scheme.add_object_label(name)
        for attribute in relation.attributes:
            if attribute not in scheme.functional_edge_labels:
                scheme.add_functional_edge_label(attribute)
            scheme.add_property(name, attribute, VALUE_LABEL)
    instance = Instance(scheme)
    for name, relation in db.items():
        for row in relation.sorted_rows():
            node = instance.add_object(name)
            for attribute, value in zip(relation.attributes, row):
                instance.add_edge(node, attribute, instance.printable(VALUE_LABEL, value))
    return scheme, instance


def decode_relation(instance: Instance, class_label: str, attributes: Tuple[str, ...]) -> Relation:
    """Read a class back into a relation.

    Tuples come from the objects of ``class_label``; objects missing
    an attribute edge are skipped (the compiler never produces such
    partial objects, but user-edited instances may contain them).
    """
    rows = []
    for node in sorted(instance.nodes_with_label(class_label)):
        row = []
        complete = True
        for attribute in attributes:
            target = instance.functional_target(node, attribute)
            if target is None:
                complete = False
                break
            row.append(instance.print_of(target))
        if complete:
            rows.append(tuple(row))
    return Relation(tuple(attributes), frozenset(rows))


def attribute_map(db: RelationalDatabase) -> Dict[str, Tuple[str, ...]]:
    """Relation name → attribute tuple, for convenience."""
    return {name: relation.attributes for name, relation in db.items()}
