"""Compiling relational algebra to GOOD programs (experiment C1).

Every subexpression materialises as a fresh result class ``q<i>`` whose
objects carry one functional edge per attribute into the value class —
the same encoding base relations use, so compilation is purely
structural:

* σ — a node addition whose source pattern binds all attributes and
  expresses the equalities by node sharing / fixed print values;
* π — a node addition binding only the kept attributes (the Fig. 9
  reuse check provides set semantics / duplicate elimination);
* × — a node addition over a two-tuple pattern (schemas disjoint);
* ∪ — two node additions into the same result class (the reuse check
  again dedupes);
* − — a node addition over a *crossed* pattern: tuples of the left
  operand for which no right-operand tuple with the same values exists
  (the Section 4.1 negation macro; its reduction to pure
  additions/deletions is proved separately by the Fig. 27 tests);
* ρ — a node addition re-emitting under renamed attribute labels.

Only node additions (and, inside the negation macro, node deletions)
are needed — matching the paper's claim that the addition/deletion
fragment is relationally complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.instance import Instance
from repro.core.operations import NodeAddition, Operation
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.program import Program
from repro.core.scheme import Scheme
from repro.relcomp.encoding import VALUE_LABEL, decode_relation
from repro.relcomp.relations import (
    AlgebraError,
    AttrConst,
    AttrEq,
    Difference,
    Expr,
    Product,
    Project,
    Rel,
    Relation,
    Rename,
    Select,
    Union,
)


@dataclass
class CompiledQuery:
    """A GOOD program computing a relational algebra expression."""

    operations: Tuple[Operation, ...]
    result_label: str
    attributes: Tuple[str, ...]

    def run(self, instance: Instance) -> Relation:
        """Execute against an encoded database; decode the result."""
        result = Program(list(self.operations)).run(instance)
        return decode_relation(result.instance, self.result_label, self.attributes)


class RelationalCompiler:
    """Stateful compiler: fresh result labels, evolving private scheme."""

    def __init__(self, scheme: Scheme, schemas: Mapping[str, Tuple[str, ...]]) -> None:
        self.scheme = scheme.copy()
        self.schemas = dict(schemas)
        self._counter = 0

    def compile(self, expr: Expr) -> CompiledQuery:
        """Compile an expression tree to a :class:`CompiledQuery`."""
        label, attributes, operations = self._compile(expr)
        return CompiledQuery(tuple(operations), label, attributes)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fresh_label(self) -> str:
        label = f"q{self._counter}"
        self._counter += 1
        while self.scheme.has_node_label(label):
            label = f"q{self._counter}"
            self._counter += 1
        return label

    def _declare(self, label: str, attributes: Tuple[str, ...]) -> None:
        self.scheme.add_object_label(label)
        for attribute in attributes:
            if attribute not in self.scheme.functional_edge_labels:
                self.scheme.add_functional_edge_label(attribute)
            self.scheme.add_property(label, attribute, VALUE_LABEL)

    def _tuple_pattern(
        self, pattern: Pattern, class_label: str, attributes: Tuple[str, ...], value_nodes: Dict[str, int]
    ) -> int:
        """Add one tuple node with all attribute edges to ``pattern``.

        ``value_nodes`` maps attribute → pattern value node; missing
        entries get fresh bare value nodes (recorded back into the
        dict).
        """
        tuple_node = pattern.add_node(class_label)
        for attribute in attributes:
            if attribute not in value_nodes:
                value_nodes[attribute] = pattern.add_node(VALUE_LABEL)
            pattern.add_edge(tuple_node, attribute, value_nodes[attribute])
        return tuple_node

    def _schema_of(self, expr: Expr) -> Tuple[str, ...]:
        if isinstance(expr, Rel):
            try:
                return self.schemas[expr.name]
            except KeyError:
                raise AlgebraError(f"unknown relation {expr.name!r}") from None
        if isinstance(expr, Select):
            return self._schema_of(expr.child)
        if isinstance(expr, Project):
            return expr.attributes
        if isinstance(expr, Product):
            return self._schema_of(expr.left) + self._schema_of(expr.right)
        if isinstance(expr, (Union, Difference)):
            return self._schema_of(expr.left)
        if isinstance(expr, Rename):
            mapping = dict(expr.mapping)
            return tuple(mapping.get(a, a) for a in self._schema_of(expr.child))
        raise AlgebraError(f"unknown expression {expr!r}")

    def _compile(self, expr: Expr) -> Tuple[str, Tuple[str, ...], List[Operation]]:
        if isinstance(expr, Rel):
            return expr.name, self._schema_of(expr), []

        if isinstance(expr, Select):
            child_label, child_attrs, ops = self._compile(expr.child)
            result = self._fresh_label()
            self._declare(result, child_attrs)
            pattern = Pattern(self.scheme)
            # union-find over attributes forced equal by AttrEq
            leader: Dict[str, str] = {a: a for a in child_attrs}

            def find(a: str) -> str:
                while leader[a] != a:
                    leader[a] = leader[leader[a]]
                    a = leader[a]
                return a

            constants: List[Tuple[str, object]] = []
            for condition in expr.conditions:
                if isinstance(condition, AttrEq):
                    if condition.left not in leader or condition.right not in leader:
                        raise AlgebraError(f"selection condition {condition!r} out of schema")
                    leader[find(condition.left)] = find(condition.right)
                elif isinstance(condition, AttrConst):
                    if condition.attribute not in leader:
                        raise AlgebraError(f"selection condition {condition!r} out of schema")
                    constants.append((condition.attribute, condition.value))
                else:
                    raise AlgebraError(f"unknown condition {condition!r}")
            # two different constants forced onto one equality class
            # make the selection unsatisfiable: emit no operation at
            # all (the result class simply stays empty)
            class_constant: Dict[str, object] = {}
            impossible = False
            for attribute, value in constants:
                root = find(attribute)
                if root in class_constant and class_constant[root] != value:
                    impossible = True
                class_constant[root] = value
            if impossible:
                return result, child_attrs, ops
            value_nodes: Dict[str, int] = {}
            shared: Dict[str, int] = {}
            for attribute in child_attrs:
                root = find(attribute)
                if root not in shared:
                    if root in class_constant:
                        # get-or-create: two equality classes pinned to
                        # the same constant share the unique value node
                        shared[root] = pattern.printable(VALUE_LABEL, class_constant[root])
                    else:
                        shared[root] = pattern.add_node(VALUE_LABEL)
                value_nodes[attribute] = shared[root]
            self._tuple_pattern(pattern, child_label, child_attrs, value_nodes)
            ops = ops + [
                NodeAddition(pattern, result, [(a, value_nodes[a]) for a in child_attrs])
            ]
            return result, child_attrs, ops

        if isinstance(expr, Project):
            child_label, child_attrs, ops = self._compile(expr.child)
            for attribute in expr.attributes:
                if attribute not in child_attrs:
                    raise AlgebraError(f"projection attribute {attribute!r} not in {child_attrs!r}")
            result = self._fresh_label()
            self._declare(result, tuple(expr.attributes))
            pattern = Pattern(self.scheme)
            value_nodes: Dict[str, int] = {}
            self._tuple_pattern(pattern, child_label, child_attrs, value_nodes)
            ops = ops + [
                NodeAddition(pattern, result, [(a, value_nodes[a]) for a in expr.attributes])
            ]
            return result, tuple(expr.attributes), ops

        if isinstance(expr, Product):
            left_label, left_attrs, left_ops = self._compile(expr.left)
            right_label, right_attrs, right_ops = self._compile(expr.right)
            overlap = set(left_attrs) & set(right_attrs)
            if overlap:
                raise AlgebraError(f"product operands share attributes {sorted(overlap)!r}")
            combined = left_attrs + right_attrs
            result = self._fresh_label()
            self._declare(result, combined)
            pattern = Pattern(self.scheme)
            value_nodes: Dict[str, int] = {}
            self._tuple_pattern(pattern, left_label, left_attrs, value_nodes)
            self._tuple_pattern(pattern, right_label, right_attrs, value_nodes)
            ops = left_ops + right_ops + [
                NodeAddition(pattern, result, [(a, value_nodes[a]) for a in combined])
            ]
            return result, combined, ops

        if isinstance(expr, Union):
            left_label, left_attrs, left_ops = self._compile(expr.left)
            right_label, right_attrs, right_ops = self._compile(expr.right)
            if left_attrs != right_attrs:
                raise AlgebraError("union operands are not union-compatible")
            result = self._fresh_label()
            self._declare(result, left_attrs)
            ops = left_ops + right_ops
            for source_label in (left_label, right_label):
                pattern = Pattern(self.scheme)
                value_nodes: Dict[str, int] = {}
                self._tuple_pattern(pattern, source_label, left_attrs, value_nodes)
                ops.append(
                    NodeAddition(pattern, result, [(a, value_nodes[a]) for a in left_attrs])
                )
            return result, left_attrs, ops

        if isinstance(expr, Difference):
            left_label, left_attrs, left_ops = self._compile(expr.left)
            right_label, right_attrs, right_ops = self._compile(expr.right)
            if left_attrs != right_attrs:
                raise AlgebraError("difference operands are not union-compatible")
            result = self._fresh_label()
            self._declare(result, left_attrs)
            positive = Pattern(self.scheme)
            value_nodes: Dict[str, int] = {}
            self._tuple_pattern(positive, left_label, left_attrs, value_nodes)
            negated = NegatedPattern(positive)
            extension = positive.copy()
            self._tuple_pattern(extension, right_label, right_attrs, dict(value_nodes))
            negated.forbid(extension)
            ops = left_ops + right_ops + [
                NodeAddition(negated, result, [(a, value_nodes[a]) for a in left_attrs])
            ]
            return result, left_attrs, ops

        if isinstance(expr, Rename):
            child_label, child_attrs, ops = self._compile(expr.child)
            mapping = dict(expr.mapping)
            renamed = tuple(mapping.get(a, a) for a in child_attrs)
            if len(set(renamed)) != len(renamed):
                raise AlgebraError(f"rename produces duplicate attributes {renamed!r}")
            result = self._fresh_label()
            self._declare(result, renamed)
            pattern = Pattern(self.scheme)
            value_nodes: Dict[str, int] = {}
            self._tuple_pattern(pattern, child_label, child_attrs, value_nodes)
            ops = ops + [
                NodeAddition(
                    pattern,
                    result,
                    [
                        (new, value_nodes[old])
                        for old, new in zip(child_attrs, renamed)
                    ],
                )
            ]
            return result, renamed, ops

        raise AlgebraError(f"unknown expression {expr!r}")
