"""The rule engine: conditions, actions, stratification, fixpoint.

A rule's *condition* is a pattern (plain or crossed); its *action* is
a node or edge addition over that pattern — precisely the paper's
reading of an operation as a rule.  A rule program derives the
simultaneous fixpoint of its rules, stratum by stratum:

* within a stratum, rules are applied round-robin until none adds
  anything (the additions' reuse checks make this a clean fixpoint);
* a rule whose condition *negates* a label (mentions it only in a
  crossed extension) must live in a strictly later stratum than every
  rule deriving that label — the classical stratification requirement;
  programs with negative cycles raise :class:`StratificationError`.

Evaluation is **semi-naive** by default: the first round of a stratum
matches every rule against the whole instance while recording the
additions in a :class:`~repro.graph.store.Delta`; every later round
matches each rule only against the previous round's delta
(:func:`~repro.core.matching.find_matchings_delta`), so per-round cost
tracks the size of what is *new* instead of the size of the instance.
Rules with crossed conditions fall back to full matching each round
(their negated labels are frozen by stratification, but the fallback
keeps the semantics trivially right).  ``strategy="naive"`` restores
the old full-rematch rounds and ``strategy="oracle"`` additionally
swaps in the textbook matcher — both kept for differential testing and
the fixpoint benchmarks.  Every run leaves a :class:`FixpointStats` in
``RuleProgram.last_stats`` (rounds, per-round delta sizes, matchings
enumerated per discipline) so the semi-naive win is observable.

Deletions are deliberately not rule actions: rules describe a least
model, and the basic language's deletions remain available around rule
programs (exactly how Fig. 27 uses them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core import counters as _counters
from repro.core.errors import GoodError, OperationError
from repro.core.instance import Instance
from repro.core.matching import (
    Matching,
    find_matchings_delta,
    find_matchings_naive,
    match_exists,
)
from repro.core.operations import EdgeAddition, NodeAddition, OperationReport
from repro.core.pattern import NegatedPattern, Pattern
from repro.graph.store import Delta
from repro.plan import plan_for
from repro.txn import guards as _guards

RuleAction = Union[NodeAddition, EdgeAddition]

#: Supported evaluation strategies (see module docstring).
STRATEGIES = ("seminaive", "naive", "oracle")

#: A delta-seeded execution costs a small constant per seed; a full
#: rematch costs a small constant per enumerated matching.  Seeding is
#: abandoned for a rule's round when its relevant seed count exceeds
#: this multiple of the full plan's estimated rows.
DELTA_SEED_FACTOR = 4.0


def _delta_worthwhile(pattern: Pattern, working: Instance, delta: Delta) -> bool:
    """Whether seeding ``pattern`` from ``delta`` beats one full rematch.

    The per-round heuristic behind semi-naive evaluation: count the
    delta items that can actually seed this pattern (same-label edges
    and nodes) and compare against the cached full plan's estimated
    output.  A delta comparable in size to the full result means the
    seeded searches would collectively re-enumerate everything anyway —
    plus one planned search of overhead per seed — so the round falls
    back to a single full rematch for this rule.
    """
    edge_labels = {edge.label for edge in pattern.edges()}
    node_labels = {pattern.label_of(node) for node in pattern.nodes()}
    seeds = sum(1 for _, label, _ in delta.edges if label in edge_labels)
    seeds += sum(
        1
        for node in delta.nodes
        if working.has_node(node) and working.label_of(node) in node_labels
    )
    if seeds == 0:
        return True  # nothing to seed: the delta pass is a cheap no-op
    plan, _ = plan_for(pattern, working)
    return seeds <= DELTA_SEED_FACTOR * max(plan.estimated_rows, 1.0)


@dataclass
class RoundStats:
    """What one fixpoint round did (one entry per round per stratum)."""

    stratum: int
    round: int
    mode: str  #: ``"full"`` or ``"delta"``
    delta_in: int  #: items in the seed delta (0 for full rounds)
    matchings: int  #: matchings enumerated by this round's rules
    nodes_added: int
    edges_added: int


@dataclass
class FixpointStats:
    """Per-run fixpoint counters, kept on ``RuleProgram.last_stats``."""

    strategy: str = "seminaive"
    rounds: List[RoundStats] = field(default_factory=list)
    #: Rule-rounds where the delta-vs-full heuristic chose a full rematch.
    fallbacks: int = 0

    @property
    def total_rounds(self) -> int:
        """Number of rounds executed across all strata."""
        return len(self.rounds)

    @property
    def full_matchings(self) -> int:
        """Matchings enumerated by full (non-delta) rounds."""
        return sum(r.matchings for r in self.rounds if r.mode == "full")

    @property
    def delta_matchings(self) -> int:
        """Matchings enumerated by delta-constrained rounds."""
        return sum(r.matchings for r in self.rounds if r.mode == "delta")

    @property
    def matchings_enumerated(self) -> int:
        """Total matchings enumerated, both disciplines combined."""
        return self.full_matchings + self.delta_matchings

    def per_round_matchings(self) -> List[int]:
        """Matchings enumerated per round, in execution order."""
        return [r.matchings for r in self.rounds]

    def per_round_delta_sizes(self) -> List[int]:
        """Seed-delta sizes per round, in execution order."""
        return [r.delta_in for r in self.rounds]

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable form (benchmarks, server counters)."""
        return {
            "strategy": self.strategy,
            "rounds": self.total_rounds,
            "full_matchings": self.full_matchings,
            "delta_matchings": self.delta_matchings,
            "fallbacks": self.fallbacks,
            "per_round": [
                {
                    "stratum": r.stratum,
                    "round": r.round,
                    "mode": r.mode,
                    "delta_in": r.delta_in,
                    "matchings": r.matchings,
                    "nodes_added": r.nodes_added,
                    "edges_added": r.edges_added,
                }
                for r in self.rounds
            ],
        }


class StratificationError(GoodError):
    """The rule program negates through a derivation cycle."""


@dataclass(frozen=True)
class Rule:
    """A named condition/action rule."""

    name: str
    action: RuleAction

    def __post_init__(self) -> None:
        if not isinstance(self.action, (NodeAddition, EdgeAddition)):
            raise OperationError(
                f"rule {self.name!r}: actions must be node or edge additions, "
                f"not {type(self.action).__name__}"
            )

    # ------------------------------------------------------------------
    # label analysis (for stratification)
    # ------------------------------------------------------------------
    @property
    def condition(self) -> Union[Pattern, NegatedPattern]:
        """The rule's condition pattern."""
        return self.action.source_pattern

    def derived_labels(self) -> FrozenSet[str]:
        """Labels this rule's action can introduce."""
        if isinstance(self.action, NodeAddition):
            labels = {self.action.node_label}
            labels.update(edge_label for edge_label, _ in self.action.edges)
            return frozenset(labels)
        return frozenset(edge_label for _, edge_label, _ in self.action.edges)

    def positive_labels(self) -> FrozenSet[str]:
        """Labels the condition requires to be present."""
        pattern = self.action.positive_pattern
        labels: Set[str] = set()
        for node_id in pattern.nodes():
            labels.add(pattern.label_of(node_id))
        for edge in pattern.edges():
            labels.add(edge.label)
        return frozenset(labels)

    def negated_labels(self) -> FrozenSet[str]:
        """Labels occurring only in the crossed extensions."""
        source = self.action.source_pattern
        if not isinstance(source, NegatedPattern):
            return frozenset()
        positive_nodes = set(source.positive.nodes())
        positive_edges = {edge.as_tuple() for edge in source.positive.edges()}
        labels: Set[str] = set()
        for extension in source.extensions:
            for node_id in extension.nodes():
                if node_id not in positive_nodes:
                    labels.add(extension.label_of(node_id))
            for edge in extension.edges():
                if edge.as_tuple() not in positive_edges:
                    labels.add(edge.label)
        return frozenset(labels)


class RuleProgram:
    """A set of rules with stratified fixpoint evaluation."""

    def __init__(self, rules: Sequence[Rule] = (), max_rounds: int = 10_000) -> None:
        self.rules: List[Rule] = list(rules)
        self.max_rounds = max_rounds
        #: Counters from the most recent :meth:`run` (None before any run).
        self.last_stats: Optional[FixpointStats] = None
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise OperationError(f"duplicate rule names in {names!r}")

    def add(self, rule: Rule) -> "RuleProgram":
        """Append a rule; returns ``self`` for chaining."""
        if any(existing.name == rule.name for existing in self.rules):
            raise OperationError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        return self

    # ------------------------------------------------------------------
    # stratification
    # ------------------------------------------------------------------
    def strata(self) -> List[List[Rule]]:
        """Group the rules into evaluation strata.

        Label strata are computed by relaxation: a derived label must
        sit no lower than the derived labels its rules use positively,
        and strictly above those they negate.  A program needing more
        strata than it has labels contains a negative cycle.
        """
        derived: Dict[str, List[Rule]] = {}
        for rule in self.rules:
            for label in rule.derived_labels():
                derived.setdefault(label, []).append(rule)
        stratum: Dict[str, int] = {label: 0 for label in derived}
        limit = len(derived) + 1
        # a converged relaxation needs at most `limit` passes: each label's
        # final level is bounded by the number of negations on a path to
        # it, which is < len(derived) for stratifiable programs.  A pass
        # budget exhausted while levels still move therefore proves a
        # negative cycle — levels would climb forever.  (The levels
        # themselves may still all be small at that point: a long cycle
        # raises its maximum by only ~1 per cycle-length passes, so
        # checking levels against `limit` instead would let slow-growing
        # cycles through.)
        for _ in range(limit + 1):
            changed = False
            for rule in self.rules:
                heads = rule.derived_labels()
                floor = 0
                for label in rule.positive_labels():
                    if label in stratum:
                        floor = max(floor, stratum[label])
                for label in rule.negated_labels():
                    if label in stratum:
                        floor = max(floor, stratum[label] + 1)
                for head in heads:
                    if stratum[head] < floor:
                        stratum[head] = floor
                        changed = True
            if not changed:
                break
        else:
            raise StratificationError(
                "the rule program negates a label through its own derivation "
                f"cycle (stratification did not converge within {limit + 1} passes)"
            )
        # one more relaxation proves there is no pending increase
        for rule in self.rules:
            for label in rule.negated_labels():
                if label in stratum:
                    for head in rule.derived_labels():
                        if stratum[head] <= stratum[label]:
                            raise StratificationError(
                                f"rule {rule.name!r} negates {label!r} which its own "
                                "stratum derives"
                            )
        grouped: Dict[int, List[Rule]] = {}
        for rule in self.rules:
            level = max((stratum[h] for h in rule.derived_labels()), default=0)
            grouped.setdefault(level, []).append(rule)
        return [grouped[level] for level in sorted(grouped)]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def run(
        self,
        instance: Instance,
        in_place: bool = False,
        strategy: str = "seminaive",
    ) -> Tuple[Instance, List[OperationReport]]:
        """Derive the stratified fixpoint; return (instance, reports).

        ``strategy`` selects the evaluation discipline (see
        :data:`STRATEGIES`); all three derive the same fixpoint, which
        the differential property tests assert on random programs.
        Per-run counters land in :attr:`last_stats`.
        """
        if strategy not in STRATEGIES:
            raise OperationError(
                f"unknown evaluation strategy {strategy!r} (expected one of {STRATEGIES})"
            )
        working = instance if in_place else instance.copy(scheme=instance.scheme.copy())
        reports: List[OperationReport] = []
        stats = FixpointStats(strategy=strategy)
        for index, stratum_rules in enumerate(self.strata()):
            if strategy == "seminaive":
                self._run_stratum_seminaive(working, stratum_rules, index, reports, stats)
            else:
                self._run_stratum_full(working, stratum_rules, index, reports, stats, strategy)
        _counters.charge(fixpoint_runs=1)
        self.last_stats = stats
        return working, reports

    def _run_stratum_seminaive(
        self,
        working: Instance,
        stratum_rules: List[Rule],
        stratum_index: int,
        reports: List[OperationReport],
        stats: FixpointStats,
    ) -> None:
        """Semi-naive rounds: round k matches against round k-1's delta.

        Round 1 matches every rule fully (the stratum may consume
        labels derived by earlier strata, for which no delta exists).
        From round 2 on, a rule with a plain condition enumerates only
        the matchings that touch the previous round's delta; a matching
        entirely inside older structure was already enumerated in the
        round whose delta it touched, so nothing is lost — the
        differential property tests pin this down.  Crossed conditions
        fall back to full matching every round, and a plain condition
        falls back for one round when :func:`_delta_worthwhile` finds
        the delta as large as the estimated full result (counted in
        ``FixpointStats.fallbacks``).
        """
        rounds = 0
        delta: Optional[Delta] = None
        while True:
            rounds += 1
            if rounds > self.max_rounds:
                raise OperationError(
                    f"rule fixpoint did not converge within {self.max_rounds} rounds"
                )
            progress = False
            round_matchings = 0
            nodes_added = 0
            edges_added = 0
            mode = "full" if delta is None else "delta"
            delta_in = 0 if delta is None else len(delta)
            with working.track_changes() as new_delta:
                for rule in stratum_rules:
                    action = rule.action
                    if delta is None or isinstance(action.source_pattern, NegatedPattern):
                        report = action.apply(working)
                    else:
                        action.extend_scheme(working.scheme)
                        action.materialize_constants(working)
                        if not _delta_worthwhile(action.source_pattern, working, delta):
                            # the delta rivals the full result: one full
                            # rematch beats per-seed planned searches
                            stats.fallbacks += 1
                            report = action.apply(working)
                        else:
                            found = list(
                                find_matchings_delta(action.source_pattern, working, delta)
                            )
                            _guards.charge_matchings(len(found), delta=True)
                            _counters.charge(delta_matchings=len(found))
                            report = action.apply(working, matchings=found)
                    reports.append(report)
                    if report.nodes_added or report.edges_added:
                        progress = True
                    round_matchings += report.matching_count
                    nodes_added += len(report.nodes_added)
                    edges_added += len(report.edges_added)
            _counters.charge(rounds=1)
            stats.rounds.append(
                RoundStats(
                    stratum=stratum_index,
                    round=rounds,
                    mode=mode,
                    delta_in=delta_in,
                    matchings=round_matchings,
                    nodes_added=nodes_added,
                    edges_added=edges_added,
                )
            )
            delta = new_delta
            if not progress:
                break

    def _run_stratum_full(
        self,
        working: Instance,
        stratum_rules: List[Rule],
        stratum_index: int,
        reports: List[OperationReport],
        stats: FixpointStats,
        strategy: str,
    ) -> None:
        """Full-rematch rounds (``naive``), optionally with the textbook
        matcher (``oracle``) — the baselines semi-naive is tested and
        benchmarked against."""
        rounds = 0
        while True:
            rounds += 1
            if rounds > self.max_rounds:
                raise OperationError(
                    f"rule fixpoint did not converge within {self.max_rounds} rounds"
                )
            progress = False
            round_matchings = 0
            nodes_added = 0
            edges_added = 0
            for rule in stratum_rules:
                action = rule.action
                if strategy == "oracle":
                    action.extend_scheme(working.scheme)
                    action.materialize_constants(working)
                    found = self._oracle_matchings(rule, working)
                    _guards.charge_matchings(len(found))
                    _counters.charge(full_matchings=len(found))
                    report = action.apply(working, matchings=found)
                else:
                    report = action.apply(working)
                reports.append(report)
                if report.nodes_added or report.edges_added:
                    progress = True
                round_matchings += report.matching_count
                nodes_added += len(report.nodes_added)
                edges_added += len(report.edges_added)
            _counters.charge(rounds=1)
            stats.rounds.append(
                RoundStats(
                    stratum=stratum_index,
                    round=rounds,
                    mode="full",
                    delta_in=0,
                    matchings=round_matchings,
                    nodes_added=nodes_added,
                    edges_added=edges_added,
                )
            )
            if not progress:
                break

    @staticmethod
    def _oracle_matchings(rule: Rule, instance: Instance) -> List[Matching]:
        """The rule's matchings via the textbook reference matcher."""
        source = rule.action.source_pattern
        if isinstance(source, NegatedPattern):
            shared = list(source.positive.nodes())
            found = []
            for matching in find_matchings_naive(source.positive, instance):
                fixed = {node: matching[node] for node in shared}
                blocked = any(
                    match_exists(extension, instance, fixed=fixed)
                    for extension in source.extensions
                )
                if not blocked:
                    found.append(matching)
            return found
        return list(find_matchings_naive(source, instance))


def derive(
    rules: Sequence[Rule],
    instance: Instance,
    in_place: bool = False,
    strategy: str = "seminaive",
) -> Instance:
    """One-call stratified fixpoint evaluation."""
    result, _ = RuleProgram(rules).run(instance, in_place=in_place, strategy=strategy)
    return result
