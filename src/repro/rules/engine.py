"""The rule engine: conditions, actions, stratification, fixpoint.

A rule's *condition* is a pattern (plain or crossed); its *action* is
a node or edge addition over that pattern — precisely the paper's
reading of an operation as a rule.  A rule program derives the
simultaneous fixpoint of its rules, stratum by stratum:

* within a stratum, rules are applied round-robin until none adds
  anything (the additions' reuse checks make this a clean fixpoint);
* a rule whose condition *negates* a label (mentions it only in a
  crossed extension) must live in a strictly later stratum than every
  rule deriving that label — the classical stratification requirement;
  programs with negative cycles raise :class:`StratificationError`.

Deletions are deliberately not rule actions: rules describe a least
model, and the basic language's deletions remain available around rule
programs (exactly how Fig. 27 uses them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple, Union

from repro.core.errors import GoodError, OperationError
from repro.core.instance import Instance
from repro.core.operations import EdgeAddition, NodeAddition, OperationReport
from repro.core.pattern import NegatedPattern, Pattern

RuleAction = Union[NodeAddition, EdgeAddition]


class StratificationError(GoodError):
    """The rule program negates through a derivation cycle."""


@dataclass(frozen=True)
class Rule:
    """A named condition/action rule."""

    name: str
    action: RuleAction

    def __post_init__(self) -> None:
        if not isinstance(self.action, (NodeAddition, EdgeAddition)):
            raise OperationError(
                f"rule {self.name!r}: actions must be node or edge additions, "
                f"not {type(self.action).__name__}"
            )

    # ------------------------------------------------------------------
    # label analysis (for stratification)
    # ------------------------------------------------------------------
    @property
    def condition(self) -> Union[Pattern, NegatedPattern]:
        """The rule's condition pattern."""
        return self.action.source_pattern

    def derived_labels(self) -> FrozenSet[str]:
        """Labels this rule's action can introduce."""
        if isinstance(self.action, NodeAddition):
            labels = {self.action.node_label}
            labels.update(edge_label for edge_label, _ in self.action.edges)
            return frozenset(labels)
        return frozenset(edge_label for _, edge_label, _ in self.action.edges)

    def positive_labels(self) -> FrozenSet[str]:
        """Labels the condition requires to be present."""
        pattern = self.action.positive_pattern
        labels: Set[str] = set()
        for node_id in pattern.nodes():
            labels.add(pattern.label_of(node_id))
        for edge in pattern.edges():
            labels.add(edge.label)
        return frozenset(labels)

    def negated_labels(self) -> FrozenSet[str]:
        """Labels occurring only in the crossed extensions."""
        source = self.action.source_pattern
        if not isinstance(source, NegatedPattern):
            return frozenset()
        positive_nodes = set(source.positive.nodes())
        positive_edges = {edge.as_tuple() for edge in source.positive.edges()}
        labels: Set[str] = set()
        for extension in source.extensions:
            for node_id in extension.nodes():
                if node_id not in positive_nodes:
                    labels.add(extension.label_of(node_id))
            for edge in extension.edges():
                if edge.as_tuple() not in positive_edges:
                    labels.add(edge.label)
        return frozenset(labels)


class RuleProgram:
    """A set of rules with stratified fixpoint evaluation."""

    def __init__(self, rules: Sequence[Rule] = (), max_rounds: int = 10_000) -> None:
        self.rules: List[Rule] = list(rules)
        self.max_rounds = max_rounds
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise OperationError(f"duplicate rule names in {names!r}")

    def add(self, rule: Rule) -> "RuleProgram":
        """Append a rule; returns ``self`` for chaining."""
        if any(existing.name == rule.name for existing in self.rules):
            raise OperationError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        return self

    # ------------------------------------------------------------------
    # stratification
    # ------------------------------------------------------------------
    def strata(self) -> List[List[Rule]]:
        """Group the rules into evaluation strata.

        Label strata are computed by relaxation: a derived label must
        sit no lower than the derived labels its rules use positively,
        and strictly above those they negate.  A program needing more
        strata than it has labels contains a negative cycle.
        """
        derived: Dict[str, List[Rule]] = {}
        for rule in self.rules:
            for label in rule.derived_labels():
                derived.setdefault(label, []).append(rule)
        stratum: Dict[str, int] = {label: 0 for label in derived}
        limit = len(derived) + 1
        for _ in range(limit + 1):
            changed = False
            for rule in self.rules:
                heads = rule.derived_labels()
                floor = 0
                for label in rule.positive_labels():
                    if label in stratum:
                        floor = max(floor, stratum[label])
                for label in rule.negated_labels():
                    if label in stratum:
                        floor = max(floor, stratum[label] + 1)
                for head in heads:
                    if stratum[head] < floor:
                        stratum[head] = floor
                        changed = True
            if not changed:
                break
        else:  # pragma: no cover - loop always breaks or raises below
            pass
        if any(level > limit for level in stratum.values()):
            raise StratificationError(
                "the rule program negates a label through its own derivation cycle"
            )
        # one more relaxation proves there is no pending increase
        for rule in self.rules:
            for label in rule.negated_labels():
                if label in stratum:
                    for head in rule.derived_labels():
                        if stratum[head] <= stratum[label]:
                            raise StratificationError(
                                f"rule {rule.name!r} negates {label!r} which its own "
                                "stratum derives"
                            )
        grouped: Dict[int, List[Rule]] = {}
        for rule in self.rules:
            level = max((stratum[h] for h in rule.derived_labels()), default=0)
            grouped.setdefault(level, []).append(rule)
        return [grouped[level] for level in sorted(grouped)]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def run(
        self, instance: Instance, in_place: bool = False
    ) -> Tuple[Instance, List[OperationReport]]:
        """Derive the stratified fixpoint; return (instance, reports)."""
        working = instance if in_place else instance.copy(scheme=instance.scheme.copy())
        reports: List[OperationReport] = []
        for stratum_rules in self.strata():
            rounds = 0
            while True:
                rounds += 1
                if rounds > self.max_rounds:
                    raise OperationError(
                        f"rule fixpoint did not converge within {self.max_rounds} rounds"
                    )
                progress = False
                for rule in stratum_rules:
                    report = rule.action.apply(working)
                    reports.append(report)
                    if report.nodes_added or report.edges_added:
                        progress = True
                if not progress:
                    break
        return working, reports


def derive(
    rules: Sequence[Rule], instance: Instance, in_place: bool = False
) -> Instance:
    """One-call stratified fixpoint evaluation."""
    result, _ = RuleProgram(rules).run(instance, in_place=in_place)
    return result
