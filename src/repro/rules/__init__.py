"""Declarative graph rules — the Section 5 outlook, implemented.

"Although GOOD programs are written in a procedural way, the basic
operations ... have a partly declarative nature.  Indeed, the pattern
of such an operation can be seen as the (declarative) condition part
of a rule, while the bold or outlined part corresponds to a rule's
action ...  This simple mechanism for visualization of rules can
provide a basis for the development of graph-based, rule-based,
object-oriented database languages [G-Log]."

This package takes that remark seriously:

* :class:`~repro.rules.engine.Rule` — a named condition/action pair:
  the condition is a (possibly crossed) pattern, the action a node or
  edge addition over it;
* :class:`~repro.rules.engine.RuleProgram` — a set of rules evaluated
  to a simultaneous fixpoint, round-robin, with a stratification check
  for rules whose conditions negate labels other rules derive (the
  classical requirement for a well-defined least model);
* :func:`~repro.rules.engine.derive` — one-call evaluation.

Rules reuse the basic operations' semantics (the additions are exactly
NA/EA with the reuse check), so the fixpoint is the natural recursive
extension of the paper's language — equivalent to the Section 4.1
starred macros where those apply, and strictly more convenient for
mutually recursive derivations.
"""

from repro.rules.engine import (
    STRATEGIES,
    FixpointStats,
    RoundStats,
    Rule,
    RuleProgram,
    StratificationError,
    derive,
)

__all__ = [
    "STRATEGIES",
    "FixpointStats",
    "RoundStats",
    "Rule",
    "RuleProgram",
    "StratificationError",
    "derive",
]
