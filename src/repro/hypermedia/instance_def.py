"""The hyper-media object base instance of Figs. 2–3.

Reconstruction notes (the figures are graph drawings; where the scan is
ambiguous we chose the reading that makes the paper's stated matching
counts come out, and record the choice here):

* Two Info nodes are named "Rock": the *new* version (created Jan 14,
  1990) and the *old* version (created Jan 12, 1990), connected by the
  Version node.  The new Rock links to The Doors and Pinkfloyd; the
  old Rock links to The Doors and The Beatles ("the new and old info
  nodes are both linked to the info node ... The Doors").  This yields
  exactly the 2 matchings of Fig. 4 and the 4 matchings of Fig. 8.
* The Music History info links to the new Rock, Classical Music and
  Jazz; it is the only node with a ``modified`` date and the only node
  with a comment ("Author: Jones").
* The single Reference node has ``isa`` → The Beatles and ``in`` →
  Jazz ("the info node with name The Beatles is a reference in the
  Jazz info node").
* Fig. 3 attaches, to each of Pinkfloyd's and The Doors' linked Info
  nodes, a Data node (via an instance-level ``isa`` edge) which is in
  turn the ``isa``-target of a Sound/Text/Graphics node carrying the
  actual media properties.  The numbers 15000 (#words), 1000
  (frequency), 2000 and 64 appear in the figure; we read 2000 as the
  Doors text's #words and give the Doors graphics height 64 and an
  (unspecified in the scan) width of 1024.  No reproduced result
  depends on these constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.instance import Instance
from repro.core.scheme import Scheme
from repro.hypermedia.scheme_def import JAN_12, JAN_14, build_scheme


@dataclass
class HyperMediaHandles:
    """Named node ids of the Figs. 2–3 instance."""

    # Fig. 2 info nodes
    music_history: int
    rock_new: int
    rock_old: int
    classical: int
    jazz: int
    pinkfloyd: int  # marked "1" in the figure
    doors: int  # marked "2" in the figure
    beatles: int
    mozart: int
    version1: int
    reference: int
    comment: int
    # Fig. 3 media sub-structure
    pf_sound_info: int
    pf_sound_data: int
    pf_sound: int
    pf_text_info: int
    pf_text_data: int
    pf_text: int
    dr_graphics_info: int
    dr_graphics_data: int
    dr_graphics: int
    dr_text_info: int
    dr_text_data: int
    dr_text: int

    def all_infos(self) -> Tuple[int, ...]:
        """Every Info-labeled node, in creation order."""
        return (
            self.music_history,
            self.rock_new,
            self.rock_old,
            self.classical,
            self.jazz,
            self.pinkfloyd,
            self.doors,
            self.beatles,
            self.mozart,
            self.pf_sound_info,
            self.pf_text_info,
            self.dr_graphics_info,
            self.dr_text_info,
        )


def build_instance(scheme: Scheme = None) -> Tuple[Instance, HyperMediaHandles]:
    """Construct the Figs. 2–3 instance; return it with its handles."""
    if scheme is None:
        scheme = build_scheme()
    db = Instance(scheme)

    jan12 = db.printable("Date", JAN_12)
    jan14 = db.printable("Date", JAN_14)

    def info(name: str = None, created: int = None, modified: int = None) -> int:
        node = db.add_object("Info")
        if name is not None:
            db.add_edge(node, "name", db.printable("String", name))
        if created is not None:
            db.add_edge(node, "created", created)
        if modified is not None:
            db.add_edge(node, "modified", modified)
        return node

    music_history = info("Music History", created=jan12, modified=jan14)
    rock_new = info("Rock", created=jan14)
    rock_old = info("Rock", created=jan12)
    classical = info("Classical Music", created=jan12)
    jazz = info("Jazz", created=jan12)
    pinkfloyd = info("Pinkfloyd", created=jan14)
    doors = info("The Doors", created=jan12)
    beatles = info("The Beatles", created=jan12)
    mozart = info("Mozart", created=jan12)

    comment = db.add_object("Comment")
    db.add_edge(comment, "is", db.printable("String", "Author: Jones"))
    db.add_edge(music_history, "comment", comment)

    for target in (rock_new, classical, jazz):
        db.add_edge(music_history, "links-to", target)
    for target in (doors, pinkfloyd):
        db.add_edge(rock_new, "links-to", target)
    for target in (doors, beatles):
        db.add_edge(rock_old, "links-to", target)
    db.add_edge(classical, "links-to", mozart)

    version1 = db.add_object("Version")
    db.add_edge(version1, "new", rock_new)
    db.add_edge(version1, "old", rock_old)

    reference = db.add_object("Reference")
    db.add_edge(reference, "isa", beatles)
    db.add_edge(reference, "in", jazz)

    # Fig. 3: Pinkfloyd's sound and text data
    pf_sound_info = info()
    pf_text_info = info()
    db.add_edge(pinkfloyd, "links-to", pf_sound_info)
    db.add_edge(pinkfloyd, "links-to", pf_text_info)

    pf_sound_data = db.add_object("Data")
    db.add_edge(pf_sound_data, "isa", pf_sound_info)
    pf_sound = db.add_object("Sound")
    db.add_edge(pf_sound, "isa", pf_sound_data)
    db.add_edge(pf_sound, "frequency", db.printable("Number", 1000))
    db.add_edge(pf_sound, "data", db.printable("Bitstream", "010011010111"))

    pf_text_data = db.add_object("Data")
    db.add_edge(pf_text_data, "isa", pf_text_info)
    pf_text = db.add_object("Text")
    db.add_edge(pf_text, "isa", pf_text_data)
    db.add_edge(pf_text, "#words", db.printable("Number", 15000))
    db.add_edge(pf_text, "data", db.printable("Longstring", "Pinkfloyd was created…"))

    # Fig. 3: The Doors' graphics and text data
    dr_graphics_info = info()
    dr_text_info = info()
    db.add_edge(doors, "links-to", dr_graphics_info)
    db.add_edge(doors, "links-to", dr_text_info)

    dr_graphics_data = db.add_object("Data")
    db.add_edge(dr_graphics_data, "isa", dr_graphics_info)
    dr_graphics = db.add_object("Graphics")
    db.add_edge(dr_graphics, "isa", dr_graphics_data)
    db.add_edge(dr_graphics, "height", db.printable("Number", 64))
    db.add_edge(dr_graphics, "width", db.printable("Number", 1024))
    db.add_edge(dr_graphics, "data", db.printable("Bitmap", "010110001"))

    dr_text_data = db.add_object("Data")
    db.add_edge(dr_text_data, "isa", dr_text_info)
    dr_text = db.add_object("Text")
    db.add_edge(dr_text, "isa", dr_text_data)
    db.add_edge(dr_text, "#words", db.printable("Number", 2000))
    db.add_edge(dr_text, "data", db.printable("Longstring", "The Doors are a…"))

    db.validate()
    handles = HyperMediaHandles(
        music_history=music_history,
        rock_new=rock_new,
        rock_old=rock_old,
        classical=classical,
        jazz=jazz,
        pinkfloyd=pinkfloyd,
        doors=doors,
        beatles=beatles,
        mozart=mozart,
        version1=version1,
        reference=reference,
        comment=comment,
        pf_sound_info=pf_sound_info,
        pf_sound_data=pf_sound_data,
        pf_sound=pf_sound,
        pf_text_info=pf_text_info,
        pf_text_data=pf_text_data,
        pf_text=pf_text,
        dr_graphics_info=dr_graphics_info,
        dr_graphics_data=dr_graphics_data,
        dr_graphics=dr_graphics,
        dr_text_info=dr_text_info,
        dr_text_data=dr_text_data,
        dr_text=dr_text,
    )
    return db, handles


@dataclass
class VersionChainHandles:
    """Named node ids of the Fig. 17 version-chain sub-instance."""

    chain: Tuple[int, ...]  # the 5 versioned Info nodes, newest first
    versions: Tuple[int, ...]  # the 4 Version nodes
    targets: Tuple[int, ...]  # the shared linked-to Info nodes (a, b, c)


def build_version_chain(scheme: Scheme = None) -> Tuple[Instance, VersionChainHandles]:
    """Construct the Fig. 17 sub-instance for the abstraction example.

    Five chained versions i1..i5 of a document, with shared targets a,
    b, c; i1 and i2 share links {a, b}, i3 and i4 share {b, c}, i5
    links {c} — giving the three Same-Info groups of Fig. 19.
    """
    if scheme is None:
        scheme = build_scheme()
    db = Instance(scheme)
    chain = tuple(db.add_object("Info") for _ in range(5))
    targets = tuple(db.add_object("Info") for _ in range(3))
    a, b, c = targets
    link_sets = [(a, b), (a, b), (b, c), (b, c), (c,)]
    for node, links in zip(chain, link_sets):
        for target in links:
            db.add_edge(node, "links-to", target)
    versions = []
    for newer, older in zip(chain, chain[1:]):
        version = db.add_object("Version")
        db.add_edge(version, "new", newer)
        db.add_edge(version, "old", older)
        versions.append(version)
    db.validate()
    return db, VersionChainHandles(chain, tuple(versions), targets)
