"""Executable versions of every operation figure in the paper (4–31).

Each ``figN_*`` function builds the pattern/operation/method exactly as
the figure draws it (bold part = the addition, double outline = the
deletion, diamond = the method head) over a given scheme, and returns
ready-to-run objects.  The integration tests in
``tests/integration/test_figures.py`` apply them to the Figs. 2–3
instance and check the outcomes the paper states; EXPERIMENTS.md
records paper-vs-measured for each.

Faithfulness notes:

* Fig. 6's bold node is labeled ``Rock`` in the paper — a new *object
  class* named Rock, unrelated to the String constant "Rock"; we keep
  the label.
* Fig. 18 draws the tag edge with label ``in``, which collides with
  the multivalued ``in`` of Reference (node additions may only add
  functional edges); we rename it ``interested-in``.
* The body of method ``D`` (Fig. 23) is intentionally unspecified in
  the paper (that is the point of interfaces); we implement it with
  the Section 4.1 external-function extension
  (:class:`~repro.core.external.ComputedEdgeAddition`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.external import ComputedEdgeAddition
from repro.core.labels import date_ordinal
from repro.core.macros import RecursiveEdgeAddition, compile_negation
from repro.core.methods import BodyOp, HeadBindings, Method, MethodCall, MethodSignature
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
)
from repro.core.pattern import NegatedPattern, Pattern, empty_pattern
from repro.core.scheme import Scheme
from repro.hypermedia.scheme_def import JAN_14, JAN_16

MULTI = "multivalued"
FUNC = "functional"


# ----------------------------------------------------------------------
# Figs. 4–7: patterns, matchings and node addition
# ----------------------------------------------------------------------


@dataclass
class Fig4Pattern:
    """The Fig. 4 pattern and its node handles."""

    pattern: Pattern
    info_top: int
    info_bottom: int
    date: int
    name: int


def fig4_pattern(scheme: Scheme) -> Fig4Pattern:
    """An info node created Jan 14, 1990, named Rock, linked to an info."""
    pattern = Pattern(scheme)
    info_top = pattern.node("Info")
    info_bottom = pattern.node("Info")
    date = pattern.node("Date", JAN_14)
    name = pattern.node("String", "Rock")
    pattern.edge(info_top, "created", date)
    pattern.edge(info_top, "name", name)
    pattern.edge(info_top, "links-to", info_bottom)
    return Fig4Pattern(pattern, info_top, info_bottom, date, name)


def fig6_node_addition(scheme: Scheme) -> NodeAddition:
    """Tag the linked info nodes with a bold ``Rock`` node (Fig. 6)."""
    fig4 = fig4_pattern(scheme)
    return NodeAddition(fig4.pattern, "Rock", [("tagged-to", fig4.info_bottom)])


def fig8_node_addition(scheme: Scheme) -> NodeAddition:
    """Derive Pair aggregates of (parent, child) creation dates (Fig. 8)."""
    pattern = Pattern(scheme)
    parent = pattern.node("Info")
    child = pattern.node("Info")
    parent_date = pattern.node("Date")
    child_date = pattern.node("Date")
    name = pattern.node("String", "Rock")
    pattern.edge(parent, "created", parent_date)
    pattern.edge(parent, "name", name)
    pattern.edge(parent, "links-to", child)
    pattern.edge(child, "created", child_date)
    return NodeAddition(pattern, "Pair", [("parent", parent_date), ("child", child_date)])


# ----------------------------------------------------------------------
# Figs. 10–13: edge addition and set building
# ----------------------------------------------------------------------


def fig10_edge_addition(scheme: Scheme) -> EdgeAddition:
    """Associate Pinkfloyd's creation date with its data nodes (Fig. 10)."""
    pattern = Pattern(scheme)
    pinkfloyd = pattern.node("Info")
    linked = pattern.node("Info")
    data = pattern.node("Data")
    date = pattern.node("Date", JAN_14)
    name = pattern.node("String", "Pinkfloyd")
    pattern.edge(pinkfloyd, "created", date)
    pattern.edge(pinkfloyd, "name", name)
    pattern.edge(pinkfloyd, "links-to", linked)
    pattern.edge(data, "isa", linked)
    return EdgeAddition(
        pattern, [(data, "data-creation", date)], new_label_kinds={"data-creation": FUNC}
    )


SET_LABEL = "Created Jan 14, 1990"


def fig12_node_addition(scheme: Scheme) -> NodeAddition:
    """Introduce the single set object over the empty pattern (Fig. 12)."""
    return NodeAddition(empty_pattern(scheme), SET_LABEL, [])


def fig13_edge_addition(scheme: Scheme) -> EdgeAddition:
    """Link the set object to every info created Jan 14, 1990 (Fig. 13)."""
    # the set class is introduced by the Fig. 12 node addition at run
    # time; build the Fig. 13 pattern over a private scheme copy that
    # already knows it (the user scheme is left untouched)
    private = scheme.copy()
    if not private.is_object_label(SET_LABEL):
        private.add_object_label(SET_LABEL)
    pattern = Pattern(private)
    collector = pattern.node(SET_LABEL)
    info = pattern.node("Info")
    date = pattern.node("Date", JAN_14)
    pattern.edge(info, "created", date)
    return EdgeAddition(
        pattern, [(collector, "contains", info)], new_label_kinds={"contains": MULTI}
    )


# ----------------------------------------------------------------------
# Figs. 14–16: deletions and updates
# ----------------------------------------------------------------------


def fig14_node_deletion(scheme: Scheme) -> NodeDeletion:
    """Delete the info node named Classical Music (Fig. 14)."""
    pattern = Pattern(scheme)
    info = pattern.node("Info")
    pattern.edge(info, "name", pattern.node("String", "Classical Music"))
    return NodeDeletion(pattern, info)


def fig16_update(scheme: Scheme) -> Tuple[EdgeDeletion, EdgeAddition]:
    """Move Music History's last-modified date to Jan 16, 1990 (Fig. 16)."""
    del_pattern = Pattern(scheme)
    info = del_pattern.node("Info")
    old_date = del_pattern.node("Date")
    del_pattern.edge(info, "name", del_pattern.node("String", "Music History"))
    del_pattern.edge(info, "modified", old_date)
    deletion = EdgeDeletion(del_pattern, [(info, "modified", old_date)])

    add_pattern = Pattern(scheme)
    info2 = add_pattern.node("Info")
    new_date = add_pattern.node("Date", JAN_16)
    add_pattern.edge(info2, "name", add_pattern.node("String", "Music History"))
    addition = EdgeAddition(add_pattern, [(info2, "modified", new_date)])
    return deletion, addition


# ----------------------------------------------------------------------
# Figs. 17–19: abstraction
# ----------------------------------------------------------------------


def fig18_operations(scheme: Scheme) -> Tuple[NodeAddition, NodeAddition, Abstraction]:
    """Tag versioned infos, then abstract over equal links-to sets."""
    tag_new_pattern = Pattern(scheme)
    version_a = tag_new_pattern.node("Version")
    info_a = tag_new_pattern.node("Info")
    tag_new_pattern.edge(version_a, "new", info_a)
    tag_new = NodeAddition(tag_new_pattern, "Interested", [("interested-in", info_a)])

    tag_old_pattern = Pattern(scheme)
    version_b = tag_old_pattern.node("Version")
    info_b = tag_old_pattern.node("Info")
    tag_old_pattern.edge(version_b, "old", info_b)
    tag_old = NodeAddition(tag_old_pattern, "Interested", [("interested-in", info_b)])

    # the Interested class exists only after the tag operations run;
    # build the grouping pattern over a private scheme copy knowing it
    private = scheme.copy()
    if not private.is_object_label("Interested"):
        private.add_object_label("Interested")
    if "interested-in" not in private.functional_edge_labels:
        private.add_functional_edge_label("interested-in")
    private.add_property("Interested", "interested-in", "Info")
    group_pattern = Pattern(private)
    info_c = group_pattern.node("Info")
    interested = group_pattern.node("Interested")
    group_pattern.edge(interested, "interested-in", info_c)
    abstraction = Abstraction(
        group_pattern, info_c, "Same-Info", alpha="links-to", beta="contains"
    )
    return tag_new, tag_old, abstraction


# ----------------------------------------------------------------------
# Figs. 20–21: the Update method
# ----------------------------------------------------------------------


def fig20_update_method(scheme: Scheme) -> Method:
    """The Update method: replace the receiver's last-modified date."""
    signature = MethodSignature("Update", receiver_label="Info", parameters={"parameter": "Date"})

    del_pattern = Pattern(scheme)
    info = del_pattern.node("Info")
    old_date = del_pattern.node("Date")
    del_pattern.edge(info, "modified", old_date)
    delete_old = BodyOp(
        EdgeDeletion(del_pattern, [(info, "modified", old_date)]),
        head=HeadBindings(receiver=info),
    )

    add_pattern = Pattern(scheme)
    info2 = add_pattern.node("Info")
    new_date = add_pattern.node("Date")
    add_new = BodyOp(
        EdgeAddition(add_pattern, [(info2, "modified", new_date)]),
        head=HeadBindings(receiver=info2, parameters={"parameter": new_date}),
    )
    return Method(signature, [delete_old, add_new])


def fig21_call(scheme: Scheme) -> MethodCall:
    """Update the Music History infos to Jan 16, 1990 (Fig. 21)."""
    pattern = Pattern(scheme)
    info = pattern.node("Info")
    date = pattern.node("Date", JAN_16)
    pattern.edge(info, "name", pattern.node("String", "Music History"))
    return MethodCall(pattern, "Update", receiver=info, arguments={"parameter": date})


# ----------------------------------------------------------------------
# Fig. 22: the recursive Remove-Old-Versions method
# ----------------------------------------------------------------------


def fig22_remove_old_versions(scheme: Scheme) -> Method:
    """R-O-V: recursively delete all old versions of the receiver."""
    signature = MethodSignature("R-O-V", receiver_label="Info")

    recurse_pattern = Pattern(scheme)
    info = recurse_pattern.node("Info")
    old_info = recurse_pattern.node("Info")
    version = recurse_pattern.node("Version")
    recurse_pattern.edge(version, "new", info)
    recurse_pattern.edge(version, "old", old_info)
    recurse = BodyOp(
        MethodCall(recurse_pattern, "R-O-V", receiver=old_info),
        head=HeadBindings(receiver=info),
    )

    del_info_pattern = Pattern(scheme)
    info2 = del_info_pattern.node("Info")
    old_info2 = del_info_pattern.node("Info")
    version2 = del_info_pattern.node("Version")
    del_info_pattern.edge(version2, "new", info2)
    del_info_pattern.edge(version2, "old", old_info2)
    delete_old_info = BodyOp(
        NodeDeletion(del_info_pattern, old_info2), head=HeadBindings(receiver=info2)
    )

    del_version_pattern = Pattern(scheme)
    info3 = del_version_pattern.node("Info")
    version3 = del_version_pattern.node("Version")
    del_version_pattern.edge(version3, "new", info3)
    delete_version = BodyOp(
        NodeDeletion(del_version_pattern, version3), head=HeadBindings(receiver=info3)
    )
    return Method(signature, [recurse, delete_old_info, delete_version])


def fig22_call(scheme: Scheme, receiver_name: str) -> MethodCall:
    """Call R-O-V on the info node with the given name."""
    pattern = Pattern(scheme)
    info = pattern.node("Info")
    pattern.edge(info, "name", pattern.node("String", receiver_name))
    return MethodCall(pattern, "R-O-V", receiver=info)


# ----------------------------------------------------------------------
# Figs. 23–25: method interfaces (D and E)
# ----------------------------------------------------------------------


def days_between(new_date: str, old_date: str) -> int:
    """The external function behind method D: day difference."""
    return date_ordinal(new_date) - date_ordinal(old_date)


def fig23_d_interface() -> Scheme:
    """The interface of method D (Fig. 23, right)."""
    interface = Scheme(printable_labels=["Date", "Number"])
    interface.declare("Elapsed", "olddate", "Date")
    interface.declare("Elapsed", "newdate", "Date")
    interface.declare("Elapsed", "diff", "Number")
    return interface


def fig23_d_method(scheme: Scheme) -> Method:
    """Method D: days elapsed between two dates (body via external fn)."""
    signature = MethodSignature("D", receiver_label="Date", parameters={"old": "Date"})
    interface = fig23_d_interface()

    # body patterns are built over a private scheme copy that knows
    # Elapsed; the caller's scheme stays clean so the interface filter
    # can remove the temporary Elapsed structure (the point of Fig. 25)
    working = scheme.copy()
    for label, edge, target in [
        ("Elapsed", "olddate", "Date"),
        ("Elapsed", "newdate", "Date"),
        ("Elapsed", "diff", "Number"),
    ]:
        if not working.is_object_label(label):
            working.add_object_label(label)
        if edge not in working.functional_edge_labels:
            working.add_functional_edge_label(edge)
        working.add_property(label, edge, target)

    create_pattern = Pattern(working)
    new_date = create_pattern.node("Date")
    old_date = create_pattern.node("Date")
    create = BodyOp(
        NodeAddition(create_pattern, "Elapsed", [("newdate", new_date), ("olddate", old_date)]),
        head=HeadBindings(receiver=new_date, parameters={"old": old_date}),
    )

    compute_pattern = Pattern(working)
    elapsed = compute_pattern.node("Elapsed")
    new_date2 = compute_pattern.node("Date")
    old_date2 = compute_pattern.node("Date")
    compute_pattern.edge(elapsed, "newdate", new_date2)
    compute_pattern.edge(elapsed, "olddate", old_date2)
    compute = BodyOp(
        ComputedEdgeAddition(
            compute_pattern,
            source_node=elapsed,
            edge_label="diff",
            target_label="Number",
            input_nodes=(new_date2, old_date2),
            function=days_between,
            name="days_between",
        ),
        head=HeadBindings(receiver=new_date2, parameters={"old": old_date2}),
    )
    return Method(signature, [create, compute], interface=interface)


def fig24_e_interface() -> Scheme:
    """The interface of method E (Fig. 24, right)."""
    interface = Scheme(printable_labels=["Number"])
    interface.declare("Info", "days-unmod", "Number")
    return interface


def fig25_e_method(scheme: Scheme) -> Method:
    """Method E: days between creation and last modification (Fig. 25)."""
    signature = MethodSignature("E", receiver_label="Info")
    d_method_scheme = scheme.copy().union(fig23_d_interface())

    call_pattern = Pattern(d_method_scheme)
    info = call_pattern.node("Info")
    new_date = call_pattern.node("Date")
    old_date = call_pattern.node("Date")
    call_pattern.edge(info, "modified", new_date)
    call_pattern.edge(info, "created", old_date)
    call_d = BodyOp(
        MethodCall(call_pattern, "D", receiver=new_date, arguments={"old": old_date}),
        head=HeadBindings(receiver=info),
    )

    copy_pattern = Pattern(d_method_scheme)
    info2 = copy_pattern.node("Info")
    new_date2 = copy_pattern.node("Date")
    old_date2 = copy_pattern.node("Date")
    elapsed = copy_pattern.node("Elapsed")
    number = copy_pattern.node("Number")
    copy_pattern.edge(info2, "modified", new_date2)
    copy_pattern.edge(info2, "created", old_date2)
    copy_pattern.edge(elapsed, "newdate", new_date2)
    copy_pattern.edge(elapsed, "olddate", old_date2)
    copy_pattern.edge(elapsed, "diff", number)
    copy_out = BodyOp(
        EdgeAddition(
            copy_pattern,
            [(info2, "days-unmod", number)],
            new_label_kinds={"days-unmod": FUNC},
        ),
        head=HeadBindings(receiver=info2),
    )
    return Method(signature, [call_d, copy_out], interface=fig24_e_interface())


def fig25_e_call(scheme: Scheme) -> MethodCall:
    """Call E on every info node."""
    pattern = Pattern(scheme)
    info = pattern.node("Info")
    return MethodCall(pattern, "E", receiver=info)


# ----------------------------------------------------------------------
# Figs. 26–27: negation
# ----------------------------------------------------------------------


@dataclass
class Fig26Query:
    """The Fig. 26 query: names of infos with created ≠ modified."""

    negated: NegatedPattern
    info: int
    name: int
    date: int


def fig26_negated_pattern(scheme: Scheme) -> Fig26Query:
    """The crossed pattern of Fig. 26."""
    positive = Pattern(scheme)
    info = positive.node("Info")
    name = positive.node("String")
    date = positive.node("Date")
    positive.edge(info, "name", name)
    positive.edge(info, "created", date)
    negated = NegatedPattern(positive)
    negated.forbid_edge(info, "modified", date)
    return Fig26Query(negated, info, name, date)


def fig26_operations(scheme: Scheme) -> Tuple[List[Operation], str]:
    """Answer building with the crossed pattern used directly.

    Returns the operations and the answer class label.
    """
    private = scheme.copy()
    if not private.is_object_label("Answer"):
        private.add_object_label("Answer")
    query = fig26_negated_pattern(private)
    make_answer = NodeAddition(empty_pattern(private), "Answer", [])
    collect = NegatedPattern(query.negated.positive.copy())
    answer = collect.positive.add_node("Answer")
    for extension in query.negated.extensions:
        rebuilt = collect.positive.copy()
        # replay the crossed modified edge on the rebuilt positive copy
        rebuilt.add_edge(query.info, "modified", query.date)
        collect.forbid(rebuilt)
    gather = EdgeAddition(
        collect, [(answer, "contains", query.name)], new_label_kinds={"contains": MULTI}
    )
    return [make_answer, gather], "Answer"


def fig27_operations(scheme: Scheme) -> Tuple[List[Operation], str]:
    """The same query compiled to basic operations (Fig. 27)."""
    private = scheme.copy()
    if not private.is_object_label("Answer"):
        private.add_object_label("Answer")
    query = fig26_negated_pattern(private)
    compilation = compile_negation(query.negated, "Intermediate")
    operations: List[Operation] = list(compilation.operations)
    operations.append(NodeAddition(empty_pattern(scheme), "Answer", []))
    survivor, _, _ = compilation.survivor_pattern(query.negated.positive)
    answer = survivor.add_node("Answer")
    operations.append(
        EdgeAddition(
            survivor, [(answer, "contains", query.name)], new_label_kinds={"contains": MULTI}
        )
    )
    return operations, "Answer"


# ----------------------------------------------------------------------
# Figs. 28–29: transitive closure
# ----------------------------------------------------------------------


def fig28_operations(scheme: Scheme) -> Tuple[EdgeAddition, RecursiveEdgeAddition]:
    """Direct links, then the starred (recursive) edge addition."""
    base_pattern = Pattern(scheme)
    a = base_pattern.node("Info")
    b = base_pattern.node("Info")
    base_pattern.edge(a, "links-to", b)
    direct = EdgeAddition(
        base_pattern, [(a, "rec-links-to", b)], new_label_kinds={"rec-links-to": MULTI}
    )

    private = scheme.copy()
    if "rec-links-to" not in private.multivalued_edge_labels:
        private.add_multivalued_edge_label("rec-links-to")
    private.add_property("Info", "rec-links-to", "Info")
    step_pattern = Pattern(private)
    x = step_pattern.node("Info")
    y = step_pattern.node("Info")
    z = step_pattern.node("Info")
    step_pattern.edge(x, "links-to", y)
    step_pattern.edge(y, "rec-links-to", z)
    step = EdgeAddition(
        step_pattern, [(x, "rec-links-to", z)], new_label_kinds={"rec-links-to": MULTI}
    )
    return direct, RecursiveEdgeAddition(step)


def fig29_rlt_method(scheme: Scheme) -> Method:
    """RLT: the method simulation of the starred edge addition."""
    signature = MethodSignature("RLT", receiver_label="Info", parameters={"arg": "Info"})
    interface = Scheme()
    interface.add_object_label("Info")
    interface.add_multivalued_edge_label("rec-links-to")
    interface.add_property("Info", "rec-links-to", "Info")

    private = scheme.copy()
    if "rec-links-to" not in private.multivalued_edge_labels:
        private.add_multivalued_edge_label("rec-links-to")
    private.add_property("Info", "rec-links-to", "Info")

    add_pattern = Pattern(private)
    x = add_pattern.node("Info")
    y = add_pattern.node("Info")
    add = BodyOp(
        EdgeAddition(
            add_pattern, [(x, "rec-links-to", y)], new_label_kinds={"rec-links-to": MULTI}
        ),
        head=HeadBindings(receiver=x, parameters={"arg": y}),
    )

    rec_positive = Pattern(private)
    rx = rec_positive.node("Info")
    ry = rec_positive.node("Info")
    rz = rec_positive.node("Info")
    rec_positive.edge(rx, "rec-links-to", ry)
    rec_positive.edge(ry, "links-to", rz)
    rec_negated = NegatedPattern(rec_positive)
    rec_negated.forbid_edge(rx, "rec-links-to", rz)
    recurse = BodyOp(
        MethodCall(rec_negated, "RLT", receiver=rx, arguments={"arg": rz}),
        head=HeadBindings(receiver=rx),
    )
    return Method(signature, [add, recurse], interface=interface)


def fig29_call(scheme: Scheme) -> MethodCall:
    """Seed RLT with every direct links-to pair (Fig. 29, bottom)."""
    pattern = Pattern(scheme)
    a = pattern.node("Info")
    b = pattern.node("Info")
    pattern.edge(a, "links-to", b)
    return MethodCall(pattern, "RLT", receiver=a, arguments={"arg": b})


# ----------------------------------------------------------------------
# Figs. 30–31: inheritance
# ----------------------------------------------------------------------


@dataclass
class InheritanceQuery:
    """A Jazz-references query pattern with its node handles."""

    pattern: Pattern
    reference: int
    name: int


def fig30_query(virtual: Scheme) -> InheritanceQuery:
    """The user's query over the virtual scheme (Fig. 30).

    References occurring in the Jazz info, with their (inherited)
    name.  ``virtual`` must be ``virtual_scheme(base)``.
    """
    pattern = Pattern(virtual)
    reference = pattern.node("Reference")
    jazz_info = pattern.node("Info")
    name = pattern.node("String")
    pattern.edge(reference, "in", jazz_info)
    pattern.edge(jazz_info, "name", pattern.node("String", "Jazz"))
    pattern.edge(reference, "name", name)
    return InheritanceQuery(pattern, reference, name)


def fig31_query(scheme: Scheme) -> InheritanceQuery:
    """The internal translation over the base scheme (Fig. 31)."""
    pattern = Pattern(scheme)
    reference = pattern.node("Reference")
    jazz_info = pattern.node("Info")
    via_info = pattern.node("Info")
    name = pattern.node("String")
    pattern.edge(reference, "in", jazz_info)
    pattern.edge(jazz_info, "name", pattern.node("String", "Jazz"))
    pattern.edge(reference, "isa", via_info)
    pattern.edge(via_info, "name", name)
    return InheritanceQuery(pattern, reference, name)
