"""The paper's running example: a hyper-media object base (Figs. 1–31).

* :func:`~repro.hypermedia.scheme_def.build_scheme` — the Fig. 1 scheme;
* :func:`~repro.hypermedia.instance_def.build_instance` — the instance
  of Figs. 2–3, returned together with a handle object naming every
  node the figures refer to;
* :func:`~repro.hypermedia.instance_def.build_version_chain` — the
  Fig. 17 version-chain sub-instance used by the abstraction example;
* :mod:`~repro.hypermedia.figures` — one constructor per figure
  operation (patterns, additions, deletions, abstraction, methods,
  macros, inheritance), each returning ready-to-run objects.
"""

from repro.hypermedia.instance_def import (
    HyperMediaHandles,
    VersionChainHandles,
    build_instance,
    build_version_chain,
)
from repro.hypermedia.scheme_def import build_scheme

__all__ = [
    "HyperMediaHandles",
    "VersionChainHandles",
    "build_instance",
    "build_scheme",
    "build_version_chain",
]
