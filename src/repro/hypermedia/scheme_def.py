"""The hyper-media object base scheme of Fig. 1.

Classes (rectangles): Info, Version, Reference, Data, Comment, Sound,
Text, Graphics.  Printable classes (ovals): Date, String, Number,
Longstring, Bitmap, Bitstream.  Functional edges are single arrows,
multivalued edges (``links-to``, ``in``) double arrows.

The ``isa`` functional edge label connects Reference/Data to Info and
Sound/Text/Graphics to Data.  Section 2 attaches no special semantics
to it; ``build_scheme(mark_isa=True)`` opts into the Section 4.2
inheritance interpretation (used by the Fig. 30–31 reproduction).
"""

from __future__ import annotations

from repro.core.scheme import Scheme

#: The paper's two anchor dates.
JAN_12 = "Jan 12, 1990"
JAN_14 = "Jan 14, 1990"
JAN_16 = "Jan 16, 1990"


def build_scheme(mark_isa: bool = False) -> Scheme:
    """Construct the Fig. 1 scheme.

    With ``mark_isa=True`` the ``isa`` label is additionally marked as
    a subclass edge for the Section 4.2 inheritance macro.
    """
    scheme = Scheme(
        printable_labels=["Date", "String", "Number", "Longstring", "Bitmap", "Bitstream"]
    )
    # Info and its properties
    scheme.declare("Info", "created", "Date")
    scheme.declare("Info", "modified", "Date")
    scheme.declare("Info", "name", "String")
    scheme.declare("Info", "comment", "Comment")
    scheme.declare("Info", "links-to", "Info", functional=False)
    # Versions
    scheme.declare("Version", "new", "Info")
    scheme.declare("Version", "old", "Info")
    # Comments: either a string or a number
    scheme.declare("Comment", "is", "String")
    scheme.declare("Comment", "is", "Number")
    # References
    scheme.declare("Reference", "isa", "Info")
    scheme.declare("Reference", "in", "Info", functional=False)
    # Data and its subclasses
    scheme.declare("Data", "isa", "Info")
    scheme.declare("Sound", "isa", "Data")
    scheme.declare("Text", "isa", "Data")
    scheme.declare("Graphics", "isa", "Data")
    scheme.declare("Sound", "data", "Bitstream")
    scheme.declare("Sound", "frequency", "Number")
    scheme.declare("Text", "data", "Longstring")
    scheme.declare("Text", "#chars", "Number")
    scheme.declare("Text", "#words", "Number")
    scheme.declare("Graphics", "data", "Bitmap")
    scheme.declare("Graphics", "height", "Number")
    scheme.declare("Graphics", "width", "Number")
    if mark_isa:
        scheme.mark_isa("isa")
    scheme.validate()
    return scheme
