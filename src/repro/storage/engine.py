"""The relational GOOD engine (Section 5).

:class:`RelationalEngine` executes GOOD operations against the
relational layout: matchings come from the join-plan compiler of
:mod:`repro.storage.query` and transformations are insert/update/delete
batches — the architecture the paper describes for the University of
Antwerp prototype ("GOOD programs ... are interpreted by C programs
with embedded SQL statements").

The engine re-uses the *operation objects* of
:mod:`repro.core.operations` as the logical description of what to do,
and implements the same snapshot semantics.  Supported: the five basic
operations and the starred edge addition.  Method calls are
orchestration (the paper runs them in the C host program, not in SQL);
run them on the native engine, or convert with
:meth:`RelationalEngine.to_instance`.

Experiment S1 proves the engine equivalent (up to isomorphism) to the
native graph engine on randomly generated programs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.errors import BackendError, EdgeConflictError
from repro.core.instance import Instance
from repro.core.macros import RecursiveEdgeAddition
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
    OperationReport,
)
from repro.core.pattern import NegatedPattern
from repro.core.scheme import Scheme
from repro.graph.store import Edge
from repro.storage.layout import GoodLayout, NODES
from repro.storage.query import execute_any
from repro.txn import faults as _faults
from repro.txn import guards as _guards
from repro.txn.transaction import atomic_run


class RelationalEngine:
    """GOOD on relations: pattern matching by joins, updates by DML."""

    def __init__(self, scheme: Scheme, layout: Optional[GoodLayout] = None) -> None:
        self.scheme = scheme
        self.layout = layout if layout is not None else GoodLayout(scheme)
        if self.layout.scheme is not scheme:
            self.layout.scheme = scheme

    @classmethod
    def from_instance(cls, instance: Instance, copy_scheme: bool = True) -> "RelationalEngine":
        """Load a native instance (scheme copied by default)."""
        scheme = instance.scheme.copy() if copy_scheme else instance.scheme
        layout = GoodLayout.from_instance(instance.copy(scheme=scheme))
        return cls(scheme, layout)

    def to_instance(self) -> Instance:
        """Export the current state as a native instance."""
        return self.layout.to_instance()

    def restrict_to(self, scheme: Scheme) -> None:
        """Drop structure not conformant with ``scheme`` (footnote 4).

        Nodes of undeclared classes go (with cascades); functional
        columns and multivalued rows whose property triples are not in
        the new scheme's P are cleared.  The engine is rebound to
        ``scheme``.  This is what the method orchestration uses for the
        Figs. 23–25 interface filtering.
        """
        from repro.storage.layout import class_table, mv_table

        directory = self.layout.db.table("nodes")
        for row in list(directory.rows()):
            if not scheme.has_node_label(row["label"]):
                self.layout.delete_node(row["oid"])
        for label in sorted(self.scheme.object_labels):
            name = class_table(label)
            if not self.layout.db.has_table(name) or not scheme.is_object_label(label):
                continue
            table = self.layout.db.table(name)
            for column in list(table.columns):
                if column == "oid":
                    continue
                if column not in scheme.functional_edge_labels:
                    for row in list(table.rows()):
                        if row[column] is not None:
                            table.update(row["oid"], {column: None})
                    continue
                for row in list(table.rows()):
                    target = row[column]
                    if target is None:
                        continue
                    triple = (label, column, self.layout.label_of(target))
                    if not scheme.allows_edge(*triple):
                        table.update(row["oid"], {column: None})
        for mv_label in sorted(self.scheme.multivalued_edge_labels):
            name = mv_table(mv_label)
            if not self.layout.db.has_table(name):
                continue
            table = self.layout.db.table(name)
            if mv_label not in scheme.multivalued_edge_labels:
                table.delete_where(lambda row: True)
                continue
            table.delete_where(
                lambda row: not scheme.allows_edge(
                    self.layout.label_of(row["src"]), mv_label, self.layout.label_of(row["dst"])
                )
            )
        if self.layout.db._journals:
            for journal in list(self.layout.db._journals):
                journal.note_rebind(self.scheme, scheme)
        self.scheme = scheme
        self.layout.scheme = scheme

    # ------------------------------------------------------------------
    # transactional target protocol (repro.txn.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self):
        """Opaque full-state snapshot (scheme + relational store)."""
        from repro.txn.snapshot import OneShotState

        return (
            self.scheme,
            self.scheme.copy(),
            OneShotState(self.layout.db.copy()),
            self.layout._next_oid,
        )

    def restore_state(self, state) -> None:
        """Reinstall a :meth:`capture_state` snapshot (consuming it).

        The scheme object held by callers at capture time is restored
        in place and rebound, so patterns referencing it see the
        rollback even across ``restrict_to`` rebinding.  The captured
        database is installed directly — no second copy — consuming
        the snapshot (re-capture before restoring it again).
        """
        scheme_object, scheme_copy, db_state, next_oid = state
        db = db_state.take()
        scheme_object.restore_from(scheme_copy)
        self.scheme = scheme_object
        self.layout.scheme = scheme_object
        self.layout.db = db
        self.layout._next_oid = next_oid

    def state_summary(self) -> Tuple[int, int]:
        """``(node_count, edge_count)`` over the relational layout."""
        nodes = self.layout.db.table(NODES).count()
        edges = 0
        for name in self.layout.db.table_names():
            table = self.layout.db.table(name)
            if name.startswith("class:"):
                for row in table.rows():
                    edges += sum(
                        1 for column in table.columns if column != "oid" and row[column] is not None
                    )
            elif name.startswith("mv:"):
                edges += table.count()
        return (nodes, edges)

    def check_invariants(self) -> None:
        """Re-validate by exporting to a native (checking) instance."""
        self.to_instance().validate()

    def begin_journal(self):
        """Attach an O(changes) undo journal (:mod:`repro.txn.journal`).

        O(1): no database copy, no scheme copy.  Table mutations take
        copy-on-first-write pre-images (per watermark segment), so a
        rollback costs O(dirty tables) instead of O(database).
        """
        from repro.txn.journal import RelationalJournal

        return RelationalJournal(self)

    def rollback_journal(self, journal, mark) -> None:
        """Reverse-replay ``journal`` back to ``mark``."""
        journal.rollback_to(mark)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, operations, atomic: bool = True) -> List[OperationReport]:
        """Apply a sequence of operations in order.

        With ``atomic=True`` (the default) the whole sequence is
        all-or-nothing: any failure rolls the engine back to the exact
        pre-run state (scheme included) before re-raising, with a
        :class:`~repro.txn.transaction.FailureReport` attached to the
        exception.  ``atomic=False`` preserves the historical
        partial-mutation-on-error behavior.
        """
        if atomic:
            return atomic_run(self, operations, self.apply)
        reports: List[OperationReport] = []
        for index, operation in enumerate(operations):
            _faults.before_operation(operation, index)
            reports.append(self.apply(operation))
            _faults.after_operation(operation, index)
        return reports

    def apply(self, operation: Operation) -> OperationReport:
        """Apply one operation; dispatch on its type."""
        _faults.on_engine_call(self, operation)
        if isinstance(operation, NodeAddition):
            return self._node_addition(operation)
        if isinstance(operation, RecursiveEdgeAddition):
            return self._recursive_edge_addition(operation)
        if isinstance(operation, EdgeAddition):
            return self._edge_addition(operation)
        if isinstance(operation, NodeDeletion):
            return self._node_deletion(operation)
        if isinstance(operation, EdgeDeletion):
            return self._edge_deletion(operation)
        if isinstance(operation, Abstraction):
            return self._abstraction(operation)
        raise BackendError(
            f"the relational engine does not execute {type(operation).__name__} "
            "(method calls are host-program orchestration; see the module docstring)"
        )

    def matchings(self, pattern) -> List[Dict[int, int]]:
        """All matchings via the compiled join plan."""
        found = execute_any(pattern, self.layout)
        _guards.charge_matchings(len(found))
        return found

    # ------------------------------------------------------------------
    # the five operations as DML batches
    # ------------------------------------------------------------------
    def _materialize_constants(self, operation: Operation) -> None:
        patterns = [operation.positive_pattern]
        if isinstance(operation.source_pattern, NegatedPattern):
            patterns.extend(operation.source_pattern.extensions)
        for pattern in patterns:
            for node_id in pattern.nodes():
                record = pattern.node_record(node_id)
                if record.has_print and self.scheme.is_printable_label(record.label):
                    self.layout.get_or_create_printable(record.label, record.print_value)

    def _node_addition(self, op: NodeAddition) -> OperationReport:
        op.extend_scheme(self.scheme)
        self.layout.ensure_class(op.node_label)
        for edge_label, _ in op.edges:
            self.layout.ensure_column(op.node_label, edge_label)
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        nodes_added: List[int] = []
        edges_added: List[Edge] = []
        reused = 0
        for matching in matchings:
            targets = tuple(matching[m] for _, m in op.edges)
            if self._existing_addition_node(op, targets) is not None:
                reused += 1
                continue
            oid = self.layout.create_object(op.node_label)
            nodes_added.append(oid)
            for (edge_label, _), target in zip(op.edges, targets):
                self.layout.set_functional(oid, edge_label, target)
                edges_added.append(Edge(oid, edge_label, target))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            nodes_added=tuple(nodes_added),
            edges_added=tuple(edges_added),
            reused_count=reused,
        )

    def _existing_addition_node(self, op: NodeAddition, targets: Tuple[int, ...]) -> Optional[int]:
        table = self.layout.ensure_class(op.node_label)
        if not op.edges:
            rows = list(table.rows())
            return rows[0]["oid"] if rows else None
        first_label = op.edges[0][0]
        candidates = [row for row in table.lookup(first_label, targets[0])]
        for (edge_label, _), target in list(zip(op.edges, targets))[1:]:
            candidates = [row for row in candidates if row.get(edge_label) == target]
            if not candidates:
                return None
        return min(row["oid"] for row in candidates) if candidates else None

    def _edge_addition(self, op: EdgeAddition) -> OperationReport:
        op.extend_scheme(self.scheme)
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        planned: List[Tuple[int, str, int]] = []
        seen: Set[Tuple[int, str, int]] = set()
        for matching in matchings:
            for source, edge_label, target in op.edges:
                concrete = (matching[source], edge_label, matching[target])
                if concrete not in seen:
                    seen.add(concrete)
                    planned.append(concrete)
        self._check_edge_consistency(planned)
        edges_added: List[Edge] = []
        for source, edge_label, target in planned:
            if self.scheme.is_functional(edge_label):
                current = self.layout.functional_target(source, edge_label)
                if current == target:
                    continue
                self.layout.set_functional(source, edge_label, target)
                edges_added.append(Edge(source, edge_label, target))
            else:
                if self.layout.add_mv(source, edge_label, target):
                    edges_added.append(Edge(source, edge_label, target))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            edges_added=tuple(edges_added),
        )

    def _check_edge_consistency(self, planned: List[Tuple[int, str, int]]) -> None:
        combined: Dict[Tuple[int, str], Set[int]] = {}
        for source, edge_label, target in planned:
            combined.setdefault((source, edge_label), set()).add(target)
        for (source, edge_label), targets in sorted(combined.items()):
            if self.scheme.is_functional(edge_label):
                existing = self.layout.functional_target(source, edge_label)
                all_targets = set(targets)
                if existing is not None:
                    all_targets.add(existing)
                if len(all_targets) > 1:
                    raise EdgeConflictError(
                        f"edge addition would give node {source} {len(all_targets)} different "
                        f"{edge_label!r} (functional) edges"
                    )
            else:
                existing_targets = set(self.layout.mv_targets(source, edge_label))
                labels = {self.layout.label_of(t) for t in (existing_targets | targets)}
                if len(labels) > 1:
                    raise EdgeConflictError(
                        f"edge addition would give node {source} {edge_label!r}-successors "
                        f"with mixed labels {sorted(labels)!r}"
                    )

    def _node_deletion(self, op: NodeDeletion) -> OperationReport:
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        victims = sorted({matching[op.node] for matching in matchings})
        edges_removed = 0
        for victim in victims:
            if self.layout.has_node(victim):
                edges_removed += self.layout.delete_node(victim)
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            nodes_removed=tuple(victims),
        )

    def _edge_deletion(self, op: EdgeDeletion) -> OperationReport:
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        victims: Set[Tuple[int, str, int]] = set()
        for matching in matchings:
            for source, edge_label, target in op.edges:
                victims.add((matching[source], edge_label, matching[target]))
        edges_removed: List[Edge] = []
        for source, edge_label, target in sorted(victims):
            if self.scheme.is_functional(edge_label):
                if self.layout.functional_target(source, edge_label) == target:
                    self.layout.set_functional(source, edge_label, None)
                    edges_removed.append(Edge(source, edge_label, target))
            else:
                if self.layout.remove_mv(source, edge_label, target):
                    edges_removed.append(Edge(source, edge_label, target))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            edges_removed=tuple(edges_removed),
        )

    def _abstraction(self, op: Abstraction) -> OperationReport:
        op.extend_scheme(self.scheme)
        self.layout.ensure_class(op.set_label)
        self.layout.ensure_mv(op.beta)
        self._materialize_constants(op)
        matchings = self.matchings(op.source_pattern)
        matched = sorted({matching[op.node] for matching in matchings})
        alpha_set = {x: frozenset(self.layout.mv_targets(x, op.alpha)) for x in matched}
        groups: Dict[FrozenSet[int], Set[int]] = {}
        for member in matched:
            groups.setdefault(alpha_set[member], set()).add(member)
        if op.include_unmatched:
            member_label = op.positive_pattern.label_of(op.node)
            for oid in self.layout.oids_with_label(member_label):
                key = frozenset(self.layout.mv_targets(oid, op.alpha))
                if key in groups:
                    groups[key].add(oid)
        nodes_added: List[int] = []
        edges_added: List[Edge] = []
        reused = 0
        for key in sorted(groups, key=lambda k: tuple(sorted(k))):
            members = groups[key]
            if self._existing_group_node(op, members) is not None:
                reused += 1
                continue
            oid = self.layout.create_object(op.set_label)
            nodes_added.append(oid)
            for member in sorted(members):
                self.layout.add_mv(oid, op.beta, member)
                edges_added.append(Edge(oid, op.beta, member))
        return OperationReport(
            operation=op.describe(),
            matching_count=len(matchings),
            nodes_added=tuple(nodes_added),
            edges_added=tuple(edges_added),
            reused_count=reused,
        )

    def _existing_group_node(self, op: Abstraction, members: Set[int]) -> Optional[int]:
        if members:
            some = min(members)
            candidates = [
                oid
                for oid in self.layout.mv_sources(some, op.beta)
                if self.layout.label_of(oid) == op.set_label
            ]
        else:
            candidates = self.layout.oids_with_label(op.set_label)
        for candidate in sorted(candidates):
            if set(self.layout.mv_targets(candidate, op.beta)) == members:
                return candidate
        return None

    def _recursive_edge_addition(self, op: RecursiveEdgeAddition) -> OperationReport:
        sub_reports: List[OperationReport] = []
        edges_added: List[Edge] = []
        while True:
            report = self._edge_addition(op.edge_addition)
            sub_reports.append(report)
            if not report.edges_added:
                break
            edges_added.extend(report.edges_added)
        return OperationReport(
            operation=f"EA*[{op.edge_addition.describe()} x{len(sub_reports)}]",
            matching_count=sub_reports[0].matching_count,
            edges_added=tuple(edges_added),
            sub_reports=tuple(sub_reports),
        )
