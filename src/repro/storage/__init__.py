"""The Section 5 relational implementation of GOOD.

"A prototype of the actual data management is implemented on top of a
relational system.  Classes are stored as relations with attributes for
the object identifier and the functional properties.  Multivalued edges
are stored as binary relations.  The set of all matchings of the
pattern of a GOOD operation is expressed as an SQL query.  The actual
transformation is performed using SQL's update capabilities."

This package rebuilds that architecture from scratch:

* :mod:`repro.storage.minirel` — a small in-memory relational engine
  (tables with primary keys and secondary indexes, and a plan algebra
  of scans, index lookups, hash joins, filters and projections);
* :mod:`repro.storage.layout` — the GOOD→relations storage layout of
  the quote above;
* :mod:`repro.storage.query` — the compiler from GOOD patterns to join
  plans ("the SQL query");
* :mod:`repro.storage.engine` — :class:`RelationalEngine`, applying
  the five basic operations as insert/update/delete batches ("SQL's
  update capabilities"), re-using the operation objects of
  :mod:`repro.core.operations` as the logical description.

Differential tests (experiment S1) prove the engine equivalent to the
native graph engine on random programs.
"""

from repro.storage.engine import RelationalEngine
from repro.storage.layout import GoodLayout
from repro.storage.minirel import Database, Table
from repro.storage.query import compile_pattern

__all__ = ["Database", "GoodLayout", "RelationalEngine", "Table", "compile_pattern"]
