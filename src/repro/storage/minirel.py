"""A small in-memory relational engine.

This is the "relational system" substrate of Section 5 — built from
scratch because the reproduction may not assume an external database.
It provides:

* :class:`Table` — named columns, optional primary key, secondary hash
  indexes, insert/update/delete with index maintenance;
* :class:`Database` — a named collection of tables with DDL helpers
  (including ``add_column``, needed because GOOD operations evolve the
  scheme);
* a physical plan algebra — :class:`Scan`, :class:`IndexLookup`,
  :class:`Filter`, :class:`HashJoin`, :class:`Project` — whose nodes
  produce iterators of bindings (dicts variable → value), plus a tiny
  greedy join-order planner used by the pattern compiler.

Rows are dicts column → value; ``None`` encodes SQL NULL (an absent
functional property).  All iteration deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import BackendError

Row = Dict[str, Any]
Binding = Dict[str, Any]


class Table:
    """A heap of rows with a primary key and secondary hash indexes."""

    def __init__(self, name: str, columns: Sequence[str], key: Optional[str] = None) -> None:
        if len(set(columns)) != len(columns):
            raise BackendError(f"table {name!r}: duplicate column names")
        self.name = name
        self.columns: List[str] = list(columns)
        self.key = key
        if key is not None and key not in self.columns:
            raise BackendError(f"table {name!r}: key column {key!r} not in columns")
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 0
        self._primary: Dict[Any, int] = {}
        # column -> value -> set of rowids
        self._indexes: Dict[str, Dict[Any, set]] = {}
        # owning Database (set on create/copy/journal-reinstall); used
        # to report imminent mutations to attached undo journals
        self._db: Optional["Database"] = None
        # rows/primary/indexes are shared with a COW fork (see fork);
        # every mutator privatizes them first so the other side keeps
        # an untouched view
        self._shared = False

    def _privatize(self) -> None:
        """Deep-copy the shared row storage before the first mutation."""
        if not self._shared:
            return
        self._rows = {rowid: dict(row) for rowid, row in self._rows.items()}
        self._primary = dict(self._primary)
        self._indexes = {
            column: {value: set(ids) for value, ids in index.items()}
            for column, index in self._indexes.items()
        }
        self._shared = False

    def fork(self) -> "Table":
        """An O(1) copy-on-write clone sharing row storage with this table.

        Both sides are marked shared; whichever mutates first pays a
        one-time deep copy (:meth:`_privatize`), leaving the other
        side's data untouched.  Used by the MVCC snapshot subsystem to
        publish a relational version in O(#tables).
        """
        clone = Table.__new__(Table)
        clone.name = self.name
        clone.columns = list(self.columns)
        clone.key = self.key
        clone._rows = self._rows
        clone._next_rowid = self._next_rowid
        clone._primary = self._primary
        clone._indexes = self._indexes
        clone._db = None
        clone._shared = True
        self._shared = True
        return clone

    def _notify(self) -> None:
        """Tell the owning database's journals this table will mutate.

        Fired *before* the mutation so a journal can take a
        copy-on-first-write pre-image (at most one per table per
        watermark segment — see
        :class:`repro.txn.journal.RelationalJournal`).
        """
        db = self._db
        if db is not None and db._journals:
            for journal in db._journals:
                journal.table_dirty(self)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def add_column(self, column: str, default: Any = None) -> None:
        """Add a column, backfilling existing rows with ``default``."""
        if column in self.columns:
            return
        self._notify()
        self._privatize()
        self.columns.append(column)
        for row in self._rows.values():
            row[column] = default

    def create_index(self, column: str) -> None:
        """Create (or rebuild) a secondary hash index on ``column``."""
        if column not in self.columns:
            raise BackendError(f"table {self.name!r}: no column {column!r} to index")
        self._notify()
        self._privatize()
        index: Dict[Any, set] = {}
        for rowid, row in self._rows.items():
            index.setdefault(row[column], set()).add(rowid)
        self._indexes[column] = index

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        """Insert a row (missing columns become NULL)."""
        full = {column: row.get(column) for column in self.columns}
        extra = set(row) - set(self.columns)
        if extra:
            raise BackendError(f"table {self.name!r}: unknown columns {sorted(extra)!r}")
        if self.key is not None:
            key_value = full[self.key]
            if key_value in self._primary:
                raise BackendError(
                    f"table {self.name!r}: duplicate primary key {key_value!r}"
                )
        self._notify()
        self._privatize()
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = full
        if self.key is not None:
            self._primary[full[self.key]] = rowid
        for column, index in self._indexes.items():
            index.setdefault(full[column], set()).add(rowid)

    def get(self, key_value: Any) -> Optional[Row]:
        """Primary-key point lookup; returns a copy or ``None``."""
        if self.key is None:
            raise BackendError(f"table {self.name!r} has no primary key")
        rowid = self._primary.get(key_value)
        return dict(self._rows[rowid]) if rowid is not None else None

    def update(self, key_value: Any, changes: Row) -> bool:
        """Point update by primary key; returns whether a row changed."""
        if self.key is None:
            raise BackendError(f"table {self.name!r} has no primary key")
        rowid = self._primary.get(key_value)
        if rowid is None:
            return False
        self._notify()
        self._privatize()
        row = self._rows[rowid]
        for column, value in changes.items():
            if column not in self.columns:
                raise BackendError(f"table {self.name!r}: unknown column {column!r}")
            if column == self.key and value != key_value:
                raise BackendError(f"table {self.name!r}: cannot change the primary key")
            if column in self._indexes:
                self._indexes[column][row[column]].discard(rowid)
                self._indexes[column].setdefault(value, set()).add(rowid)
            row[column] = value
        return True

    def delete(self, key_value: Any) -> bool:
        """Point delete by primary key."""
        if self.key is None:
            raise BackendError(f"table {self.name!r} has no primary key")
        rowid = self._primary.get(key_value)
        if rowid is None:
            return False
        self._notify()
        self._privatize()
        self._primary.pop(key_value, None)
        self._drop_rowid(rowid)
        return True

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete every row satisfying ``predicate``; returns the count."""
        victims = [rowid for rowid, row in self._rows.items() if predicate(row)]
        if victims:
            self._notify()
            self._privatize()
        for rowid in victims:
            row = self._rows[rowid]
            if self.key is not None:
                self._primary.pop(row[self.key], None)
            self._drop_rowid(rowid)
        return len(victims)

    def _drop_rowid(self, rowid: int) -> None:
        row = self._rows.pop(rowid)
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(rowid)
                if not bucket:
                    del index[row[column]]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def rows(self) -> Iterator[Row]:
        """All rows (copies), in insertion order."""
        for rowid in sorted(self._rows):
            yield dict(self._rows[rowid])

    def lookup(self, column: str, value: Any) -> Iterator[Row]:
        """All rows with ``row[column] == value`` (index if available)."""
        index = self._indexes.get(column)
        if index is not None:
            for rowid in sorted(index.get(value, ())):
                yield dict(self._rows[rowid])
            return
        for rowid in sorted(self._rows):
            if self._rows[rowid][column] == value:
                yield dict(self._rows[rowid])

    def count(self) -> int:
        """Number of rows."""
        return len(self._rows)

    def copy(self) -> "Table":
        """Deep copy, indexes included."""
        clone = Table(self.name, list(self.columns), self.key)
        clone._rows = {rowid: dict(row) for rowid, row in self._rows.items()}
        clone._next_rowid = self._next_rowid
        clone._primary = dict(self._primary)
        for column in self._indexes:
            clone.create_index(column)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {self.count()} rows)"


class Database:
    """A named collection of tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        # attached undo journals (repro.txn.journal.RelationalJournal)
        self._journals: list = []

    def attach_journal(self, journal: Any) -> None:
        """Attach an undo journal: table mutations and DDL report to it."""
        self._journals.append(journal)

    def detach_journal(self, journal: Any) -> None:
        """Detach a journal previously attached."""
        try:
            self._journals.remove(journal)
        except ValueError:
            raise BackendError("journal is not attached to this database") from None

    def create_table(self, name: str, columns: Sequence[str], key: Optional[str] = None) -> Table:
        """Create a table; error if the name is taken."""
        if name in self._tables:
            raise BackendError(f"table {name!r} already exists")
        table = Table(name, columns, key)
        table._db = self
        self._tables[name] = table
        for journal in self._journals:
            journal.table_created(name)
        return table

    def ensure_table(self, name: str, columns: Sequence[str], key: Optional[str] = None) -> Table:
        """Create the table if absent; return it either way."""
        if name not in self._tables:
            return self.create_table(name, columns, key)
        return self._tables[name]

    def table(self, name: str) -> Table:
        """Look a table up; error if missing."""
        try:
            return self._tables[name]
        except KeyError:
            raise BackendError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether the table exists."""
        return name in self._tables

    def drop_table(self, name: str) -> None:
        """Remove a table if present."""
        table = self._tables.pop(name, None)
        if table is not None:
            table._db = None
            for journal in self._journals:
                journal.table_dropped(name, table)

    def table_names(self) -> Tuple[str, ...]:
        """All table names, sorted."""
        return tuple(sorted(self._tables))

    def copy(self) -> "Database":
        """Deep copy of all tables (journals do not carry over)."""
        clone = Database()
        clone._tables = {name: table.copy() for name, table in self._tables.items()}
        for table in clone._tables.values():
            table._db = clone
        return clone

    def fork(self) -> "Database":
        """An O(#tables) copy-on-write clone (see :meth:`Table.fork`).

        Journals do not carry over; DDL on either side stays private
        because each database owns its table dict.
        """
        clone = Database()
        clone._tables = {name: table.fork() for name, table in self._tables.items()}
        for table in clone._tables.values():
            table._db = clone
        return clone


# ----------------------------------------------------------------------
# physical plan algebra
# ----------------------------------------------------------------------


class PlanNode:
    """Base class: a plan node yields bindings (variable → value)."""

    def execute(self, db: Database) -> Iterator[Binding]:
        """Produce the node's bindings against ``db``."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """The variables this node binds."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """An EXPLAIN-style description of the (sub)plan."""
        raise NotImplementedError


class Scan(PlanNode):
    """Full scan of a table, binding selected columns to variables."""

    def __init__(self, table: str, bindings: Dict[str, str]) -> None:
        self.table = table
        self.bindings = dict(bindings)  # column -> variable

    def execute(self, db: Database) -> Iterator[Binding]:
        for row in db.table(self.table).rows():
            yield {variable: row[column] for column, variable in self.bindings.items()}

    def variables(self) -> FrozenSet[str]:
        return frozenset(self.bindings.values())

    def explain(self, indent: int = 0) -> str:
        return " " * indent + f"Scan({self.table} -> {sorted(self.bindings.values())})"


class IndexLookup(PlanNode):
    """Point lookup ``column = constant`` through an index (or scan)."""

    def __init__(self, table: str, column: str, value: Any, bindings: Dict[str, str]) -> None:
        self.table = table
        self.column = column
        self.value = value
        self.bindings = dict(bindings)

    def execute(self, db: Database) -> Iterator[Binding]:
        for row in db.table(self.table).lookup(self.column, self.value):
            yield {variable: row[column] for column, variable in self.bindings.items()}

    def variables(self) -> FrozenSet[str]:
        return frozenset(self.bindings.values())

    def explain(self, indent: int = 0) -> str:
        return " " * indent + (
            f"IndexLookup({self.table}.{self.column} = {self.value!r} -> "
            f"{sorted(self.bindings.values())})"
        )


class Filter(PlanNode):
    """Keep the child's bindings satisfying a predicate."""

    def __init__(self, child: PlanNode, description: str, predicate: Callable[[Binding], bool]) -> None:
        self.child = child
        self.description = description
        self.predicate = predicate

    def execute(self, db: Database) -> Iterator[Binding]:
        for binding in self.child.execute(db):
            if self.predicate(binding):
                yield binding

    def variables(self) -> FrozenSet[str]:
        return self.child.variables()

    def explain(self, indent: int = 0) -> str:
        return " " * indent + f"Filter({self.description})\n" + self.child.explain(indent + 2)


class HashJoin(PlanNode):
    """Equi-join of two children on their shared variables.

    With no shared variables this degrades to a cross product (still
    hash-driven with a single empty key).
    """

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right
        self.on = tuple(sorted(left.variables() & right.variables()))

    def execute(self, db: Database) -> Iterator[Binding]:
        buckets: Dict[Tuple[Any, ...], List[Binding]] = {}
        for binding in self.left.execute(db):
            key = tuple(binding[variable] for variable in self.on)
            buckets.setdefault(key, []).append(binding)
        for right_binding in self.right.execute(db):
            key = tuple(right_binding[variable] for variable in self.on)
            for left_binding in buckets.get(key, ()):
                merged = dict(left_binding)
                merged.update(right_binding)
                yield merged

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def explain(self, indent: int = 0) -> str:
        head = " " * indent + f"HashJoin(on {list(self.on)})"
        return head + "\n" + self.left.explain(indent + 2) + "\n" + self.right.explain(indent + 2)


class Project(PlanNode):
    """Keep only the given variables in each binding."""

    def __init__(self, child: PlanNode, keep: Sequence[str]) -> None:
        self.child = child
        self.keep = tuple(keep)

    def execute(self, db: Database) -> Iterator[Binding]:
        for binding in self.child.execute(db):
            yield {variable: binding[variable] for variable in self.keep}

    def variables(self) -> FrozenSet[str]:
        return frozenset(self.keep)

    def explain(self, indent: int = 0) -> str:
        return " " * indent + f"Project({list(self.keep)})\n" + self.child.explain(indent + 2)


def estimate_cardinality(plan: PlanNode, db: Database) -> float:
    """A crude cardinality estimate for planning (no histograms).

    Scans cost their table's row count, index point-lookups a single
    row, filters half their child, joins ``min`` of their inputs when
    connected and the product otherwise.
    """
    if isinstance(plan, Scan):
        return float(db.table(plan.table).count()) if db.has_table(plan.table) else 0.0
    if isinstance(plan, IndexLookup):
        return 1.0
    if isinstance(plan, Filter):
        return 0.5 * estimate_cardinality(plan.child, db)
    if isinstance(plan, HashJoin):
        left = estimate_cardinality(plan.left, db)
        right = estimate_cardinality(plan.right, db)
        if plan.on:
            return max(1.0, min(left, right))
        return left * right
    if isinstance(plan, Project):
        return estimate_cardinality(plan.child, db)
    return 1.0


def join_by_cost(leaves: Sequence[PlanNode], db: Database) -> PlanNode:
    """Cost-based join ordering: repeatedly merge the cheapest pair.

    Connected joins estimate ``min`` of the inputs, cross products the
    product, so anchored point-lookups are pulled to the front — the
    classic selectivity-first heuristic.  Falls back to exactly the
    same plans as :func:`join_greedily` on uniform inputs.
    """
    if not leaves:
        raise BackendError("cannot build a plan from zero leaves")
    remaining: List[PlanNode] = list(leaves)
    while len(remaining) > 1:
        best: Optional[Tuple[float, int, int]] = None
        for i in range(len(remaining)):
            for j in range(i + 1, len(remaining)):
                joined = HashJoin(remaining[i], remaining[j])
                cost = estimate_cardinality(joined, db)
                if not joined.on:
                    cost *= 10.0  # discourage cross products
                if best is None or cost < best[0]:
                    best = (cost, i, j)
        _, i, j = best
        merged = HashJoin(remaining[i], remaining[j])
        remaining = [
            plan for index, plan in enumerate(remaining) if index not in (i, j)
        ] + [merged]
    return remaining[0]


def join_greedily(leaves: Sequence[PlanNode]) -> PlanNode:
    """Greedy join-order planner: prefer joins sharing variables.

    Starts from the first leaf and repeatedly joins in the leaf sharing
    the most variables with the plan so far (connected joins before
    cross products), which keeps intermediate results small for the
    tree-shaped patterns GOOD figures use.
    """
    if not leaves:
        raise BackendError("cannot build a plan from zero leaves")
    remaining = list(leaves)
    plan = remaining.pop(0)
    while remaining:
        bound = plan.variables()
        remaining.sort(key=lambda leaf: -len(leaf.variables() & bound))
        plan = HashJoin(plan, remaining.pop(0))
    return plan
