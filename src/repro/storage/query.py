"""Compiling GOOD patterns to relational join plans.

"The set of all matchings of the pattern of a GOOD operation is
expressed as an SQL query" — this module is that compiler, targeting
the plan algebra of :mod:`repro.storage.minirel` instead of SQL text:

* every pattern node contributes one leaf: a scan of its class table
  (object nodes — also binding the columns of its functional pattern
  edges) or of its printable table (an indexed point lookup when the
  pattern fixes the value, a filtered scan when it carries a
  predicate);
* every multivalued pattern edge contributes a scan of its binary
  table;
* the greedy planner joins the leaves, connected joins first;
* matchings with crossed patterns are evaluated as the positive plan
  minus the projection of each extension plan (a relational
  anti-semijoin — exactly how Fig. 27's simulation behaves).
"""

from __future__ import annotations

from typing import List

from repro.core.matching import Matching
from repro.core.pattern import NegatedPattern, Pattern
from repro.storage.layout import GoodLayout, class_table, mv_table, printable_table
from repro.storage.minirel import (
    Filter,
    IndexLookup,
    PlanNode,
    Project,
    Scan,
    join_by_cost,
    join_greedily,
)


def _variable(node_id: int) -> str:
    return f"n{node_id}"


def compile_pattern(pattern: Pattern, layout: GoodLayout, planner: str = "cost") -> PlanNode:
    """Build the join plan computing all matchings of ``pattern``.

    The resulting plan binds one variable per pattern node (named
    ``n<id>``); an empty pattern compiles to a single-empty-binding
    plan.  Tables and columns the pattern mentions are created on
    demand so scans over never-populated classes yield zero rows
    rather than erroring.

    ``planner`` selects the join-ordering strategy: ``"cost"``
    (selectivity-first, the default) or ``"greedy"`` (connected-first,
    the baseline — kept for the planner ablation benchmark).
    """
    leaves: List[PlanNode] = []
    scheme = layout.scheme
    for node_id in pattern.nodes():
        record = pattern.node_record(node_id)
        variable = _variable(node_id)
        if scheme.is_printable_label(record.label):
            layout.ensure_printable(record.label)
            if record.has_print:
                leaves.append(
                    IndexLookup(
                        printable_table(record.label),
                        "value",
                        ("v", record.print_value),
                        {"oid": variable},
                    )
                )
            else:
                predicate = pattern.predicate_of(node_id)
                if predicate is None:
                    leaves.append(Scan(printable_table(record.label), {"oid": variable}))
                else:
                    value_var = f"v{node_id}"
                    scan = Scan(
                        printable_table(record.label), {"oid": variable, "value": value_var}
                    )
                    leaves.append(
                        Filter(
                            scan,
                            f"{predicate.name} on {value_var}",
                            lambda b, p=predicate, v=value_var: b[v] is not None and p(b[v][1]),
                        )
                    )
        else:
            layout.ensure_class(record.label)
            bindings = {"oid": variable}
            equalities = []
            for edge in pattern.store.out_edges(node_id):
                if scheme.is_functional(edge.label):
                    layout.ensure_column(record.label, edge.label)
                    target_var = _variable(edge.target)
                    if target_var in bindings.values():
                        # two columns must bind the same variable (a
                        # self-loop, or two functional edges sharing a
                        # target node): a dict of column → variable
                        # would silently drop one constraint, so bind a
                        # shadow variable and filter on equality
                        shadow = f"{variable}#{edge.label}#{target_var}"
                        bindings[edge.label] = shadow
                        equalities.append((shadow, target_var))
                    else:
                        bindings[edge.label] = target_var
            leaf: PlanNode = Scan(class_table(record.label), bindings)
            for shadow, main in equalities:
                leaf = Filter(
                    leaf,
                    f"{shadow} = {main}",
                    lambda b, s=shadow, m=main: b[s] == b[m],
                )
            leaves.append(leaf)
    for edge in pattern.edges():
        if not scheme.is_functional(edge.label):
            layout.ensure_mv(edge.label)
            if edge.source == edge.target:
                shadow = f"{_variable(edge.source)}#self#{edge.label}"
                scan = Scan(mv_table(edge.label), {"src": _variable(edge.source), "dst": shadow})
                leaves.append(
                    Filter(
                        scan,
                        f"{shadow} = {_variable(edge.source)}",
                        lambda b, s=shadow, m=_variable(edge.source): b[s] == b[m],
                    )
                )
            else:
                leaves.append(
                    Scan(
                        mv_table(edge.label),
                        {"src": _variable(edge.source), "dst": _variable(edge.target)},
                    )
                )
    if not leaves:
        return _EmptyPatternPlan()
    if planner == "cost":
        plan = join_by_cost(leaves, layout.db)
    else:
        plan = join_greedily(leaves)
    return Project(plan, [_variable(node_id) for node_id in pattern.nodes()])


class _EmptyPatternPlan(PlanNode):
    """The empty pattern has exactly one (empty) matching."""

    def execute(self, db):
        yield {}

    def variables(self):
        return frozenset()

    def explain(self, indent: int = 0) -> str:
        return " " * indent + "EmptyPattern"


def execute_pattern(pattern: Pattern, layout: GoodLayout) -> List[Matching]:
    """All matchings of a plain pattern, as node-id dictionaries."""
    plan = compile_pattern(pattern, layout)
    matchings: List[Matching] = []
    node_ids = list(pattern.nodes())
    for binding in plan.execute(layout.db):
        matchings.append({node_id: binding[_variable(node_id)] for node_id in node_ids})
    matchings.sort(key=lambda m: tuple(m[node_id] for node_id in node_ids))
    return matchings


def execute_negated(negated: NegatedPattern, layout: GoodLayout) -> List[Matching]:
    """Matchings of a crossed pattern via anti-semijoin.

    Positive matchings minus those whose projection appears among any
    extension plan's projections onto the positive nodes.
    """
    positive = execute_pattern(negated.positive, layout)
    if not positive:
        return []
    shared = list(negated.positive.nodes())
    blocked = set()
    for extension in negated.extensions:
        for matching in execute_pattern(extension, layout):
            blocked.add(tuple(matching[node_id] for node_id in shared))
    return [
        matching
        for matching in positive
        if tuple(matching[node_id] for node_id in shared) not in blocked
    ]


def execute_any(pattern, layout: GoodLayout) -> List[Matching]:
    """Dispatch plain vs crossed patterns."""
    if isinstance(pattern, NegatedPattern):
        return execute_negated(pattern, layout)
    return execute_pattern(pattern, layout)
