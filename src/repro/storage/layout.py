"""The GOOD → relations storage layout (Section 5).

* one directory table ``nodes(oid, label)``;
* per object class ``L`` a table ``class:L(oid, <one column per
  functional property of L>)`` — a NULL column encodes an absent
  functional edge (the paper's "convenient way to allow for incomplete
  information");
* per printable class ``P`` a table ``printable:P(oid, value)`` with a
  secondary index on ``value`` (print values are unique per class);
* per multivalued edge label ``m`` a binary table ``mv:m(src, dst)``
  with indexes on both sides.

The layout evolves with the scheme: operations that extend the scheme
trigger ``ensure_*`` calls which create tables and add (indexed)
columns on the fly.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.errors import BackendError
from repro.core.instance import Instance
from repro.core.scheme import Scheme
from repro.graph.store import NO_PRINT
from repro.storage.minirel import Database, Table

NODES = "nodes"


def class_table(label: str) -> str:
    """Table name for an object class."""
    return f"class:{label}"


def printable_table(label: str) -> str:
    """Table name for a printable class."""
    return f"printable:{label}"


def mv_table(label: str) -> str:
    """Table name for a multivalued edge label."""
    return f"mv:{label}"


class GoodLayout:
    """A GOOD instance stored relationally."""

    def __init__(self, scheme: Scheme, db: Optional[Database] = None) -> None:
        self.scheme = scheme
        self.db = db if db is not None else Database()
        if not self.db.has_table(NODES):
            directory = self.db.create_table(NODES, ["oid", "label"], key="oid")
            directory.create_index("label")
        self._next_oid = 0
        for row in self.db.table(NODES).rows():
            self._next_oid = max(self._next_oid, row["oid"] + 1)

    # ------------------------------------------------------------------
    # DDL-on-demand
    # ------------------------------------------------------------------
    def ensure_class(self, label: str) -> Table:
        """The class table for ``label``, created on first use."""
        name = class_table(label)
        if not self.db.has_table(name):
            self.db.create_table(name, ["oid"], key="oid")
        return self.db.table(name)

    def ensure_printable(self, label: str) -> Table:
        """The printable table for ``label``, created on first use."""
        name = printable_table(label)
        if not self.db.has_table(name):
            table = self.db.create_table(name, ["oid", "value"], key="oid")
            table.create_index("value")
        return self.db.table(name)

    def ensure_mv(self, label: str) -> Table:
        """The binary table for a multivalued label."""
        name = mv_table(label)
        if not self.db.has_table(name):
            table = self.db.create_table(name, ["src", "dst"])
            table.create_index("src")
            table.create_index("dst")
        return self.db.table(name)

    def ensure_column(self, class_label: str, edge_label: str) -> None:
        """Add (and index) a functional property column."""
        table = self.ensure_class(class_label)
        if edge_label not in table.columns:
            table.add_column(edge_label)
            table.create_index(edge_label)

    # ------------------------------------------------------------------
    # node operations
    # ------------------------------------------------------------------
    def new_oid(self) -> int:
        """Hand out a fresh object identifier."""
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def create_object(self, label: str, oid: Optional[int] = None) -> int:
        """Insert an object node; return its oid."""
        if oid is None:
            oid = self.new_oid()
        else:
            self._next_oid = max(self._next_oid, oid + 1)
        self.db.table(NODES).insert({"oid": oid, "label": label})
        self.ensure_class(label).insert({"oid": oid})
        return oid

    def create_printable(self, label: str, value: Any = NO_PRINT, oid: Optional[int] = None) -> int:
        """Insert a printable node; return its oid."""
        if oid is None:
            oid = self.new_oid()
        else:
            self._next_oid = max(self._next_oid, oid + 1)
        self.db.table(NODES).insert({"oid": oid, "label": label})
        stored = None if value is NO_PRINT else ("v", value)
        self.ensure_printable(label).insert({"oid": oid, "value": stored})
        return oid

    def get_or_create_printable(self, label: str, value: Any) -> int:
        """The unique printable node (label, value), created if absent."""
        found = self.find_printable(label, value)
        if found is not None:
            return found
        return self.create_printable(label, value)

    def find_printable(self, label: str, value: Any) -> Optional[int]:
        """Lookup by value through the printable table's index."""
        table = self.ensure_printable(label)
        rows = list(table.lookup("value", ("v", value)))
        return rows[0]["oid"] if rows else None

    def label_of(self, oid: int) -> str:
        """The node label of an oid (directory lookup)."""
        row = self.db.table(NODES).get(oid)
        if row is None:
            raise BackendError(f"unknown oid {oid!r}")
        return row["label"]

    def has_node(self, oid: int) -> bool:
        """Whether the oid exists."""
        return self.db.table(NODES).get(oid) is not None

    def oids_with_label(self, label: str) -> List[int]:
        """All oids of a class, sorted."""
        return sorted(row["oid"] for row in self.db.table(NODES).lookup("label", label))

    def print_of(self, oid: int) -> Any:
        """The print value of a printable oid (or ``NO_PRINT``)."""
        label = self.label_of(oid)
        row = self.ensure_printable(label).get(oid)
        if row is None or row["value"] is None:
            return NO_PRINT
        return row["value"][1]

    def delete_node(self, oid: int) -> int:
        """Delete a node with all incident edges; return #edges removed.

        Functional references from any class become NULL; multivalued
        rows touching the oid are deleted.
        """
        label = self.label_of(oid)
        removed = 0
        # outgoing + incoming functional edges
        for other_label in sorted(self.scheme.object_labels):
            name = class_table(other_label)
            if not self.db.has_table(name):
                continue
            table = self.db.table(name)
            for column in list(table.columns):
                if column == "oid":
                    continue
                for row in list(table.lookup(column, oid)):
                    table.update(row["oid"], {column: None})
                    removed += 1
        # multivalued edges
        for mv_label in sorted(self.scheme.multivalued_edge_labels):
            name = mv_table(mv_label)
            if not self.db.has_table(name):
                continue
            table = self.db.table(name)
            removed += table.delete_where(lambda row: row["src"] == oid or row["dst"] == oid)
        # the node row itself
        if self.scheme.is_printable_label(label):
            self.ensure_printable(label).delete(oid)
        else:
            class_row_table = self.ensure_class(label)
            # outgoing functional edges of the node itself are columns
            # of its own row; count them before dropping the row
            row = class_row_table.get(oid)
            if row is not None:
                removed += sum(
                    1 for column, value in row.items() if column != "oid" and value is not None
                )
            class_row_table.delete(oid)
        self.db.table(NODES).delete(oid)
        return removed

    # ------------------------------------------------------------------
    # edge operations
    # ------------------------------------------------------------------
    def functional_target(self, oid: int, edge_label: str) -> Optional[int]:
        """The target of a functional edge, or ``None``."""
        label = self.label_of(oid)
        table = self.ensure_class(label)
        if edge_label not in table.columns:
            return None
        row = table.get(oid)
        return None if row is None else row[edge_label]

    def set_functional(self, oid: int, edge_label: str, target: Optional[int]) -> None:
        """Set (or clear, with ``None``) a functional edge."""
        label = self.label_of(oid)
        self.ensure_column(label, edge_label)
        self.db.table(class_table(label)).update(oid, {edge_label: target})

    def mv_targets(self, oid: int, edge_label: str) -> List[int]:
        """Targets of a multivalued edge, sorted."""
        table = self.ensure_mv(edge_label)
        return sorted(row["dst"] for row in table.lookup("src", oid))

    def mv_sources(self, oid: int, edge_label: str) -> List[int]:
        """Sources of a multivalued edge, sorted."""
        table = self.ensure_mv(edge_label)
        return sorted(row["src"] for row in table.lookup("dst", oid))

    def add_mv(self, src: int, edge_label: str, dst: int) -> bool:
        """Insert a multivalued edge; ``False`` if already present."""
        table = self.ensure_mv(edge_label)
        for row in table.lookup("src", src):
            if row["dst"] == dst:
                return False
        table.insert({"src": src, "dst": dst})
        return True

    def remove_mv(self, src: int, edge_label: str, dst: int) -> bool:
        """Delete a multivalued edge; ``False`` if absent."""
        table = self.ensure_mv(edge_label)
        return table.delete_where(lambda row: row["src"] == src and row["dst"] == dst) > 0

    def functional_sources(self, target: int, edge_label: str) -> List[int]:
        """All oids with a functional ``edge_label`` edge to ``target``."""
        sources: List[int] = []
        for source_label in sorted(self.scheme.object_labels):
            name = class_table(source_label)
            if not self.db.has_table(name):
                continue
            table = self.db.table(name)
            if edge_label not in table.columns:
                continue
            sources.extend(row["oid"] for row in table.lookup(edge_label, target))
        return sorted(sources)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_instance(cls, instance: Instance) -> "GoodLayout":
        """Load a native instance into a fresh relational layout."""
        layout = cls(instance.scheme)
        for node_id in instance.nodes():
            record = instance.node_record(node_id)
            if instance.scheme.is_printable_label(record.label):
                layout.create_printable(record.label, record.print_value, oid=node_id)
            else:
                layout.create_object(record.label, oid=node_id)
        for edge in instance.edges():
            if instance.scheme.is_functional(edge.label):
                layout.ensure_column(instance.label_of(edge.source), edge.label)
                layout.set_functional(edge.source, edge.label, edge.target)
            else:
                layout.add_mv(edge.source, edge.label, edge.target)
        return layout

    def to_instance(self) -> Instance:
        """Reconstruct a native instance, preserving oids as node ids."""
        instance = Instance(self.scheme)
        for row in sorted(self.db.table(NODES).rows(), key=lambda r: r["oid"]):
            oid, label = row["oid"], row["label"]
            if self.scheme.is_printable_label(label):
                value = self.print_of(oid)
                instance.add_printable(label, value, _node_id=oid)
            else:
                instance.add_object(label, _node_id=oid)
        for label in sorted(self.scheme.object_labels):
            name = class_table(label)
            if not self.db.has_table(name):
                continue
            table = self.db.table(name)
            for row in table.rows():
                for column in table.columns:
                    if column != "oid" and row[column] is not None:
                        instance.add_edge(row["oid"], column, row[column])
        for mv_label in sorted(self.scheme.multivalued_edge_labels):
            name = mv_table(mv_label)
            if not self.db.has_table(name):
                continue
            for row in self.db.table(name).rows():
                instance.add_edge(row["src"], mv_label, row["dst"])
        return instance

    def node_count(self) -> int:
        """Number of nodes."""
        return self.db.table(NODES).count()
