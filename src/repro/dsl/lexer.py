"""Tokenizer for the GOOD textual syntax.

Token kinds: identifiers (node variables, labels — labels may contain
``-`` and ``#`` as in ``links-to`` and ``#words``), string and number
literals, booleans, punctuation (``{ } ( ) : ; , = /``), the edge
arrows ``-label->`` and ``-label->>`` (lexed as three tokens: ``-``,
label, arrow), and keywords.  ``#`` starts a comment only at a word
boundary followed by space (so ``#words`` stays a label).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List

from repro.core.errors import GoodError


class DslLexError(GoodError):
    """Unrecognised input in a DSL source text."""


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    value: Any
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r} @ {self.line}:{self.column})"


KEYWORDS = {
    "addnode",
    "addedge",
    "delnode",
    "deledge",
    "recursive",
    "abstract",
    "method",
    "call",
    "on",
    "keeps",
    "add",
    "del",
    "by",
    "as",
    "no",
    "true",
    "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#\s[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<arrow2>->>)
  | (?P<arrow>->)
  | (?P<dash>-)
  | (?P<punct>[{}():;,=/])
  | (?P<ident>[A-Za-z_@#$][A-Za-z0-9_@#$.'!?*+]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Turn DSL source into a token list (comments/whitespace dropped)."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            snippet = text[position : position + 10]
            raise DslLexError(f"line {line}:{column}: cannot tokenize {snippet!r}")
        kind = match.lastgroup
        value = match.group()
        column = position - line_start + 1
        if kind == "ws":
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = position + value.rindex("\n") + 1
        elif kind == "comment":
            pass
        elif kind == "string":
            unescaped = bytes(value[1:-1], "utf-8").decode("unicode_escape")
            tokens.append(Token("string", unescaped, line, column))
        elif kind == "number":
            number = float(value) if "." in value else int(value)
            tokens.append(Token("number", number, line, column))
        elif kind == "ident":
            if value in KEYWORDS:
                if value in ("true", "false"):
                    tokens.append(Token("bool", value == "true", line, column))
                else:
                    tokens.append(Token(value, value, line, column))
            else:
                tokens.append(Token("ident", value, line, column))
        elif kind == "arrow2":
            tokens.append(Token("->>", value, line, column))
        elif kind == "arrow":
            tokens.append(Token("->", value, line, column))
        elif kind == "dash":
            tokens.append(Token("-", value, line, column))
        else:  # punct
            tokens.append(Token(value, value, line, column))
        position = match.end()
    tokens.append(Token("eof", None, line, position - line_start + 1))
    return tokens
