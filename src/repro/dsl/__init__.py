"""A textual syntax for GOOD patterns and operations.

The paper's point is that graph *pictures* are the right end-user
syntax; a reproduction still needs a way to write those pictures down
in scripts and tests.  This package provides a compact textual form
mirroring the drawing conventions:

* ``x: Info`` declares a pattern node (``= literal`` pins a constant);
* ``x -created-> d`` is a functional edge, ``x -links-to->> y`` a
  multivalued one (the paper's single vs double arrowhead);
* ``no { ... }`` is a crossed part (Fig. 26);
* statements wrap the five operations::

      addnode Pair(parent -> d1, child -> d2) { ... }
      addedge { ... } add x -rec-links-to->> y
      delnode x { ... }
      deledge { ... } del x -modified-> d
      abstract x by links-to as Same-Info/contains { ... }

See :func:`~repro.dsl.parser.parse_pattern` and
:func:`~repro.dsl.parser.parse_program`; the grammar reference lives in
the :mod:`repro.dsl.parser` docstring.
"""

from repro.dsl.parser import DslError, parse_operation, parse_pattern, parse_program
from repro.dsl.printer import (
    DslPrintError,
    method_to_dsl,
    operation_to_dsl,
    pattern_to_dsl,
    program_to_dsl,
)

__all__ = [
    "DslError",
    "DslPrintError",
    "method_to_dsl",
    "operation_to_dsl",
    "parse_operation",
    "parse_pattern",
    "parse_program",
    "pattern_to_dsl",
    "program_to_dsl",
]
