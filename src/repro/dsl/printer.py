"""Rendering patterns and operations back into the textual syntax.

The inverse of :mod:`repro.dsl.parser`: ``pattern_to_dsl`` and
``operation_to_dsl`` produce source text that re-parses to an
equivalent pattern/operation (same matchings, same effect) — proved by
the round-trip property tests.  Variables are named ``n<id>`` after the
pattern node ids, so the output is stable and diffable.
"""

from __future__ import annotations

import re
from typing import List, Union

from repro.core.errors import GoodError
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
)
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.scheme import Scheme

_PLAIN_LABEL = re.compile(r"^[A-Za-z_@#][A-Za-z0-9_@#.'!?*+-]*$")


class DslPrintError(GoodError):
    """The object cannot be rendered in the textual syntax."""


def _label(text: str) -> str:
    if _PLAIN_LABEL.match(text) and not text.endswith("-"):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _literal(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise DslPrintError(f"print value {value!r} has no literal syntax")


def _edge_label(text: str) -> str:
    # edge labels appear inline between dashes; only plain dashed
    # identifiers can be re-parsed there
    if not _PLAIN_LABEL.match(text) or text.endswith("-"):
        raise DslPrintError(f"edge label {text!r} has no textual syntax")
    return text


def _arrow(scheme: Scheme, edge_label: str) -> str:
    if edge_label in scheme.multivalued_edge_labels:
        return "->>"
    return "->"


def _name_of(node_id: int, names) -> str:
    if names and node_id in names:
        return names[node_id]
    return f"n{node_id}"


def _block_lines(pattern: Pattern, scheme: Scheme, names=None) -> List[str]:
    lines: List[str] = []
    for node_id in pattern.nodes():
        record = pattern.node_record(node_id)
        if pattern.predicate_of(node_id) is not None:
            raise DslPrintError("print predicates have no textual syntax yet")
        name = _name_of(node_id, names)
        if record.has_print:
            lines.append(f"{name}: {_label(record.label)} = {_literal(record.print_value)};")
        else:
            lines.append(f"{name}: {_label(record.label)};")
    for edge in pattern.edges():
        arrow = _arrow(scheme, edge.label)
        lines.append(
            f"{_name_of(edge.source, names)} -{_edge_label(edge.label)}{arrow} "
            f"{_name_of(edge.target, names)};"
        )
    return lines


def pattern_to_dsl(
    pattern: Union[Pattern, NegatedPattern], scheme: Scheme, names=None
) -> str:
    """Render a (possibly crossed) pattern as a ``{ ... }`` block.

    ``names`` optionally overrides variable names per node id (the
    method printer uses it for ``self`` and ``$param``).
    """
    if isinstance(pattern, NegatedPattern):
        positive = pattern.positive
        lines = _block_lines(positive, scheme, names)
        positive_nodes = set(positive.nodes())
        positive_edges = {edge.as_tuple() for edge in positive.edges()}
        for extension in pattern.extensions:
            inner: List[str] = []
            for node_id in extension.nodes():
                if node_id in positive_nodes:
                    continue
                record = extension.node_record(node_id)
                name = _name_of(node_id, names)
                if record.has_print:
                    inner.append(
                        f"{name}: {_label(record.label)} = {_literal(record.print_value)};"
                    )
                else:
                    inner.append(f"{name}: {_label(record.label)};")
            for edge in extension.edges():
                if edge.as_tuple() in positive_edges:
                    continue
                arrow = _arrow(scheme, edge.label)
                inner.append(
                    f"{_name_of(edge.source, names)} -{_edge_label(edge.label)}{arrow} "
                    f"{_name_of(edge.target, names)};"
                )
            lines.append("no { " + " ".join(inner) + " };")
    else:
        lines = _block_lines(pattern, scheme, names)
    body = "\n    ".join(lines)
    return "{\n    " + body + "\n}" if lines else "{ }"


def operation_to_dsl(operation: Operation, scheme: Scheme, names=None) -> str:
    """Render an operation (or method call) as a statement."""
    from repro.core.macros import RecursiveEdgeAddition, RecursiveNodeAddition
    from repro.core.methods import MethodCall

    if isinstance(operation, RecursiveEdgeAddition):
        return "recursive " + operation_to_dsl(operation.edge_addition, scheme, names)
    if isinstance(operation, RecursiveNodeAddition):
        return "recursive " + operation_to_dsl(operation.node_addition, scheme, names)
    block = pattern_to_dsl(operation.source_pattern, scheme, names)
    if isinstance(operation, MethodCall):
        receiver = _name_of(operation.receiver, names)
        if operation.arguments:
            bindings = ", ".join(
                f"{_edge_label(label)} -> {_name_of(target, names)}"
                for label, target in sorted(operation.arguments.items())
            )
            return f"call {_label(operation.method_name)}({bindings}) on {receiver} {block}"
        return f"call {_label(operation.method_name)} on {receiver} {block}"
    if isinstance(operation, NodeAddition):
        if operation.edges:
            bindings = ", ".join(
                f"{_edge_label(label)} -> {_name_of(target, names)}"
                for label, target in operation.edges
            )
            return f"addnode {_label(operation.node_label)}({bindings}) {block}"
        return f"addnode {_label(operation.node_label)} {block}"
    if isinstance(operation, EdgeAddition):
        edges = []
        for source, edge_label, target in operation.edges:
            if edge_label in scheme.multivalued_edge_labels:
                arrow = "->>"
            elif edge_label in scheme.functional_edge_labels:
                arrow = "->"
            else:
                kind = operation.new_label_kinds.get(edge_label, "functional")
                arrow = "->>" if kind == "multivalued" else "->"
            edges.append(
                f"{_name_of(source, names)} -{_edge_label(edge_label)}{arrow} "
                f"{_name_of(target, names)}"
            )
        return f"addedge {block} add " + ", ".join(edges)
    if isinstance(operation, NodeDeletion):
        return f"delnode {_name_of(operation.node, names)} {block}"
    if isinstance(operation, EdgeDeletion):
        edges = []
        for source, edge_label, target in operation.edges:
            arrow = _arrow(scheme, edge_label)
            edges.append(
                f"{_name_of(source, names)} -{_edge_label(edge_label)}{arrow} "
                f"{_name_of(target, names)}"
            )
        return f"deledge {block} del " + ", ".join(edges)
    if isinstance(operation, Abstraction):
        return (
            f"abstract {_name_of(operation.node, names)} by {_edge_label(operation.alpha)} "
            f"as {_label(operation.set_label)}/{_edge_label(operation.beta)} {block}"
        )
    raise DslPrintError(f"{type(operation).__name__} has no textual syntax")


def method_to_dsl(method, scheme: Scheme) -> str:
    """Render a :class:`~repro.core.methods.Method` as a definition."""
    signature = method.signature
    header = f"method {_label(signature.name)}"
    if signature.parameters:
        params = ", ".join(
            f"{_edge_label(label)}: {_label(node_label)}"
            for label, node_label in sorted(signature.parameters.items())
        )
        header += f"({params})"
    header += f" on {_label(signature.receiver_label)}"
    keeps = []
    for source, edge, target in sorted(method.interface.properties):
        arrow = "->>" if edge in method.interface.multivalued_edge_labels else "->"
        keeps.append(f"{_label(source)} -{_edge_label(edge)}{arrow} {_label(target)}")
    if keeps:
        header += " keeps " + ", ".join(keeps)
    statements = []
    for body_op in method.body:
        names = {}
        if body_op.head is not None:
            if body_op.head.receiver is not None:
                names[body_op.head.receiver] = "self"
            for param_label, target in body_op.head.parameters.items():
                names[target] = f"${param_label}"
        statements.append("    " + operation_to_dsl(body_op.operation, scheme, names))
    return header + " {\n" + "\n".join(statements) + "\n}"


def program_to_dsl(program, scheme: Scheme) -> str:
    """Render a :class:`~repro.core.program.Program` as DSL source."""
    chunks = []
    for name in program.methods.names():
        chunks.append(method_to_dsl(program.methods.get(name), scheme))
    for operation in program.operations:
        chunks.append(operation_to_dsl(operation, scheme))
    return "\n\n".join(chunks) + "\n"
