"""Recursive-descent parser for the GOOD textual syntax.

Grammar (EBNF; ``IDENT`` may not contain ``-``, labels may — the
parser reassembles dashed labels)::

    program    := (method | statement)+
    statement  := addnode | addedge | delnode | deledge | abstract
                | call | recursive
    recursive  := 'recursive' (addnode | addedge)
    method     := 'method' label ['(' param (',' param)* ')'] 'on' label
                  ['keeps' triple (',' triple)*] '{' statement+ '}'
    param      := label ':' label
    triple     := (IDENT|STRING) '-' label ('->'|'->>') label
    call       := 'call' label ['(' binding (',' binding)* ')'] 'on' IDENT block
    addnode    := 'addnode' label ['(' binding (',' binding)* ')'] block
    binding    := label '->' IDENT
    addedge    := 'addedge' block 'add' edge (',' edge)*
    delnode    := 'delnode' IDENT block
    deledge    := 'deledge' block 'del' edge (',' edge)*
    abstract   := 'abstract' IDENT 'by' label 'as' label '/' label block
    block      := '{' [clause (';' clause)*] [';'] '}'
    clause     := nodedecl | edge | crossed
    nodedecl   := IDENT ':' label ['=' literal]
    edge       := IDENT '-' label ('->' | '->>') IDENT
    crossed    := 'no' block
    label      := (IDENT | STRING) ('-' IDENT)*
    literal    := STRING | NUMBER | BOOL

Arrows carry the paper's kind convention: ``->`` functional, ``->>``
multivalued.  For edges over *declared* labels the arrow must agree
with the scheme; in ``addedge`` a fresh label's kind is taken from the
arrow.  A ``no`` block contributes one crossed extension; it may
declare additional nodes and reference the positive ones.

Method bodies bind the paper's diamond node through reserved pattern
variables: ``self`` is the formal receiver, ``$<param>`` the formal
parameter ``<param>``.  The ``keeps`` triples form the method
interface (Figs. 23–25): structure with labels outside
*original scheme ∪ keeps* is filtered from the call's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union

from repro.core.errors import GoodError
from repro.core.operations import (
    Abstraction,
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    Operation,
)
from repro.core.pattern import NegatedPattern, Pattern
from repro.core.program import Program
from repro.core.scheme import Scheme
from repro.dsl.lexer import Token, tokenize
from repro.graph.store import NO_PRINT


class DslError(GoodError):
    """Parse or compile error in DSL source."""


@dataclass
class _EdgeClause:
    source: str
    label: str
    target: str
    multivalued_arrow: bool
    line: int


@dataclass
class _NodeClause:
    name: str
    label: str
    literal: Any
    line: int


@dataclass
class _Block:
    nodes: List[_NodeClause]
    edges: List[_EdgeClause]
    crossed: List["_Block"]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise DslError(
                f"line {token.line}:{token.column}: expected {kind!r}, found "
                f"{token.kind!r} ({token.value!r})"
            )
        return self.advance()

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_label(self) -> str:
        token = self.peek()
        if token.kind == "string":
            self.advance()
            return token.value
        parts = [self.expect("ident").value]
        while self.at("-"):
            # a dash inside a label only if followed by an identifier
            if self.tokens[self.position + 1].kind != "ident":
                break
            self.advance()
            parts.append(self.expect("ident").value)
        return "-".join(parts)

    def parse_literal(self) -> Any:
        token = self.peek()
        if token.kind in ("string", "number", "bool"):
            self.advance()
            return token.value
        raise DslError(
            f"line {token.line}:{token.column}: expected a literal, found {token.kind!r}"
        )

    def parse_block(self) -> _Block:
        self.expect("{")
        block = _Block([], [], [])
        while not self.at("}"):
            self.parse_clause(block)
            if self.at(";"):
                self.advance()
            elif not self.at("}"):
                token = self.peek()
                raise DslError(
                    f"line {token.line}:{token.column}: expected ';' or '}}', found "
                    f"{token.kind!r}"
                )
        self.expect("}")
        return block

    def parse_clause(self, block: _Block) -> None:
        if self.at("no"):
            self.advance()
            block.crossed.append(self.parse_block())
            return
        name_token = self.expect("ident")
        if self.at(":"):
            self.advance()
            label = self.parse_label()
            literal: Any = NO_PRINT
            if self.at("="):
                self.advance()
                literal = self.parse_literal()
            block.nodes.append(_NodeClause(name_token.value, label, literal, name_token.line))
            return
        # edge clause: IDENT '-' label arrow IDENT
        self.expect("-")
        label = self.parse_label()
        if self.at("->>"):
            self.advance()
            multivalued = True
        else:
            self.expect("->")
            multivalued = False
        target = self.expect("ident")
        block.edges.append(
            _EdgeClause(name_token.value, label, target.value, multivalued, name_token.line)
        )

    def _parse_keep_triple(self) -> _EdgeClause:
        token = self.peek()
        if token.kind == "string":
            source = self.advance().value
        else:
            source = self.expect("ident").value
        self.expect("-")
        label = self.parse_label()
        if self.at("->>"):
            self.advance()
            multivalued = True
        else:
            self.expect("->")
            multivalued = False
        target = self.parse_label()
        return _EdgeClause(source, label, target, multivalued, token.line)

    def parse_edge_list(self) -> List[_EdgeClause]:
        edges = [self.parse_single_edge()]
        while self.at(","):
            self.advance()
            edges.append(self.parse_single_edge())
        return edges

    def parse_single_edge(self) -> _EdgeClause:
        source = self.expect("ident")
        self.expect("-")
        label = self.parse_label()
        if self.at("->>"):
            self.advance()
            multivalued = True
        else:
            self.expect("->")
            multivalued = False
        target = self.expect("ident")
        return _EdgeClause(source.value, label, target.value, multivalued, source.line)

    def parse_statement(self) -> Tuple[str, Any]:
        token = self.peek()
        if token.kind == "recursive":
            self.advance()
            inner_kind, inner_payload = self.parse_statement()
            if inner_kind not in ("addnode", "addedge"):
                raise DslError(
                    f"line {token.line}:{token.column}: 'recursive' applies to "
                    f"addnode/addedge statements, not {inner_kind!r}"
                )
            return ("recursive", (inner_kind, inner_payload))
        if token.kind == "addnode":
            self.advance()
            node_label = self.parse_label()
            bindings: List[Tuple[str, str]] = []
            if self.at("("):
                self.advance()
                while not self.at(")"):
                    edge_label = self.parse_label()
                    self.expect("->")
                    variable = self.expect("ident").value
                    bindings.append((edge_label, variable))
                    if self.at(","):
                        self.advance()
                self.expect(")")
            block = self.parse_block()
            return ("addnode", (node_label, bindings, block))
        if token.kind == "addedge":
            self.advance()
            block = self.parse_block()
            self.expect("add")
            edges = self.parse_edge_list()
            return ("addedge", (block, edges))
        if token.kind == "delnode":
            self.advance()
            variable = self.expect("ident").value
            block = self.parse_block()
            return ("delnode", (variable, block))
        if token.kind == "deledge":
            self.advance()
            block = self.parse_block()
            self.expect("del")
            edges = self.parse_edge_list()
            return ("deledge", (block, edges))
        if token.kind == "abstract":
            self.advance()
            variable = self.expect("ident").value
            self.expect("by")
            alpha = self.parse_label()
            self.expect("as")
            set_label = self.parse_label()
            self.expect("/")
            beta = self.parse_label()
            block = self.parse_block()
            return ("abstract", (variable, alpha, set_label, beta, block))
        if token.kind == "call":
            self.advance()
            method_name = self.parse_label()
            bindings: List[Tuple[str, str]] = []
            if self.at("("):
                self.advance()
                while not self.at(")"):
                    edge_label = self.parse_label()
                    self.expect("->")
                    variable = self.expect("ident").value
                    bindings.append((edge_label, variable))
                    if self.at(","):
                        self.advance()
                self.expect(")")
            self.expect("on")
            receiver = self.expect("ident").value
            block = self.parse_block()
            return ("call", (method_name, bindings, receiver, block))
        if token.kind == "method":
            self.advance()
            method_name = self.parse_label()
            parameters: List[Tuple[str, str]] = []
            if self.at("("):
                self.advance()
                while not self.at(")"):
                    edge_label = self.parse_label()
                    self.expect(":")
                    node_label = self.parse_label()
                    parameters.append((edge_label, node_label))
                    if self.at(","):
                        self.advance()
                self.expect(")")
            self.expect("on")
            receiver_label = self.parse_label()
            keeps: List[_EdgeClause] = []
            if self.at("keeps"):
                self.advance()
                keeps.append(self._parse_keep_triple())
                while self.at(","):
                    self.advance()
                    keeps.append(self._parse_keep_triple())
            self.expect("{")
            body: List[Tuple[str, Any]] = []
            while not self.at("}"):
                body.append(self.parse_statement())
            self.expect("}")
            return ("method", (method_name, parameters, receiver_label, keeps, body))
        raise DslError(
            f"line {token.line}:{token.column}: expected a statement keyword, found "
            f"{token.kind!r}"
        )


# ----------------------------------------------------------------------
# compilation to patterns/operations
# ----------------------------------------------------------------------


def _build_pattern(block: _Block, scheme: Scheme) -> Tuple[Union[Pattern, NegatedPattern], Dict[str, int]]:
    pattern = Pattern(scheme)
    variables: Dict[str, int] = {}
    _populate(pattern, variables, block, scheme)
    if not block.crossed:
        return pattern, variables
    negated = NegatedPattern(pattern)
    for crossed_block in block.crossed:
        extension = pattern.copy()
        crossed_vars = dict(variables)
        _populate(extension, crossed_vars, crossed_block, scheme)
        if crossed_block.crossed:
            raise DslError("crossed blocks cannot nest")
        negated.forbid(extension)
    return negated, variables


def _populate(pattern: Pattern, variables: Dict[str, int], block: _Block, scheme: Scheme) -> None:
    for clause in block.nodes:
        if clause.name in variables:
            raise DslError(f"line {clause.line}: variable {clause.name!r} declared twice")
        try:
            if scheme.is_printable_label(clause.label) and clause.literal is not NO_PRINT:
                variables[clause.name] = pattern.printable(clause.label, clause.literal)
            elif clause.literal is not NO_PRINT:
                raise DslError(
                    f"line {clause.line}: only printable nodes take '=' literals"
                )
            else:
                variables[clause.name] = pattern.add_node(clause.label)
        except GoodError as error:
            raise DslError(f"line {clause.line}: {error}") from error
    for clause in block.edges:
        for endpoint in (clause.source, clause.target):
            if endpoint not in variables:
                raise DslError(
                    f"line {clause.line}: edge references undeclared variable {endpoint!r}"
                )
        _check_arrow(scheme, clause)
        try:
            pattern.add_edge(variables[clause.source], clause.label, variables[clause.target])
        except GoodError as error:
            raise DslError(f"line {clause.line}: {error}") from error


def _check_arrow(scheme: Scheme, clause: _EdgeClause, allow_fresh: bool = False) -> None:
    declared_functional = clause.label in scheme.functional_edge_labels
    declared_multivalued = clause.label in scheme.multivalued_edge_labels
    if not (declared_functional or declared_multivalued):
        if allow_fresh:
            return
        raise DslError(f"line {clause.line}: unknown edge label {clause.label!r}")
    if declared_functional and clause.multivalued_arrow:
        raise DslError(
            f"line {clause.line}: {clause.label!r} is functional; use '->' not '->>'"
        )
    if declared_multivalued and not clause.multivalued_arrow:
        raise DslError(
            f"line {clause.line}: {clause.label!r} is multivalued; use '->>' not '->'"
        )


def parse_pattern(text: str, scheme: Scheme) -> Tuple[Union[Pattern, NegatedPattern], Dict[str, int]]:
    """Parse ``{ ... }`` into a pattern and its variable bindings."""
    parser = _Parser(tokenize(text))
    block = parser.parse_block()
    if not parser.at("eof"):
        token = parser.peek()
        raise DslError(f"line {token.line}:{token.column}: trailing input after pattern")
    return _build_pattern(block, scheme)


def _compile_statement(kind: str, payload: Any, scheme: Scheme) -> Tuple[Operation, Dict[str, int]]:
    if kind == "recursive":
        from repro.core.macros import RecursiveEdgeAddition, RecursiveNodeAddition

        inner_kind, inner_payload = payload
        operation, variables = _compile_statement(inner_kind, inner_payload, scheme)
        if inner_kind == "addedge":
            return RecursiveEdgeAddition(operation), variables
        return RecursiveNodeAddition(operation), variables
    if kind == "addnode":
        node_label, bindings, block = payload
        pattern, variables = _build_pattern(block, scheme)
        try:
            operation = NodeAddition(
                pattern,
                node_label,
                [(edge_label, _lookup(variables, name)) for edge_label, name in bindings],
            )
        except GoodError as error:
            raise DslError(str(error)) from error
        return operation, variables
    if kind == "addedge":
        block, edges = payload
        pattern, variables = _build_pattern(block, scheme)
        kinds: Dict[str, str] = {}
        concrete = []
        for clause in edges:
            _check_arrow(scheme, clause, allow_fresh=True)
            # record the kind unconditionally: inside a method body the
            # compile-time scheme may know a label (via the interface)
            # that the run-time scheme has not met yet
            kinds[clause.label] = "multivalued" if clause.multivalued_arrow else "functional"
            concrete.append(
                (_lookup(variables, clause.source), clause.label, _lookup(variables, clause.target))
            )
        try:
            operation = EdgeAddition(pattern, concrete, new_label_kinds=kinds)
        except GoodError as error:
            raise DslError(str(error)) from error
        return operation, variables
    if kind == "delnode":
        variable, block = payload
        pattern, variables = _build_pattern(block, scheme)
        return NodeDeletion(pattern, _lookup(variables, variable)), variables
    if kind == "deledge":
        block, edges = payload
        pattern, variables = _build_pattern(block, scheme)
        concrete = []
        for clause in edges:
            _check_arrow(scheme, clause)
            concrete.append(
                (_lookup(variables, clause.source), clause.label, _lookup(variables, clause.target))
            )
        try:
            operation = EdgeDeletion(pattern, concrete)
        except GoodError as error:
            raise DslError(str(error)) from error
        return operation, variables
    if kind == "abstract":
        variable, alpha, set_label, beta, block = payload
        pattern, variables = _build_pattern(block, scheme)
        try:
            operation = Abstraction(pattern, _lookup(variables, variable), set_label, alpha, beta)
        except GoodError as error:
            raise DslError(str(error)) from error
        return operation, variables
    if kind == "call":
        method_name, bindings, receiver, block = payload
        pattern, variables = _build_pattern(block, scheme)
        from repro.core.methods import MethodCall

        try:
            operation = MethodCall(
                pattern,
                method_name,
                receiver=_lookup(variables, receiver),
                arguments={label: _lookup(variables, name) for label, name in bindings},
            )
        except GoodError as error:
            raise DslError(str(error)) from error
        return operation, variables
    raise DslError(f"unknown statement kind {kind!r}")  # pragma: no cover


def _compile_method(payload: Any, working: Scheme):
    """Compile a ``method`` definition to a :class:`Method`.

    Inside body patterns the reserved variable ``self`` binds the
    formal receiver and ``$<param>`` binds the formal parameter
    ``<param>`` (the diamond-node edges of the paper's figures).  The
    ``keeps`` triples build the method interface; body statements are
    compiled against *working ∪ interface* which evolves statement by
    statement, like a top-level program.
    """
    from repro.core.methods import BodyOp, HeadBindings, Method, MethodSignature

    name, parameters, receiver_label, keeps, body_statements = payload
    params = dict(parameters)

    interface = Scheme()
    for clause in keeps:
        if not interface.is_object_label(clause.source):
            if working.is_printable_label(clause.source):
                raise DslError(
                    f"line {clause.line}: keeps source {clause.source!r} is printable"
                )
            interface.add_object_label(clause.source)
        if not interface.has_node_label(clause.target):
            if working.is_printable_label(clause.target):
                interface.add_printable_label(clause.target)
            else:
                interface.add_object_label(clause.target)
        if clause.multivalued_arrow:
            if clause.label not in interface.multivalued_edge_labels:
                interface.add_multivalued_edge_label(clause.label)
        else:
            if clause.label not in interface.functional_edge_labels:
                interface.add_functional_edge_label(clause.label)
        if clause.label in working.functional_edge_labels and clause.multivalued_arrow:
            raise DslError(f"line {clause.line}: {clause.label!r} is functional; use '->'")
        if clause.label in working.multivalued_edge_labels and not clause.multivalued_arrow:
            raise DslError(f"line {clause.line}: {clause.label!r} is multivalued; use '->>'")
        interface.add_property(clause.source, clause.label, clause.target)

    body_scheme = working.copy().union(interface)
    body_ops: List[BodyOp] = []
    for kind, statement_payload in body_statements:
        if kind == "method":
            raise DslError("method definitions cannot nest")
        operation, variables = _compile_statement(kind, statement_payload, body_scheme)
        receiver_node = variables.get("self")
        bound_params = {
            param: variables[f"${param}"] for param in params if f"${param}" in variables
        }
        unknown_dollars = {
            v for v in variables if v.startswith("$") and v[1:] not in params
        }
        if unknown_dollars:
            raise DslError(
                f"method {name!r}: unknown parameter variables {sorted(unknown_dollars)!r}"
            )
        if receiver_node is not None or bound_params:
            head = HeadBindings(receiver=receiver_node, parameters=bound_params)
        else:
            head = None
        body_ops.append(BodyOp(operation, head))
        extend = getattr(operation, "extend_scheme", None)
        if extend is not None:
            extend(body_scheme)
    try:
        method = Method(MethodSignature(name, receiver_label, params), body_ops, interface)
    except GoodError as error:
        raise DslError(f"method {name!r}: {error}") from error
    return method, interface


def _lookup(variables: Dict[str, int], name: str) -> int:
    try:
        return variables[name]
    except KeyError:
        raise DslError(f"undeclared variable {name!r}") from None


def parse_operation(text: str, scheme: Scheme) -> Operation:
    """Parse a single statement into an operation."""
    parser = _Parser(tokenize(text))
    kind, payload = parser.parse_statement()
    if kind == "method":
        raise DslError("method definitions belong in parse_program, not parse_operation")
    if not parser.at("eof"):
        token = parser.peek()
        raise DslError(f"line {token.line}:{token.column}: trailing input after statement")
    operation, _variables = _compile_statement(kind, payload, scheme)
    return operation


def parse_program(text: str, scheme: Scheme) -> Program:
    """Parse a whole DSL source into a :class:`Program`.

    The program is compiled against a private copy of ``scheme`` that
    evolves as statements are compiled — a later statement's pattern
    may reference classes and edge labels an earlier statement
    introduces, exactly as it could at run time.
    """
    working = scheme.copy()
    parser = _Parser(tokenize(text))
    operations: List[Operation] = []
    methods = []
    while not parser.at("eof"):
        kind, payload = parser.parse_statement()
        if kind == "method":
            method, interface = _compile_method(payload, working)
            methods.append(method)
            working = working.union(interface)
            continue
        operation, _variables = _compile_statement(kind, payload, working)
        operations.append(operation)
        extend = getattr(operation, "extend_scheme", None)
        if extend is not None:
            extend(working)
    return Program(operations, methods=methods)
