"""Resource guards: caller-set budgets on matching work and recursion.

GOOD operations are set-oriented — one operation works "on every
matching of the pattern, in parallel" (Section 5) — so a single
ill-chosen pattern can enumerate a combinatorial number of matchings,
and a method can recurse unboundedly (the paper's non-terminating
recursive method).  A production deployment needs budgets, not just the
hard ``max_depth`` backstop.

:func:`limits` arms a :class:`ResourceLimits` for a ``with`` block::

    with guards.limits(max_matchings=10_000, max_call_depth=16):
        program.run(db, in_place=True)

While armed,

* every matching enumeration (native matcher and both engines) charges
  its result size against the cumulative ``max_matchings`` budget;
* every method-call entry checks its nesting depth against
  ``max_call_depth``;

and exceeding either budget raises
:class:`~repro.core.errors.ResourceLimitError`.  Combined with atomic
program execution the overrun rolls back like any other failure.
Guards nest; every armed guard is charged, and the tightest one fires.

The armed-guard stack is **thread-local**: a guard armed in one thread
is neither charged nor tripped by work running in another.  This is
what lets :mod:`repro.server` arm one budget per client session on a
worker pool without sessions charging each other.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import ResourceLimitError


@dataclass(frozen=True)
class ResourceLimits:
    """Budgets for one guarded execution region (``None`` = unlimited)."""

    max_matchings: Optional[int] = None
    max_call_depth: Optional[int] = None


class ResourceGuard:
    """One armed :class:`ResourceLimits` plus consumption counters."""

    def __init__(self, resource_limits: ResourceLimits) -> None:
        self.limits = resource_limits
        self.matchings_used = 0
        self.delta_matchings_used = 0
        self.max_depth_seen = 0

    def charge_matchings(self, count: int, delta: bool = False) -> None:
        """Charge one enumeration of ``count`` matchings.

        ``delta`` marks delta-constrained enumerations (the semi-naive
        engine); they charge the same budget — a budget bounds *total*
        matcher output regardless of discipline — but are tallied
        separately so overrun reports can show how much of the budget
        went to incremental work.
        """
        self.matchings_used += count
        if delta:
            self.delta_matchings_used += count
        budget = self.limits.max_matchings
        if budget is not None and self.matchings_used > budget:
            raise ResourceLimitError(
                f"matching budget exceeded: {self.matchings_used} matchings "
                f"enumerated ({self.delta_matchings_used} delta-constrained), "
                f"limit is {budget}"
            )

    def check_call_depth(self, depth: int) -> None:
        """Check one method-call nesting level."""
        self.max_depth_seen = max(self.max_depth_seen, depth)
        budget = self.limits.max_call_depth
        if budget is not None and depth > budget:
            raise ResourceLimitError(
                f"method recursion budget exceeded: depth {depth}, limit is {budget}"
            )


#: Per-thread armed-guard stacks (innermost last).
_LOCAL = threading.local()


def _stack() -> List[ResourceGuard]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


@contextmanager
def limits(
    max_matchings: Optional[int] = None,
    max_call_depth: Optional[int] = None,
) -> Iterator[ResourceGuard]:
    """Arm a guard for the duration of the ``with`` block.

    The guard is armed only in the calling thread.
    """
    guard = ResourceGuard(ResourceLimits(max_matchings, max_call_depth))
    stack = _stack()
    stack.append(guard)
    try:
        yield guard
    finally:
        stack.remove(guard)


def active_guards() -> Tuple[ResourceGuard, ...]:
    """This thread's armed guards, outermost first (for introspection)."""
    return tuple(_stack())


def charge_matchings(count: int, delta: bool = False) -> None:
    """Hook: a matcher enumerated ``count`` matchings."""
    stack = _stack()
    if stack:
        for guard in tuple(stack):
            guard.charge_matchings(count, delta=delta)


def check_call_depth(depth: int) -> None:
    """Hook: a method call entered nesting level ``depth``."""
    stack = _stack()
    if stack:
        for guard in tuple(stack):
            guard.check_call_depth(depth)
