"""Snapshot capture/restore over any transactional target.

The transaction layer is generic over *targets* — objects holding one
GOOD database state.  A target participates by exposing four hooks
(duck-typed, no registration needed):

* ``capture_state() -> object`` — an opaque, self-contained snapshot of
  the full state (scheme included).  Capturing must not alias mutable
  structure with the live state;
* ``restore_state(state) -> None`` — reinstall a captured snapshot.
  Restoring must leave the snapshot reusable (a savepoint can be rolled
  back to more than once) and must restore the *scheme object held by
  callers at capture time* in place where possible, so patterns and
  sessions pointing at it see the rollback;
* ``state_summary() -> (node_count, edge_count)`` — cheap size census
  used for :class:`~repro.txn.transaction.FailureReport` deltas;
* ``check_invariants() -> None`` — re-validate every model constraint,
  raising on violation (used to certify a rollback).

:class:`~repro.core.instance.Instance`,
:class:`~repro.storage.engine.RelationalEngine` and
:class:`~repro.tarski.engine.TarskiEngine` all implement the hooks.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.core.errors import TransactionError

_HOOKS = ("capture_state", "restore_state", "state_summary", "check_invariants")


def is_transactional(target: Any) -> bool:
    """Whether ``target`` exposes the full snapshot protocol."""
    return all(callable(getattr(target, hook, None)) for hook in _HOOKS)


def _require(target: Any) -> None:
    missing = [hook for hook in _HOOKS if not callable(getattr(target, hook, None))]
    if missing:
        raise TransactionError(
            f"{type(target).__name__} is not a transactional target "
            f"(missing hooks: {', '.join(missing)})"
        )


def capture(target: Any) -> Any:
    """Capture an opaque full-state snapshot of ``target``."""
    _require(target)
    return target.capture_state()


def restore(target: Any, state: Any) -> None:
    """Reinstall a snapshot previously captured from ``target``."""
    _require(target)
    target.restore_state(state)


def summarize(target: Any) -> Tuple[int, int]:
    """``(node_count, edge_count)`` of the target's current state."""
    _require(target)
    return target.state_summary()
