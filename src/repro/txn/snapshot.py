"""Snapshot capture/restore over any transactional target.

The transaction layer is generic over *targets* — objects holding one
GOOD database state.  A target participates by exposing four hooks
(duck-typed, no registration needed):

* ``capture_state() -> object`` — an opaque, self-contained snapshot of
  the full state (scheme included).  Capturing must not alias mutable
  structure with the live state;
* ``restore_state(state) -> None`` — reinstall a captured snapshot.
  Restoring **consumes** the snapshot: the captured store is installed
  directly (no second copy), so restoring the same snapshot twice
  raises.  Callers that need to restore a state repeatedly — savepoint
  reuse in :class:`~repro.txn.transaction.Transaction` — re-capture
  after restoring.  The *scheme object held by callers at capture
  time* is restored in place where possible, so patterns and sessions
  pointing at it see the rollback;
* ``state_summary() -> (node_count, edge_count)`` — cheap size census
  used for :class:`~repro.txn.transaction.FailureReport` deltas;
* ``check_invariants() -> None`` — re-validate every model constraint,
  raising on violation (used to certify a rollback).

:class:`~repro.core.instance.Instance`,
:class:`~repro.storage.engine.RelationalEngine` and
:class:`~repro.tarski.engine.TarskiEngine` all implement the hooks.
Targets may additionally opt into the O(changes) undo-journal protocol
(``begin_journal``/``rollback_journal``) — see :mod:`repro.txn.journal`;
the snapshot protocol stays as the universal fallback and as the
equivalence oracle for journals.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.core.counters import charge as _charge
from repro.core.errors import TransactionError

_HOOKS = ("capture_state", "restore_state", "state_summary", "check_invariants")


class OneShotState:
    """A captured payload handed out by reference exactly once.

    Restoring a snapshot used to re-copy the captured structure so the
    snapshot stayed reusable; since single rollback is the dominant
    case, the copy is now skipped entirely — :meth:`take` transfers
    ownership of the payload to the restoring target and a second
    ``take`` fails loudly instead of silently aliasing live state.
    """

    __slots__ = ("_payload", "_consumed")

    def __init__(self, payload: Any) -> None:
        self._payload = payload
        self._consumed = False

    @property
    def consumed(self) -> bool:
        """Whether the payload was already taken."""
        return self._consumed

    def take(self) -> Any:
        """Hand the payload over (once); raises on reuse."""
        if self._consumed:
            raise TransactionError(
                "this snapshot was already consumed by a restore; "
                "re-capture the state before restoring it again"
            )
        payload = self._payload
        self._payload = None
        self._consumed = True
        return payload


def is_transactional(target: Any) -> bool:
    """Whether ``target`` exposes the full snapshot protocol."""
    return all(callable(getattr(target, hook, None)) for hook in _HOOKS)


def _require(target: Any) -> None:
    missing = [hook for hook in _HOOKS if not callable(getattr(target, hook, None))]
    if missing:
        raise TransactionError(
            f"{type(target).__name__} is not a transactional target "
            f"(missing hooks: {', '.join(missing)})"
        )


def capture(target: Any) -> Any:
    """Capture an opaque full-state snapshot of ``target``."""
    _require(target)
    _charge(txn_snapshot_captures=1)
    return target.capture_state()


def restore(target: Any, state: Any) -> None:
    """Reinstall a snapshot previously captured from ``target``."""
    _require(target)
    target.restore_state(state)


def summarize(target: Any) -> Tuple[int, int]:
    """``(node_count, edge_count)`` of the target's current state."""
    _require(target)
    return target.state_summary()
